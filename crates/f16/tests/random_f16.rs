//! Randomized tests for the binary16 implementation, driven by a
//! deterministic xorshift64* generator (no external crates).

use tcsim_f16::{F16x2, F16};

// Deterministic inputs from the workspace's canonical PRNG (same
// xorshift64* recurrence the local copy used, so sequences are unchanged).
use tcsim_check::rng::XorShift64Star as Rng;

/// Arbitrary f16 bit pattern (including NaN/inf/subnormal).
fn any_f16(rng: &mut Rng) -> F16 {
    F16::from_bits(rng.next_u16())
}

/// Finite, non-NaN f16 value (rejection sampled).
fn finite_f16(rng: &mut Rng) -> F16 {
    loop {
        let v = any_f16(rng);
        if v.is_finite() {
            return v;
        }
    }
}

const CASES: usize = 4000;

#[test]
fn to_f32_roundtrip() {
    let mut rng = Rng::new(0xF16A);
    for _ in 0..CASES {
        let h = any_f16(&mut rng);
        let back = F16::from_f32(h.to_f32());
        if h.is_nan() {
            assert!(back.is_nan());
        } else {
            assert_eq!(back.to_bits(), h.to_bits());
        }
    }
}

#[test]
fn from_f32_matches_f64_path() {
    // Rounding f32→f16 must agree with the f64→f16 path, since f32→f64
    // is exact.
    let mut rng = Rng::new(0xF16B);
    for _ in 0..CASES {
        let x = rng.next_f32_bits();
        let a = F16::from_f32(x);
        let b = F16::from_f64(x as f64);
        if a.is_nan() {
            assert!(b.is_nan());
        } else {
            assert_eq!(a.to_bits(), b.to_bits(), "x={x}");
        }
    }
}

#[test]
fn addition_is_commutative() {
    let mut rng = Rng::new(0xF16C);
    for _ in 0..CASES {
        let (a, b) = (any_f16(&mut rng), any_f16(&mut rng));
        let x = a + b;
        let y = b + a;
        if x.is_nan() {
            assert!(y.is_nan());
        } else {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn multiplication_is_commutative() {
    let mut rng = Rng::new(0xF16D);
    for _ in 0..CASES {
        let (a, b) = (any_f16(&mut rng), any_f16(&mut rng));
        let x = a * b;
        let y = b * a;
        if x.is_nan() {
            assert!(y.is_nan());
        } else {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn add_zero_is_identity() {
    let mut rng = Rng::new(0xF16E);
    for _ in 0..CASES {
        let a = finite_f16(&mut rng);
        assert_eq!((a + F16::ZERO).to_f32(), a.to_f32());
    }
}

#[test]
fn mul_one_is_identity() {
    let mut rng = Rng::new(0xF16F);
    for _ in 0..CASES {
        let a = finite_f16(&mut rng);
        assert_eq!((a * F16::ONE).to_f32(), a.to_f32());
    }
}

#[test]
fn subtraction_of_self_is_zero() {
    let mut rng = Rng::new(0xF170);
    for _ in 0..CASES {
        let a = finite_f16(&mut rng);
        assert!((a - a).is_zero());
    }
}

#[test]
fn negation_flips_sign_bit_only() {
    let mut rng = Rng::new(0xF171);
    for _ in 0..CASES {
        let a = any_f16(&mut rng);
        assert_eq!((-a).to_bits(), a.to_bits() ^ 0x8000);
    }
}

#[test]
fn result_is_correctly_rounded_add() {
    // The f16 sum must be the representable value nearest the exact sum
    // (checked against exact f64 math, which is exact for f16 inputs).
    let mut rng = Rng::new(0xF172);
    for _ in 0..CASES {
        let (a, b) = (finite_f16(&mut rng), finite_f16(&mut rng));
        let exact = a.to_f64() + b.to_f64();
        let got = (a + b).to_f64();
        if got.is_finite() {
            // Nearest: no other representable f16 may be strictly closer.
            let err = (got - exact).abs();
            let up = F16::from_bits((a + b).to_bits().wrapping_add(1));
            let dn = F16::from_bits((a + b).to_bits().wrapping_sub(1));
            for n in [up, dn] {
                if n.is_finite() {
                    assert!((n.to_f64() - exact).abs() >= err, "a={a:?} b={b:?}");
                }
            }
        }
    }
}

#[test]
fn result_is_correctly_rounded_mul() {
    let mut rng = Rng::new(0xF173);
    for _ in 0..CASES {
        let (a, b) = (finite_f16(&mut rng), finite_f16(&mut rng));
        let exact = a.to_f64() * b.to_f64();
        let got = (a * b).to_f64();
        if got.is_finite() && exact.is_finite() {
            let err = (got - exact).abs();
            let up = F16::from_bits((a * b).to_bits().wrapping_add(1));
            let dn = F16::from_bits((a * b).to_bits().wrapping_sub(1));
            for n in [up, dn] {
                if n.is_finite() {
                    assert!((n.to_f64() - exact).abs() >= err, "a={a:?} b={b:?}");
                }
            }
        }
    }
}

#[test]
fn abs_clears_sign() {
    let mut rng = Rng::new(0xF174);
    for _ in 0..CASES {
        let a = any_f16(&mut rng);
        assert!(!a.abs().is_sign_negative());
    }
}

#[test]
fn min_max_bracket() {
    let mut rng = Rng::new(0xF175);
    for _ in 0..CASES {
        let (a, b) = (finite_f16(&mut rng), finite_f16(&mut rng));
        let lo = a.min(b);
        let hi = a.max(b);
        assert!(lo <= hi);
        assert!(lo == a || lo == b || (lo.is_zero() && (a.is_zero() || b.is_zero())));
    }
}

#[test]
fn total_order_is_consistent_with_partial_order() {
    let mut rng = Rng::new(0xF176);
    for _ in 0..CASES {
        let (a, b) = (finite_f16(&mut rng), finite_f16(&mut rng));
        if a < b {
            assert!(a.total_order_key() < b.total_order_key() || (a.is_zero() && b.is_zero()));
        }
    }
}

#[test]
fn f16x2_pack_unpack() {
    let mut rng = Rng::new(0xF177);
    for _ in 0..CASES {
        let (lo, hi) = (any_f16(&mut rng), any_f16(&mut rng));
        let v = F16x2::new(lo, hi);
        assert_eq!(v.lo().to_bits(), lo.to_bits());
        assert_eq!(v.hi().to_bits(), hi.to_bits());
    }
}

#[test]
fn f16x2_hfma2_matches_scalar() {
    let mut rng = Rng::new(0xF178);
    for _ in 0..CASES {
        let a0 = finite_f16(&mut rng);
        let a1 = finite_f16(&mut rng);
        let b0 = finite_f16(&mut rng);
        let b1 = finite_f16(&mut rng);
        let c0 = finite_f16(&mut rng);
        let c1 = finite_f16(&mut rng);
        let r = F16x2::new(a0, a1).hfma2(F16x2::new(b0, b1), F16x2::new(c0, c1));
        let s0 = a0.mul_add(b0, c0);
        let s1 = a1.mul_add(b1, c1);
        if !s0.is_nan() {
            assert_eq!(r.lo().to_bits(), s0.to_bits());
        }
        if !s1.is_nan() {
            assert_eq!(r.hi().to_bits(), s1.to_bits());
        }
    }
}
