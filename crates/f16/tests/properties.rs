//! Exhaustive properties of the binary16 conversions: every one of the
//! 65 536 bit patterns is checked, so these are proofs over the whole
//! domain rather than samples — the round-trip, subnormal and
//! NaN-payload contracts the `tcsim-nn` quantization boundary and the
//! FEDP unpackers rely on.

use tcsim_f16::F16;

const SIGN: u16 = 0x8000;
const MAN: u16 = 0x03FF;

fn all_patterns() -> impl Iterator<Item = F16> {
    (0u16..=u16::MAX).map(F16::from_bits)
}

#[test]
fn f32_roundtrip_is_exact_for_every_pattern() {
    for h in all_patterns() {
        let back = F16::from_f32(h.to_f32());
        if h.is_nan() {
            assert!(back.is_nan(), "{:#06x} lost NaN-ness", h.to_bits());
        } else {
            assert_eq!(
                back.to_bits(),
                h.to_bits(),
                "{:#06x} -> {} -> {:#06x}",
                h.to_bits(),
                h.to_f32(),
                back.to_bits()
            );
        }
    }
}

#[test]
fn f64_roundtrip_is_exact_for_every_pattern() {
    for h in all_patterns() {
        let back = F16::from_f64(h.to_f64());
        if h.is_nan() {
            assert!(back.is_nan());
        } else {
            assert_eq!(back.to_bits(), h.to_bits(), "{:#06x}", h.to_bits());
        }
    }
}

#[test]
fn roundtrip_preserves_the_sign_of_zero() {
    assert!(F16::from_f32(F16::NEG_ZERO.to_f32()).is_sign_negative());
    assert!(!F16::from_f32(F16::ZERO.to_f32()).is_sign_negative());
    assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
}

#[test]
fn every_subnormal_is_an_exact_multiple_of_the_smallest() {
    // Positive subnormals are exactly k·2⁻²⁴ for k in 1..=1023, convert
    // exactly to f32, and classify as subnormal.
    let ulp = (-24f64).exp2();
    for k in 1u16..=MAN {
        let h = F16::from_bits(k);
        assert!(h.is_subnormal(), "{k:#06x}");
        assert!(h.is_finite());
        assert_eq!(h.to_f64(), f64::from(k) * ulp, "k={k}");
        // And the negative twin mirrors it exactly.
        let n = F16::from_bits(SIGN | k);
        assert_eq!(n.to_f64(), -f64::from(k) * ulp);
    }
    // The boundary neighbours are classified correctly.
    assert!(!F16::from_bits(0).is_subnormal(), "zero is not subnormal");
    assert!(
        !F16::MIN_POSITIVE.is_subnormal(),
        "0x0400 is the smallest normal"
    );
    assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_bits(), 0x0001);
}

#[test]
fn subnormal_rounding_is_nearest_even_at_every_halfway_point() {
    // (k + ½)·2⁻²⁴ sits exactly between subnormals k and k+1: it must
    // round to whichever is even, for every subnormal k.
    for k in 0u32..1023 {
        let midpoint = (f64::from(k) + 0.5) * (-24f64).exp2();
        let got = F16::from_f64(midpoint);
        let expect = if k % 2 == 0 { k } else { k + 1 };
        assert_eq!(got.to_bits(), expect as u16, "midpoint after k={k}");
        // Anything strictly inside the interval rounds to the nearer end.
        let low = F16::from_f64(midpoint - (-30f64).exp2());
        assert_eq!(low.to_bits(), k as u16);
        let high = F16::from_f64(midpoint + (-30f64).exp2());
        assert_eq!(high.to_bits(), (k + 1) as u16);
    }
}

#[test]
fn underflow_below_half_an_ulp_is_signed_zero() {
    // |x| < 2⁻²⁵ rounds to zero of the same sign; exactly 2⁻²⁵ is the
    // halfway point to the smallest subnormal and rounds to even (zero).
    let half_ulp = (-25f64).exp2();
    assert_eq!(F16::from_f64(half_ulp).to_bits(), 0x0000);
    assert_eq!(F16::from_f64(-half_ulp).to_bits(), 0x8000);
    assert_eq!(F16::from_f64(half_ulp * 0.99).to_bits(), 0x0000);
    assert_eq!(
        F16::from_f64(half_ulp * 1.01).to_bits(),
        0x0001,
        "just above rounds up"
    );
    // f32's own subnormal range (< 2⁻¹²⁶) is far below f16's and must
    // flush to signed zero, not panic in the shift logic.
    assert_eq!(F16::from_f32(f32::from_bits(0x0000_0001)).to_bits(), 0x0000);
    assert_eq!(F16::from_f32(f32::from_bits(0x8000_0001)).to_bits(), 0x8000);
}

#[test]
fn nan_payload_top_bits_survive_the_roundtrip() {
    // For every NaN pattern: to_f32 widens the 10-bit payload into the
    // top of the f32 mantissa, from_f32 narrows it back — the payload
    // and sign are preserved and the quiet bit is forced.
    for bits in 0u16..=u16::MAX {
        let h = F16::from_bits(bits);
        if !h.is_nan() {
            continue;
        }
        let back = F16::from_f32(h.to_f32());
        assert!(back.is_nan());
        assert_eq!(back.to_bits() & SIGN, bits & SIGN, "sign of {bits:#06x}");
        assert_eq!(
            back.to_bits() & MAN,
            (bits & MAN) | 0x0200,
            "payload of {bits:#06x} (quiet bit forced)"
        );
    }
}

#[test]
fn f32_nans_narrow_to_quiet_nans_with_truncated_payload() {
    // A signaling f32 NaN (quiet bit clear, payload in the bits that
    // survive the >>13 truncation) must come back quiet with its top
    // payload bits intact — never as an infinity.
    let snan = f32::from_bits(0x7F80_0001);
    let h = F16::from_f32(snan);
    assert!(h.is_nan());
    assert!(!h.is_infinite(), "payload truncation must not yield inf");
    assert_eq!(h.to_bits() & 0x0200, 0x0200, "quieted");

    // Payload bits above the truncation point are preserved verbatim.
    let payload = 0x155u32; // 10-bit pattern
    let qnan = f32::from_bits(0x7FC0_0000 | (payload << 13));
    let h = F16::from_f32(qnan);
    assert_eq!(h.to_bits() & MAN, (0x0200 | payload) as u16);
    let neg = f32::from_bits(0xFFC0_0000 | (payload << 13));
    assert_eq!(F16::from_f32(neg).to_bits() & SIGN, SIGN);
}

#[test]
fn classification_partitions_every_pattern() {
    // Exactly one of {nan, infinite, zero, subnormal, normal} per value.
    let mut counts = [0usize; 5];
    for h in all_patterns() {
        let class = if h.is_nan() {
            0
        } else if h.is_infinite() {
            1
        } else if h.is_zero() {
            2
        } else if h.is_subnormal() {
            3
        } else {
            4
        };
        // The predicates must not overlap.
        let flags = [
            h.is_nan(),
            h.is_infinite(),
            h.is_zero(),
            h.is_subnormal(),
            h.is_finite() && !h.is_zero() && !h.is_subnormal(),
        ];
        assert_eq!(
            flags.iter().filter(|&&f| f).count(),
            1,
            "{:#06x}",
            h.to_bits()
        );
        counts[class] += 1;
    }
    assert_eq!(
        counts[0],
        2 * 1023,
        "±NaNs (all-ones exponent, nonzero payload)"
    );
    assert_eq!(counts[1], 2, "±inf");
    assert_eq!(counts[2], 2, "±0");
    assert_eq!(counts[3], 2 * 1023, "±subnormals");
    assert_eq!(counts[4], 2 * 30 * 1024, "±normals (30 binades)");
}
