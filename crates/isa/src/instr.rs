//! Instruction encoding: opcodes, operands, registers and unit classes.

use crate::types::{DataType, MemSpace, MemWidth, SpecialReg};
use crate::wmma::{fragment_regs, mma_sync_a_shape, FragmentKind, WmmaDirective};
use std::fmt;

/// A 32-bit architectural register index within a thread.
///
/// 64-bit values (addresses, doubles) occupy the aligned pair `(r, r+1)`,
/// mirroring SASS register pairs: the paper observes each HMMA operand
/// register identifier actually names a pair of adjacent registers
/// (§III-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A 1-bit predicate register index within a thread (`p0`–`p7`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PredReg(pub u8);

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An instruction source operand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// A 32-bit register.
    Reg(Reg),
    /// A 64-bit value in the register pair `(r, r+1)`.
    RegPair(Reg),
    /// A sign-extended integer immediate (also carries raw f32 bits for
    /// float ops emitted by the builder's `fimm` helper).
    Imm(i64),
    /// A read-only special register.
    Special(SpecialReg),
    /// A predicate register value (0 or 1), for `selp`.
    Pred(PredReg),
}

impl Operand {
    /// Float immediate: stores the raw bits of `v` as an integer immediate.
    pub fn fimm(v: f32) -> Operand {
        Operand::Imm(v.to_bits() as i64)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::RegPair(r) => write!(f, "{{r{}, r{}}}", r.0, r.0 + 1),
            Operand::Imm(i) => write!(f, "{i}"),
            Operand::Special(s) => write!(f, "{s}"),
            Operand::Pred(p) => write!(f, "{p}"),
        }
    }
}

/// Comparison operators for `setp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on a pre-computed three-way ordering.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        })
    }
}

/// Read-modify-write operations of the `atom` instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// `atom.add`: old + value.
    Add,
    /// `atom.min` (signed).
    Min,
    /// `atom.max` (signed).
    Max,
    /// `atom.exch`: unconditional exchange.
    Exch,
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AtomOp::Add => "add",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::Exch => "exch",
        })
    }
}

/// Source-lane selection modes of the warp shuffle (`shfl.sync`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShflMode {
    /// Read from `lane + b` (self if out of range).
    Down,
    /// Read from `lane - b` (self if out of range).
    Up,
    /// Read from `lane ^ b`.
    Bfly,
    /// Read from lane `b`.
    Idx,
}

impl fmt::Display for ShflMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShflMode::Down => "down",
            ShflMode::Up => "up",
            ShflMode::Bfly => "bfly",
            ShflMode::Idx => "idx",
        })
    }
}

/// Opcodes of the modeled PTX subset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// No operation.
    Nop,
    /// 32-bit register/immediate/special move.
    Mov,
    /// 64-bit move between register pairs (or a 64-bit immediate).
    Mov64,
    /// 32-bit integer add.
    IAdd,
    /// 32-bit integer subtract.
    ISub,
    /// 32-bit integer multiply (low half).
    IMul,
    /// 32-bit multiply-add `d = a*b + c` (low half).
    IMad,
    /// Signed minimum.
    IMin,
    /// Signed maximum.
    IMax,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT of src0.
    Not,
    /// 64-bit add: `dpair = src0(pair or zext 32) + src1(pair, reg or imm)`.
    IAdd64,
    /// Widening multiply-add `dpair = a32 × b32 + cpair` (SASS `IMAD.WIDE`),
    /// the canonical address-generation idiom in CUTLASS SASS.
    IMadWide,
    /// FP32 add.
    FAdd,
    /// FP32 multiply.
    FMul,
    /// FP32 fused multiply-add.
    FFma,
    /// FP32 minimum.
    FMin,
    /// FP32 maximum.
    FMax,
    /// FP32 reciprocal (MUFU).
    FRcp,
    /// FP32 square root (MUFU).
    FSqrt,
    /// FP32 base-2 exponential (MUFU `ex2`).
    FEx2,
    /// FP32 base-2 logarithm (MUFU `lg2`).
    FLg2,
    /// FP64 add (register pairs).
    DAdd,
    /// FP64 multiply (register pairs).
    DMul,
    /// FP64 fused multiply-add (register pairs).
    DFma,
    /// Packed half add (SASS `HADD2`).
    HAdd2,
    /// Packed half multiply (SASS `HMUL2`).
    HMul2,
    /// Packed half fused multiply-add (SASS `HFMA2`).
    HFma2,
    /// Scalar type conversion.
    Cvt {
        /// Source type.
        from: DataType,
        /// Destination type.
        to: DataType,
    },
    /// Predicate-setting comparison; writes `Instr::pred_dst`.
    Setp {
        /// Comparison operator.
        cmp: CmpOp,
        /// Operand interpretation.
        ty: DataType,
    },
    /// Select: `d = pred ? src1 : src2` (src0 is the predicate operand).
    SelP,
    /// Branch to `Instr::target`; diverging branches carry a
    /// reconvergence point in `Instr::reconv`.
    Bra,
    /// CTA-wide barrier (`bar.sync 0`).
    Bar,
    /// Thread exit.
    Exit,
    /// Read the SM cycle counter low word (`CS2R Rd, SR_CLOCKLO`).
    Clock,
    /// Memory load.
    Ld {
        /// Address space.
        space: MemSpace,
        /// Access width.
        width: MemWidth,
    },
    /// Memory store.
    St {
        /// Address space.
        space: MemSpace,
        /// Access width.
        width: MemWidth,
    },
    /// Warp shuffle: every lane receives another lane's source value
    /// (`shfl.sync`); routed through the MIO path on Volta.
    Shfl {
        /// Source-lane selection mode.
        mode: ShflMode,
    },
    /// Atomic 32-bit read-modify-write; the destination register receives
    /// the old value. Lanes of a warp apply in lane order.
    Atom {
        /// Address space (global or shared).
        space: MemSpace,
        /// The combine operation.
        op: AtomOp,
    },
    /// A warp-synchronous WMMA operation (Fig 2 of the paper).
    Wmma(WmmaDirective),
}

/// Functional-unit classes instructions issue to (Fig 1 of the paper shows
/// the per-sub-core unit mix of Volta).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnitClass {
    /// FP32/FP16 arithmetic cores (16 FFMA/clk per sub-core).
    Sp,
    /// Integer cores (16/clk per sub-core).
    Int,
    /// FP64 cores (8 DFMA/clk per sub-core).
    Fp64,
    /// Transcendental unit (4/clk per sub-core).
    Mufu,
    /// Tensor cores (two per sub-core).
    Tensor,
    /// Load/store path through the MIO queue.
    Mem,
    /// Branch/barrier/exit handled at issue.
    Control,
}

impl UnitClass {
    /// Number of unit classes — the length any dense per-unit array
    /// (scheduler busy times, issue counters) must have. Adding a
    /// variant without growing those arrays fails the exhaustiveness
    /// check in [`UnitClass::ALL`] instead of silently desynchronizing.
    pub const COUNT: usize = 7;

    /// Every unit class, in declaration order.
    pub const ALL: [UnitClass; UnitClass::COUNT] = [
        UnitClass::Sp,
        UnitClass::Int,
        UnitClass::Fp64,
        UnitClass::Mufu,
        UnitClass::Tensor,
        UnitClass::Mem,
        UnitClass::Control,
    ];
}

impl Op {
    /// The functional unit class this opcode issues to.
    pub fn unit(self) -> UnitClass {
        match self {
            Op::FAdd | Op::FMul | Op::FFma | Op::FMin | Op::FMax => UnitClass::Sp,
            Op::HAdd2 | Op::HMul2 | Op::HFma2 => UnitClass::Sp,
            Op::Cvt { .. } | Op::SelP => UnitClass::Sp,
            Op::FRcp | Op::FSqrt | Op::FEx2 | Op::FLg2 => UnitClass::Mufu,
            Op::DAdd | Op::DMul | Op::DFma => UnitClass::Fp64,
            Op::Mov
            | Op::Mov64
            | Op::IAdd
            | Op::ISub
            | Op::IMul
            | Op::IMad
            | Op::IMin
            | Op::IMax
            | Op::Shl
            | Op::Shr
            | Op::Sar
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Not
            | Op::IAdd64
            | Op::IMadWide
            | Op::Setp { .. }
            | Op::Clock => UnitClass::Int,
            Op::Ld { .. } | Op::St { .. } | Op::Atom { .. } | Op::Shfl { .. } => UnitClass::Mem,
            Op::Wmma(WmmaDirective::Mma { .. }) | Op::Wmma(WmmaDirective::MmaSync { .. }) => {
                UnitClass::Tensor
            }
            Op::Wmma(_) => UnitClass::Mem,
            Op::Nop | Op::Bra | Op::Bar | Op::Exit => UnitClass::Control,
        }
    }

    /// Whether the opcode writes a 64-bit register pair.
    pub fn writes_pair(self) -> bool {
        matches!(
            self,
            Op::Mov64 | Op::IAdd64 | Op::IMadWide | Op::DAdd | Op::DMul | Op::DFma
        ) || matches!(self, Op::Cvt { to, .. } if to.is_pair())
    }
}

/// One decoded instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct Instr {
    /// Opcode with embedded qualifiers.
    pub op: Op,
    /// Destination register (base register for pairs/quads/fragments).
    pub dst: Option<Reg>,
    /// Destination predicate (for `setp`).
    pub pred_dst: Option<PredReg>,
    /// Source operands, opcode-specific order.
    pub srcs: Vec<Operand>,
    /// Optional guard predicate: `Some((p, true))` = `@p`, `Some((p,
    /// false))` = `@!p`.
    pub guard: Option<(PredReg, bool)>,
    /// Branch target PC (resolved instruction index).
    pub target: Option<usize>,
    /// Reconvergence PC for potentially divergent branches (like the
    /// compiler-inserted `SSY` point on real hardware).
    pub reconv: Option<usize>,
}

impl Instr {
    /// Creates an instruction with no destination or operands.
    pub fn new(op: Op) -> Instr {
        Instr {
            op,
            dst: None,
            pred_dst: None,
            srcs: Vec::new(),
            guard: None,
            target: None,
            reconv: None,
        }
    }

    /// Builder-style destination register.
    pub fn with_dst(mut self, dst: Reg) -> Instr {
        self.dst = Some(dst);
        self
    }

    /// Builder-style source list.
    pub fn with_srcs(mut self, srcs: Vec<Operand>) -> Instr {
        self.srcs = srcs;
        self
    }

    /// Builder-style guard predicate.
    pub fn with_guard(mut self, pred: PredReg, sense: bool) -> Instr {
        self.guard = Some((pred, sense));
        self
    }

    /// Registers read by this instruction, with pairs and WMMA fragments
    /// expanded. `volta_double_load` selects the Volta fragment sizing
    /// (§III-B1) used to determine fragment register counts.
    pub fn use_regs(&self, volta_double_load: bool) -> Vec<Reg> {
        let mut out = Vec::new();
        let mut push_span = |base: Reg, n: usize| {
            for i in 0..n {
                out.push(Reg(base.0 + i as u16));
            }
        };
        match &self.op {
            Op::Wmma(WmmaDirective::Load { .. }) => {
                // srcs = [addr(pair), stride]
            }
            Op::Wmma(WmmaDirective::Mma {
                shape,
                ab_type,
                c_type,
                ..
            }) => {
                let (a, b, c) = (self.srcs[0], self.srcs[1], self.srcs[2]);
                if let Operand::Reg(r) = a {
                    push_span(
                        r,
                        fragment_regs(FragmentKind::A, *shape, *ab_type, volta_double_load),
                    );
                }
                if let Operand::Reg(r) = b {
                    push_span(
                        r,
                        fragment_regs(FragmentKind::B, *shape, *ab_type, volta_double_load),
                    );
                }
                if let Operand::Reg(r) = c {
                    push_span(
                        r,
                        fragment_regs(FragmentKind::C, *shape, *c_type, volta_double_load),
                    );
                }
                return out;
            }
            Op::Wmma(WmmaDirective::MmaSync {
                shape,
                ab_type,
                c_type,
                sparse,
                ..
            }) => {
                // srcs = [a-frag, b-frag, c-frag] + [meta reg] when sparse.
                // Sparse A is held at the compressed (half-K) footprint.
                let a_shape = mma_sync_a_shape(*shape, *sparse);
                if let Operand::Reg(r) = self.srcs[0] {
                    push_span(r, fragment_regs(FragmentKind::A, a_shape, *ab_type, false));
                }
                if let Operand::Reg(r) = self.srcs[1] {
                    push_span(r, fragment_regs(FragmentKind::B, *shape, *ab_type, false));
                }
                if let Operand::Reg(r) = self.srcs[2] {
                    push_span(r, fragment_regs(FragmentKind::C, *shape, *c_type, false));
                }
                if *sparse {
                    if let Some(Operand::Reg(r)) = self.srcs.get(3) {
                        push_span(*r, 1);
                    }
                }
                out.sort_unstable();
                out.dedup();
                return out;
            }
            Op::Wmma(WmmaDirective::Store { shape, ty, .. }) => {
                // srcs = [addr(pair), stride, d-frag base]
                if let Operand::Reg(r) = self.srcs[2] {
                    push_span(
                        r,
                        fragment_regs(FragmentKind::D, *shape, *ty, volta_double_load),
                    );
                }
            }
            Op::St { width, .. } => {
                // srcs = [addr, offset, data]; expand the data span.
                if let Operand::Reg(r) = self.srcs[2] {
                    push_span(r, width.regs());
                }
            }
            Op::Atom { .. } => {}
            _ => {}
        }
        for s in &self.srcs {
            match *s {
                Operand::Reg(r)
                    // Data operand of St/WmmaStore already expanded above.
                    if (!matches!(self.op, Op::St { .. } | Op::Wmma(WmmaDirective::Store { .. }))
                        || !out.contains(&r))
                    => {
                        out.push(r);
                    }
                Operand::RegPair(r) => {
                    out.push(r);
                    out.push(Reg(r.0 + 1));
                }
                _ => {}
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Registers written by this instruction, with pairs, vector loads and
    /// WMMA fragments expanded.
    pub fn def_regs(&self, volta_double_load: bool) -> Vec<Reg> {
        let Some(dst) = self.dst else {
            return Vec::new();
        };
        let n = match &self.op {
            Op::Ld { width, .. } => width.regs(),
            Op::Wmma(WmmaDirective::Load {
                frag, shape, ty, ..
            }) => fragment_regs(*frag, *shape, *ty, volta_double_load),
            Op::Wmma(WmmaDirective::Mma { shape, d_type, .. }) => {
                fragment_regs(FragmentKind::D, *shape, *d_type, volta_double_load)
            }
            Op::Wmma(WmmaDirective::MmaSync { shape, d_type, .. }) => {
                fragment_regs(FragmentKind::D, *shape, *d_type, false)
            }
            op if op.writes_pair() => 2,
            _ => 1,
        };
        (0..n).map(|i| Reg(dst.0 + i as u16)).collect()
    }

    /// Whether this is a (potential) control transfer.
    pub fn is_branch(&self) -> bool {
        matches!(self.op, Op::Bra)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((p, sense)) = self.guard {
            write!(f, "@{}{} ", if sense { "" } else { "!" }, p)?;
        }
        write!(f, "{:?}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        if let Some(p) = self.pred_dst {
            write!(f, " {p}")?;
        }
        for (i, s) in self.srcs.iter().enumerate() {
            write!(
                f,
                "{} {s}",
                if i == 0 && self.dst.is_none() && self.pred_dst.is_none() {
                    ""
                } else {
                    ","
                }
            )?;
        }
        if let Some(t) = self.target {
            write!(f, " -> {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wmma::{Layout, WmmaShape, WmmaType};

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Lt.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Gt.eval(Greater));
        assert!(CmpOp::Ge.eval(Equal));
        assert!(!CmpOp::Ge.eval(Less));
    }

    #[test]
    fn unit_classes_match_volta_sub_core() {
        assert_eq!(Op::FFma.unit(), UnitClass::Sp);
        assert_eq!(Op::IMad.unit(), UnitClass::Int);
        assert_eq!(Op::DFma.unit(), UnitClass::Fp64);
        assert_eq!(Op::FSqrt.unit(), UnitClass::Mufu);
        assert_eq!(Op::HFma2.unit(), UnitClass::Sp);
        assert_eq!(
            Op::Ld {
                space: MemSpace::Global,
                width: MemWidth::B32
            }
            .unit(),
            UnitClass::Mem
        );
        let mma = Op::Wmma(WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Row,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
        });
        assert_eq!(mma.unit(), UnitClass::Tensor);
        let load = Op::Wmma(WmmaDirective::Load {
            frag: FragmentKind::A,
            shape: WmmaShape::M16N16K16,
            layout: Layout::Row,
            ty: WmmaType::F16,
        });
        assert_eq!(load.unit(), UnitClass::Mem);
        assert_eq!(Op::Bra.unit(), UnitClass::Control);
    }

    #[test]
    fn def_regs_expand_vectors_and_fragments() {
        let ld128 = Instr::new(Op::Ld {
            space: MemSpace::Global,
            width: MemWidth::B128,
        })
        .with_dst(Reg(4))
        .with_srcs(vec![Operand::RegPair(Reg(0)), Operand::Imm(0)]);
        assert_eq!(ld128.def_regs(true), vec![Reg(4), Reg(5), Reg(6), Reg(7)]);
        assert_eq!(ld128.use_regs(true), vec![Reg(0), Reg(1)]);

        let wload = Instr::new(Op::Wmma(WmmaDirective::Load {
            frag: FragmentKind::A,
            shape: WmmaShape::M16N16K16,
            layout: Layout::Row,
            ty: WmmaType::F16,
        }))
        .with_dst(Reg(8))
        .with_srcs(vec![Operand::RegPair(Reg(0)), Operand::Imm(16)]);
        // Volta: 8-register fragment.
        assert_eq!(wload.def_regs(true).len(), 8);
        // Turing: 4-register fragment.
        assert_eq!(wload.def_regs(false).len(), 4);
    }

    #[test]
    fn mma_reads_all_three_fragments() {
        let mma = Instr::new(Op::Wmma(WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
        }))
        .with_dst(Reg(40))
        .with_srcs(vec![
            Operand::Reg(Reg(0)),
            Operand::Reg(Reg(8)),
            Operand::Reg(Reg(16)),
        ]);
        let uses = mma.use_regs(true);
        // A: r0..r8, B: r8..r16, C: r16..r24 → 24 distinct regs.
        assert_eq!(uses.len(), 24);
        assert_eq!(mma.def_regs(true).len(), 8);
    }

    #[test]
    fn mma_sync_reads_fragments_and_sparse_metadata() {
        let dense = Instr::new(Op::Wmma(WmmaDirective::MmaSync {
            shape: WmmaShape::M16N8K16,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
            sparse: false,
        }))
        .with_dst(Reg(40))
        .with_srcs(vec![
            Operand::Reg(Reg(0)),
            Operand::Reg(Reg(8)),
            Operand::Reg(Reg(16)),
        ]);
        // A: 4 regs, B: 2 regs, C: 4 regs → 10 distinct; D: 4 regs.
        assert_eq!(dense.use_regs(true).len(), 10);
        assert_eq!(dense.def_regs(true).len(), 4);
        // Sizing must not depend on the Volta double-load flag.
        assert_eq!(dense.use_regs(true), dense.use_regs(false));

        let sparse = Instr::new(Op::Wmma(WmmaDirective::MmaSync {
            shape: WmmaShape::M16N8K16,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
            sparse: true,
        }))
        .with_dst(Reg(40))
        .with_srcs(vec![
            Operand::Reg(Reg(0)),
            Operand::Reg(Reg(8)),
            Operand::Reg(Reg(16)),
            Operand::Reg(Reg(30)),
        ]);
        let uses = sparse.use_regs(false);
        // Compressed A: 2 regs, B: 2, C: 4, metadata: 1 → 9 distinct.
        assert_eq!(uses.len(), 9);
        assert!(uses.contains(&Reg(30)));
        assert_eq!(
            Op::Wmma(WmmaDirective::MmaSync {
                shape: WmmaShape::M16N8K16,
                ab_type: WmmaType::F16,
                c_type: WmmaType::F32,
                d_type: WmmaType::F32,
                sparse: true,
            })
            .unit(),
            UnitClass::Tensor
        );
    }

    #[test]
    fn store_reads_data_span() {
        let st = Instr::new(Op::St {
            space: MemSpace::Global,
            width: MemWidth::B64,
        })
        .with_srcs(vec![
            Operand::RegPair(Reg(0)),
            Operand::Imm(8),
            Operand::Reg(Reg(10)),
        ]);
        let uses = st.use_regs(true);
        assert!(uses.contains(&Reg(10)) && uses.contains(&Reg(11)));
        assert!(uses.contains(&Reg(0)) && uses.contains(&Reg(1)));
        assert!(st.def_regs(true).is_empty());
    }

    #[test]
    fn guard_display() {
        let i = Instr::new(Op::Bra).with_guard(PredReg(0), false);
        assert!(i.to_string().starts_with("@!p0 "));
        assert!(i.is_branch());
    }

    #[test]
    fn writes_pair_classification() {
        assert!(Op::IMadWide.writes_pair());
        assert!(Op::DFma.writes_pair());
        assert!(!Op::IMad.writes_pair());
        assert!(Op::Cvt {
            from: DataType::U32,
            to: DataType::U64
        }
        .writes_pair());
        assert!(!Op::Cvt {
            from: DataType::F32,
            to: DataType::F16
        }
        .writes_pair());
    }
}
