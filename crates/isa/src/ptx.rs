//! Parser for a PTX-flavoured assembly text format.
//!
//! The paper models tensor cores at the PTX level (§V-A); this module lets
//! kernels be written in a compact PTX-like syntax instead of through the
//! [`crate::KernelBuilder`] API. The grammar is
//! line-oriented:
//!
//! ```text
//! .kernel scale_rows
//! .param  a   : u64
//! .param  n   : u32
//! .shared 1024
//! {
//!     mov.u32        r0, %tid.x;
//!     ld.param.b64   r2, [a];
//!     imad.wide      r4, r0, 4, r2;
//!     ld.global.b32  r6, [r4+0];
//!     iadd           r6, r6, 1;
//!     st.global.b32  [r4+0], r6;
//! LOOP:
//!     setp.lt.s32    p0, r6, 10;
//!     @p0 bra        LOOP;
//!     exit;
//! }
//! ```
//!
//! WMMA instructions follow the Fig 2 qualifier order:
//!
//! ```text
//! wmma.load.a.sync.row.m16n16k16.f16.global  r8, [r2], 16;
//! wmma.mma.sync.row.col.m16n16k16.f32.f32    r16, r8, r12, r16;
//! wmma.store.d.sync.row.m16n16k16.f32.global [r4], r16, 16;
//! ```

use crate::instr::{AtomOp, CmpOp, Instr, Op, Operand, PredReg, Reg, ShflMode};
use crate::kernel::{Kernel, KernelBuilder, Program};
use crate::types::{DataType, MemSpace, MemWidth, SpecialReg};
use crate::wmma::{FragmentKind, Layout, WmmaDirective, WmmaShape, WmmaType};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a whole module: a sequence of `.kernel` blocks.
///
/// # Errors
///
/// Returns the first syntax or semantic error with its line number.
pub fn parse_program(text: &str) -> Result<Program> {
    let mut program = Program::new();
    let mut parser = Parser::new(text);
    while let Some(kernel) = parser.parse_kernel()? {
        program.add(kernel);
    }
    Ok(program)
}

/// Parses a module expected to contain exactly one kernel.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or if the module does not
/// contain exactly one kernel.
pub fn parse_kernel(text: &str) -> Result<Kernel> {
    let mut parser = Parser::new(text);
    let Some(kernel) = parser.parse_kernel()? else {
        return err(1, "no .kernel block found");
    };
    if parser.parse_kernel()?.is_some() {
        return err(1, "expected exactly one kernel");
    }
    Ok(kernel)
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = l.split("//").next().unwrap_or("").trim();
                (i + 1, l)
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn parse_kernel(&mut self) -> Result<Option<Kernel>> {
        let Some((ln, header)) = self.next() else {
            return Ok(None);
        };
        let Some(name) = header.strip_prefix(".kernel") else {
            return err(ln, format!("expected .kernel, found {header:?}"));
        };
        let name = name.trim();
        if name.is_empty() {
            return err(ln, "missing kernel name");
        }
        let mut b = KernelBuilder::new(name);

        // Header directives until '{'.
        loop {
            let Some((ln, line)) = self.next() else {
                return err(ln, "unterminated kernel header (missing '{')");
            };
            if line == "{" {
                break;
            }
            if let Some(rest) = line.strip_prefix(".param") {
                let parts: Vec<&str> = rest.split(':').map(str::trim).collect();
                if parts.len() != 2 {
                    return err(ln, "expected `.param name : u32|u64`");
                }
                let bytes = match parts[1] {
                    "u32" | "s32" | "f32" | "b32" => 4,
                    "u64" | "s64" | "f64" | "b64" => 8,
                    other => return err(ln, format!("unknown param type {other:?}")),
                };
                b.param(parts[0], bytes);
            } else if let Some(rest) = line.strip_prefix(".shared") {
                let bytes: u32 = rest.trim().parse().map_err(|_| ParseError {
                    line: ln,
                    message: "bad .shared size".into(),
                })?;
                b.shared_alloc(bytes);
            } else {
                return err(ln, format!("unknown directive {line:?}"));
            }
        }

        // Body with deferred label resolution on raw pc indices.
        let mut instrs: Vec<(usize, Instr, Option<String>, Option<String>)> = Vec::new();
        let mut label_at: HashMap<String, usize> = HashMap::new();
        let mut max_reg: u16 = 0;
        let mut max_pred: u8 = 0;
        loop {
            let Some((ln, line)) = self.next() else {
                return err(ln, "unterminated kernel body (missing '}')");
            };
            if line == "}" {
                break;
            }
            if let Some(label) = line.strip_suffix(':') {
                if label_at.insert(label.to_string(), instrs.len()).is_some() {
                    return err(ln, format!("duplicate label {label:?}"));
                }
                continue;
            }
            let stmt = line.strip_suffix(';').unwrap_or(line);
            let (instr, target, reconv) = parse_statement(ln, stmt, &b)?;
            for r in instr.def_regs(true).into_iter().chain(instr.use_regs(true)) {
                max_reg = max_reg.max(r.0 + 1);
            }
            if let Some(p) = instr.pred_dst {
                max_pred = max_pred.max(p.0 + 1);
            }
            if let Some((p, _)) = instr.guard {
                max_pred = max_pred.max(p.0 + 1);
            }
            instrs.push((ln, instr, target, reconv));
        }

        // Claim registers/predicates in the builder so num_regs is right.
        while b.regs_used() < max_reg as u32 {
            let _ = b.reg();
        }
        for _ in 0..max_pred {
            let _ = b.pred();
        }

        // Emit with resolved targets.
        for (ln, mut instr, target, reconv) in instrs {
            if let Some(t) = target {
                let Some(&at) = label_at.get(&t) else {
                    return err(ln, format!("undefined label {t:?}"));
                };
                instr.target = Some(at);
            }
            if let Some(t) = reconv {
                let Some(&at) = label_at.get(&t) else {
                    return err(ln, format!("undefined label {t:?}"));
                };
                instr.reconv = Some(at);
            }
            b.emit(instr);
        }
        Ok(Some(b.build()))
    }
}

fn parse_reg(ln: usize, tok: &str) -> Result<Reg> {
    let Some(n) = tok.strip_prefix('r').and_then(|s| s.parse::<u16>().ok()) else {
        return err(ln, format!("expected register, found {tok:?}"));
    };
    Ok(Reg(n))
}

fn parse_pred(ln: usize, tok: &str) -> Result<PredReg> {
    let Some(n) = tok.strip_prefix('p').and_then(|s| s.parse::<u8>().ok()) else {
        return err(ln, format!("expected predicate, found {tok:?}"));
    };
    if n >= 8 {
        return err(ln, "predicate index out of range (p0..p7)");
    }
    Ok(PredReg(n))
}

fn parse_special(tok: &str) -> Option<SpecialReg> {
    Some(match tok {
        "%tid.x" => SpecialReg::TidX,
        "%tid.y" => SpecialReg::TidY,
        "%tid.z" => SpecialReg::TidZ,
        "%ctaid.x" => SpecialReg::CtaIdX,
        "%ctaid.y" => SpecialReg::CtaIdY,
        "%ctaid.z" => SpecialReg::CtaIdZ,
        "%ntid.x" => SpecialReg::NTidX,
        "%ntid.y" => SpecialReg::NTidY,
        "%nctaid.x" => SpecialReg::NCtaIdX,
        "%nctaid.y" => SpecialReg::NCtaIdY,
        "%laneid" => SpecialReg::LaneId,
        "%warpid" => SpecialReg::WarpId,
        _ => return None,
    })
}

fn parse_operand(ln: usize, tok: &str) -> Result<Operand> {
    if let Some(s) = parse_special(tok) {
        return Ok(Operand::Special(s));
    }
    if tok.starts_with('r') {
        return Ok(Operand::Reg(parse_reg(ln, tok)?));
    }
    if tok.starts_with('p') && tok.len() == 2 {
        return Ok(Operand::Pred(parse_pred(ln, tok)?));
    }
    if let Some(hex) = tok.strip_prefix("0x") {
        if let Ok(v) = i64::from_str_radix(hex, 16) {
            return Ok(Operand::Imm(v));
        }
    }
    if let Ok(v) = tok.parse::<i64>() {
        return Ok(Operand::Imm(v));
    }
    if let Ok(v) = tok.parse::<f32>() {
        return Ok(Operand::fimm(v));
    }
    err(ln, format!("cannot parse operand {tok:?}"))
}

/// Parses `[rN]`, `[rN+imm]` or `[rN-imm]` into (base reg, offset).
fn parse_addr(ln: usize, tok: &str) -> Result<(Reg, i64)> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("expected [addr], found {tok:?}"),
        })?;
    if let Some((base, off)) = inner.split_once('+') {
        Ok((
            parse_reg(ln, base.trim())?,
            off.trim().parse().map_err(|_| ParseError {
                line: ln,
                message: format!("bad offset {off:?}"),
            })?,
        ))
    } else if let Some((base, off)) = inner.split_once('-') {
        let v: i64 = off.trim().parse().map_err(|_| ParseError {
            line: ln,
            message: format!("bad offset {off:?}"),
        })?;
        Ok((parse_reg(ln, base.trim())?, -v))
    } else {
        Ok((parse_reg(ln, inner.trim())?, 0))
    }
}

fn parse_width(ln: usize, tok: &str) -> Result<MemWidth> {
    Ok(match tok {
        "b8" | "u8" | "s8" => MemWidth::B8,
        "b16" | "u16" | "s16" | "f16" => MemWidth::B16,
        "b32" | "u32" | "s32" | "f32" => MemWidth::B32,
        "b64" | "u64" | "s64" | "f64" => MemWidth::B64,
        "b128" | "v4.b32" => MemWidth::B128,
        other => return err(ln, format!("unknown width {other:?}")),
    })
}

fn parse_space(ln: usize, tok: &str) -> Result<MemSpace> {
    Ok(match tok {
        "global" => MemSpace::Global,
        "shared" => MemSpace::Shared,
        "param" => MemSpace::Param,
        "local" => MemSpace::Local,
        other => return err(ln, format!("unknown space {other:?}")),
    })
}

fn parse_dtype(ln: usize, tok: &str) -> Result<DataType> {
    Ok(match tok {
        "u32" => DataType::U32,
        "s32" => DataType::S32,
        "u64" => DataType::U64,
        "f16" => DataType::F16,
        "f32" => DataType::F32,
        "f64" => DataType::F64,
        other => return err(ln, format!("unknown type {other:?}")),
    })
}

fn parse_layout(ln: usize, tok: &str) -> Result<Layout> {
    Ok(match tok {
        "row" => Layout::Row,
        "col" => Layout::Col,
        other => return err(ln, format!("unknown layout {other:?}")),
    })
}

fn split_args(rest: &str) -> Vec<String> {
    rest.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

type Parsed = (Instr, Option<String>, Option<String>);

fn parse_statement(ln: usize, stmt: &str, b: &KernelBuilder) -> Result<Parsed> {
    let _ = b;
    // Optional @p / @!p guard.
    let (guard, stmt) = if let Some(rest) = stmt.strip_prefix('@') {
        let (ptok, rest) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| ParseError {
                line: ln,
                message: "guard without instruction".into(),
            })?;
        let (sense, ptok) = if let Some(p) = ptok.strip_prefix('!') {
            (false, p)
        } else {
            (true, ptok)
        };
        (Some((parse_pred(ln, ptok)?, sense)), rest.trim())
    } else {
        (None, stmt)
    };

    let (mnemonic, rest) = stmt
        .split_once(char::is_whitespace)
        .map(|(m, r)| (m, r.trim()))
        .unwrap_or((stmt, ""));
    let parts: Vec<&str> = mnemonic.split('.').collect();
    let args = split_args(rest);

    let mut target: Option<String> = None;
    let mut reconv: Option<String> = None;

    let mut instr = match parts.as_slice() {
        ["nop"] => Instr::new(Op::Nop),
        ["exit"] => Instr::new(Op::Exit),
        ["bar"] | ["bar", "sync"] => Instr::new(Op::Bar),
        ["clock"] => {
            let d = parse_reg(ln, &args[0])?;
            Instr::new(Op::Clock).with_dst(d)
        }
        ["bra"] => {
            target = Some(args[0].clone());
            Instr::new(Op::Bra)
        }
        ["bra", "div"] => {
            if args.len() != 2 {
                return err(ln, "bra.div needs `target, reconv`");
            }
            target = Some(args[0].clone());
            reconv = Some(args[1].clone());
            Instr::new(Op::Bra)
        }
        ["mov"] | ["mov", "u32" | "s32" | "b32" | "f32"] => {
            let d = parse_reg(ln, &args[0])?;
            Instr::new(Op::Mov)
                .with_dst(d)
                .with_srcs(vec![parse_operand(ln, &args[1])?])
        }
        ["mov", "b64" | "u64"] => {
            let d = parse_reg(ln, &args[0])?;
            let src = if args[1].starts_with('r') {
                Operand::RegPair(parse_reg(ln, &args[1])?)
            } else {
                parse_operand(ln, &args[1])?
            };
            Instr::new(Op::Mov64).with_dst(d).with_srcs(vec![src])
        }
        ["iadd", ..]
        | ["isub", ..]
        | ["imul", ..]
        | ["imin", ..]
        | ["imax", ..]
        | ["shl", ..]
        | ["shr", ..]
        | ["sar", ..]
        | ["and", ..]
        | ["or", ..]
        | ["xor", ..]
            if parts[0] != "iadd" || parts.get(1) != Some(&"wide") =>
        {
            let op = match parts[0] {
                "iadd" => Op::IAdd,
                "isub" => Op::ISub,
                "imul" => Op::IMul,
                "imin" => Op::IMin,
                "imax" => Op::IMax,
                "shl" => Op::Shl,
                "shr" => Op::Shr,
                "sar" => Op::Sar,
                "and" => Op::And,
                "or" => Op::Or,
                _ => Op::Xor,
            };
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            let bop = parse_operand(ln, &args[2])?;
            Instr::new(op)
                .with_dst(d)
                .with_srcs(vec![Operand::Reg(a), bop])
        }
        ["not", ..] => {
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            Instr::new(Op::Not)
                .with_dst(d)
                .with_srcs(vec![Operand::Reg(a)])
        }
        ["imad"] | ["imad", "lo" | "u32" | "s32"] => {
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            Instr::new(Op::IMad).with_dst(d).with_srcs(vec![
                Operand::Reg(a),
                parse_operand(ln, &args[2])?,
                parse_operand(ln, &args[3])?,
            ])
        }
        ["imad", "wide"] => {
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            let bop = parse_operand(ln, &args[2])?;
            let c = parse_reg(ln, &args[3])?;
            Instr::new(Op::IMadWide).with_dst(d).with_srcs(vec![
                Operand::Reg(a),
                bop,
                Operand::RegPair(c),
            ])
        }
        ["iadd", "wide"] | ["iadd64"] => {
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            Instr::new(Op::IAdd64)
                .with_dst(d)
                .with_srcs(vec![Operand::RegPair(a), parse_operand(ln, &args[2])?])
        }
        ["fadd", ..] | ["fmul", ..] | ["fmin", ..] | ["fmax", ..] => {
            let op = match parts[0] {
                "fadd" => Op::FAdd,
                "fmul" => Op::FMul,
                "fmin" => Op::FMin,
                _ => Op::FMax,
            };
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            Instr::new(op)
                .with_dst(d)
                .with_srcs(vec![Operand::Reg(a), parse_operand(ln, &args[2])?])
        }
        ["dadd"] | ["dmul"] => {
            let op = if parts[0] == "dadd" {
                Op::DAdd
            } else {
                Op::DMul
            };
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            let bb = parse_reg(ln, &args[2])?;
            Instr::new(op)
                .with_dst(d)
                .with_srcs(vec![Operand::RegPair(a), Operand::RegPair(bb)])
        }
        ["dfma"] => {
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            let bb = parse_reg(ln, &args[2])?;
            let c = parse_reg(ln, &args[3])?;
            Instr::new(Op::DFma).with_dst(d).with_srcs(vec![
                Operand::RegPair(a),
                Operand::RegPair(bb),
                Operand::RegPair(c),
            ])
        }
        ["ffma", ..] => {
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            Instr::new(Op::FFma).with_dst(d).with_srcs(vec![
                Operand::Reg(a),
                parse_operand(ln, &args[2])?,
                parse_operand(ln, &args[3])?,
            ])
        }
        ["frcp"] | ["fsqrt"] | ["fex2"] | ["flg2"] => {
            let op = match parts[0] {
                "frcp" => Op::FRcp,
                "fsqrt" => Op::FSqrt,
                "fex2" => Op::FEx2,
                _ => Op::FLg2,
            };
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            Instr::new(op).with_dst(d).with_srcs(vec![Operand::Reg(a)])
        }
        ["hadd2"] | ["hmul2"] => {
            let op = if parts[0] == "hadd2" {
                Op::HAdd2
            } else {
                Op::HMul2
            };
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            Instr::new(op)
                .with_dst(d)
                .with_srcs(vec![Operand::Reg(a), parse_operand(ln, &args[2])?])
        }
        ["hfma2"] => {
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            Instr::new(Op::HFma2).with_dst(d).with_srcs(vec![
                Operand::Reg(a),
                parse_operand(ln, &args[2])?,
                parse_operand(ln, &args[3])?,
            ])
        }
        ["cvt", to, from] => {
            let d = parse_reg(ln, &args[0])?;
            Instr::new(Op::Cvt {
                from: parse_dtype(ln, from)?,
                to: parse_dtype(ln, to)?,
            })
            .with_dst(d)
            .with_srcs(vec![parse_operand(ln, &args[1])?])
        }
        ["setp", cmp, ty] => {
            let cmp = match *cmp {
                "eq" => CmpOp::Eq,
                "ne" => CmpOp::Ne,
                "lt" => CmpOp::Lt,
                "le" => CmpOp::Le,
                "gt" => CmpOp::Gt,
                "ge" => CmpOp::Ge,
                other => return err(ln, format!("unknown comparison {other:?}")),
            };
            let pd = parse_pred(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            let mut i = Instr::new(Op::Setp {
                cmp,
                ty: parse_dtype(ln, ty)?,
            })
            .with_srcs(vec![Operand::Reg(a), parse_operand(ln, &args[2])?]);
            i.pred_dst = Some(pd);
            i
        }
        ["selp", ..] => {
            let d = parse_reg(ln, &args[0])?;
            let p = parse_pred(ln, &args[1])?;
            Instr::new(Op::SelP).with_dst(d).with_srcs(vec![
                Operand::Pred(p),
                parse_operand(ln, &args[2])?,
                parse_operand(ln, &args[3])?,
            ])
        }
        ["ld", "param", w] => {
            let width = parse_width(ln, w)?;
            let d = parse_reg(ln, &args[0])?;
            // [name] resolved against declared params.
            let inner = args[1].trim_start_matches('[').trim_end_matches(']');
            let offset = b.peek_param_offset(inner).ok_or_else(|| ParseError {
                line: ln,
                message: format!("unknown param {inner:?}"),
            })?;
            Instr::new(Op::Ld {
                space: MemSpace::Param,
                width,
            })
            .with_dst(d)
            .with_srcs(vec![Operand::Imm(offset as i64), Operand::Imm(0)])
        }
        ["ld", space, w] => {
            let space = parse_space(ln, space)?;
            let width = parse_width(ln, w)?;
            let d = parse_reg(ln, &args[0])?;
            let (base, off) = parse_addr(ln, &args[1])?;
            let addr = if space == MemSpace::Shared {
                Operand::Reg(base)
            } else {
                Operand::RegPair(base)
            };
            Instr::new(Op::Ld { space, width })
                .with_dst(d)
                .with_srcs(vec![addr, Operand::Imm(off)])
        }
        ["shfl", mode] | ["shfl", "sync", mode] => {
            let mode = match *mode {
                "down" => ShflMode::Down,
                "up" => ShflMode::Up,
                "bfly" => ShflMode::Bfly,
                "idx" => ShflMode::Idx,
                other => return err(ln, format!("unknown shuffle mode {other:?}")),
            };
            let d = parse_reg(ln, &args[0])?;
            let v = parse_reg(ln, &args[1])?;
            let b = parse_operand(ln, &args[2])?;
            Instr::new(Op::Shfl { mode })
                .with_dst(d)
                .with_srcs(vec![Operand::Reg(v), b])
        }
        ["atom", space, aop] | ["atom", space, aop, "u32" | "s32" | "b32"] => {
            let space = parse_space(ln, space)?;
            let aop = match *aop {
                "add" => AtomOp::Add,
                "min" => AtomOp::Min,
                "max" => AtomOp::Max,
                "exch" => AtomOp::Exch,
                other => return err(ln, format!("unknown atomic op {other:?}")),
            };
            let d = parse_reg(ln, &args[0])?;
            let (base, off) = parse_addr(ln, &args[1])?;
            let data = parse_reg(ln, &args[2])?;
            let addr = if space == MemSpace::Shared {
                Operand::Reg(base)
            } else {
                Operand::RegPair(base)
            };
            Instr::new(Op::Atom { space, op: aop })
                .with_dst(d)
                .with_srcs(vec![addr, Operand::Imm(off), Operand::Reg(data)])
        }
        ["st", space, w] => {
            let space = parse_space(ln, space)?;
            let width = parse_width(ln, w)?;
            let (base, off) = parse_addr(ln, &args[0])?;
            let data = parse_reg(ln, &args[1])?;
            let addr = if space == MemSpace::Shared {
                Operand::Reg(base)
            } else {
                Operand::RegPair(base)
            };
            Instr::new(Op::St { space, width }).with_srcs(vec![
                addr,
                Operand::Imm(off),
                Operand::Reg(data),
            ])
        }
        ["wmma", "load", frag, "sync", layout, shape, ty, space] => {
            let frag = match *frag {
                "a" => FragmentKind::A,
                "b" => FragmentKind::B,
                "c" => FragmentKind::C,
                other => return err(ln, format!("bad wmma.load fragment {other:?}")),
            };
            let shape = WmmaShape::from_qualifier(shape).ok_or_else(|| ParseError {
                line: ln,
                message: format!("bad shape {shape:?}"),
            })?;
            let ty = WmmaType::from_qualifier(ty).ok_or_else(|| ParseError {
                line: ln,
                message: format!("bad type {ty:?}"),
            })?;
            let space = parse_space(ln, space)?;
            let d = parse_reg(ln, &args[0])?;
            let (base, _off) = parse_addr(ln, &args[1])?;
            let stride = parse_operand(ln, &args[2])?;
            let addr = if space == MemSpace::Shared {
                Operand::Reg(base)
            } else {
                Operand::RegPair(base)
            };
            Instr::new(Op::Wmma(WmmaDirective::Load {
                frag,
                shape,
                layout: parse_layout(ln, layout)?,
                ty,
            }))
            .with_dst(d)
            .with_srcs(vec![
                addr,
                stride,
                Operand::Imm(if space == MemSpace::Shared { 1 } else { 0 }),
            ])
        }
        ["wmma", "mma", "sync", al, bl, shape, dt, ct]
        | ["wmma", "mma", "sync", al, bl, shape, dt, ct, _] => {
            let ab = if parts.len() == 9 {
                WmmaType::from_qualifier(parts[8]).ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad ab type".into(),
                })?
            } else {
                WmmaType::F16
            };
            let shape = WmmaShape::from_qualifier(shape).ok_or_else(|| ParseError {
                line: ln,
                message: format!("bad shape {shape:?}"),
            })?;
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            let bb = parse_reg(ln, &args[2])?;
            let c = parse_reg(ln, &args[3])?;
            Instr::new(Op::Wmma(WmmaDirective::Mma {
                shape,
                a_layout: parse_layout(ln, al)?,
                b_layout: parse_layout(ln, bl)?,
                ab_type: ab,
                d_type: WmmaType::from_qualifier(dt).ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad d type".into(),
                })?,
                c_type: WmmaType::from_qualifier(ct).ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad c type".into(),
                })?,
            }))
            .with_dst(d)
            .with_srcs(vec![Operand::Reg(a), Operand::Reg(bb), Operand::Reg(c)])
        }
        ["mma", "sync", "aligned", shape, "row", "col", dt, ab, ab2, ct]
        | ["mma", "sp", "sync", "aligned", shape, "row", "col", dt, ab, ab2, ct] => {
            let sparse = parts[1] == "sp";
            if ab != ab2 {
                return err(
                    ln,
                    format!("mma.sync a/b type qualifiers differ: {ab:?} vs {ab2:?}"),
                );
            }
            let shape = WmmaShape::from_qualifier(shape).ok_or_else(|| ParseError {
                line: ln,
                message: format!("bad shape {shape:?}"),
            })?;
            let ab = WmmaType::from_qualifier(ab).ok_or_else(|| ParseError {
                line: ln,
                message: "bad ab type".into(),
            })?;
            let d = parse_reg(ln, &args[0])?;
            let a = parse_reg(ln, &args[1])?;
            let bb = parse_reg(ln, &args[2])?;
            let c = parse_reg(ln, &args[3])?;
            let mut srcs = vec![Operand::Reg(a), Operand::Reg(bb), Operand::Reg(c)];
            if sparse {
                if args.len() < 5 {
                    return err(ln, "sparse mma.sync needs a metadata register operand");
                }
                srcs.push(Operand::Reg(parse_reg(ln, &args[4])?));
            }
            Instr::new(Op::Wmma(WmmaDirective::MmaSync {
                shape,
                ab_type: ab,
                d_type: WmmaType::from_qualifier(dt).ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad d type".into(),
                })?,
                c_type: WmmaType::from_qualifier(ct).ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad c type".into(),
                })?,
                sparse,
            }))
            .with_dst(d)
            .with_srcs(srcs)
        }
        ["wmma", "store", "d", "sync", layout, shape, ty, space] => {
            let shape = WmmaShape::from_qualifier(shape).ok_or_else(|| ParseError {
                line: ln,
                message: format!("bad shape {shape:?}"),
            })?;
            let ty = WmmaType::from_qualifier(ty).ok_or_else(|| ParseError {
                line: ln,
                message: format!("bad type {ty:?}"),
            })?;
            let space = parse_space(ln, space)?;
            let (base, _off) = parse_addr(ln, &args[0])?;
            let d = parse_reg(ln, &args[1])?;
            let stride = parse_operand(ln, &args[2])?;
            let addr = if space == MemSpace::Shared {
                Operand::Reg(base)
            } else {
                Operand::RegPair(base)
            };
            Instr::new(Op::Wmma(WmmaDirective::Store {
                shape,
                layout: parse_layout(ln, layout)?,
                ty,
            }))
            .with_srcs(vec![
                addr,
                stride,
                Operand::Reg(d),
                Operand::Imm(if space == MemSpace::Shared { 1 } else { 0 }),
            ])
        }
        _ => return err(ln, format!("unknown instruction {mnemonic:?}")),
    };

    instr.guard = guard;
    Ok((instr, target, reconv))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = r#"
.kernel scale
.param a : u64
.param n : u32
{
    mov.u32        r0, %tid.x;          // lane index
    ld.param.b64   r2, [a];
    imad.wide      r4, r0, 4, r2;
    ld.global.b32  r6, [r4+0];
    iadd           r6, r6, 1;
    st.global.b32  [r4+0], r6;
    exit;
}
"#;

    #[test]
    fn parses_simple_kernel() {
        let k = parse_kernel(SIMPLE).unwrap();
        assert_eq!(k.name(), "scale");
        assert_eq!(k.instrs().len(), 7);
        assert_eq!(k.params().len(), 2);
        assert_eq!(k.param_offset("a"), 0);
        assert_eq!(k.param_offset("n"), 8);
        assert!(k.num_regs() >= 7);
        assert_eq!(k.instrs()[0].op, Op::Mov);
        assert!(matches!(
            k.instrs()[3].op,
            Op::Ld {
                space: MemSpace::Global,
                width: MemWidth::B32
            }
        ));
    }

    #[test]
    fn parses_labels_and_guards() {
        let text = r#"
.kernel looped
{
    mov.u32      r0, 0;
TOP:
    iadd         r0, r0, 1;
    setp.lt.s32  p0, r0, 10;
    @p0 bra      TOP;
    @!p0 bra     DONE;
DONE:
    exit;
}
"#;
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.instrs()[3].target, Some(1));
        assert_eq!(k.instrs()[3].guard, Some((PredReg(0), true)));
        assert_eq!(k.instrs()[4].guard, Some((PredReg(0), false)));
        assert_eq!(k.instrs()[4].target, Some(5));
    }

    #[test]
    fn parses_wmma_instructions() {
        let text = r#"
.kernel tile
.param a : u64
{
    ld.param.b64 r2, [a];
    wmma.load.a.sync.row.m16n16k16.f16.global  r8, [r2], 16;
    wmma.load.b.sync.col.m16n16k16.f16.global  r16, [r2], 16;
    wmma.load.c.sync.row.m16n16k16.f32.global  r24, [r2], 16;
    wmma.mma.sync.row.col.m16n16k16.f32.f32    r32, r8, r16, r24;
    wmma.store.d.sync.row.m16n16k16.f32.global [r2], r32, 16;
    exit;
}
"#;
        let k = parse_kernel(text).unwrap();
        let ops: Vec<_> = k.instrs().iter().map(|i| &i.op).collect();
        assert!(matches!(
            ops[1],
            Op::Wmma(WmmaDirective::Load {
                frag: FragmentKind::A,
                layout: Layout::Row,
                ..
            })
        ));
        assert!(matches!(
            ops[4],
            Op::Wmma(WmmaDirective::Mma {
                a_layout: Layout::Row,
                b_layout: Layout::Col,
                ..
            })
        ));
        assert!(matches!(ops[5], Op::Wmma(WmmaDirective::Store { .. })));
        // Volta fragment spans must be claimed: r32..r40 for D.
        assert!(k.num_regs() >= 40);
    }

    #[test]
    fn parses_shared_and_barrier() {
        let text = r#"
.kernel stage
.shared 2048
{
    mov.u32       r0, %tid.x;
    shl           r1, r0, 2;
    st.shared.b32 [r1+0], r0;
    bar.sync;
    ld.shared.b32 r2, [r1+0];
    exit;
}
"#;
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.shared_bytes(), 2048);
        assert!(matches!(k.instrs()[3].op, Op::Bar));
        assert!(matches!(
            k.instrs()[2].op,
            Op::St {
                space: MemSpace::Shared,
                ..
            }
        ));
    }

    #[test]
    fn error_reports_line_numbers() {
        let text = ".kernel bad\n{\n    bogus r0, r1;\n}\n";
        let e = parse_kernel(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("unknown instruction"));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let text = ".kernel bad\n{\n    bra NOWHERE;\n}\n";
        let e = parse_kernel(text).unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let text = ".kernel bad\n{\nL:\nL:\n    exit;\n}\n";
        let e = parse_kernel(text).unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn unknown_param_in_ld_is_an_error() {
        let text = ".kernel bad\n{\n    ld.param.b64 r0, [nope];\n}\n";
        let e = parse_kernel(text).unwrap_err();
        assert!(e.message.contains("unknown param"));
    }

    #[test]
    fn parses_multiple_kernels_into_program() {
        let text = ".kernel one\n{\n    exit;\n}\n.kernel two\n{\n    exit;\n}\n";
        let p = parse_program(text).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.kernel("one").is_some());
        assert!(p.kernel("two").is_some());
    }

    #[test]
    fn bra_div_records_reconvergence() {
        let text = r#"
.kernel div
{
    setp.eq.s32 p0, r0, 0;
    bra.div TAKEN, MERGE;
    mov.u32 r1, 1;
TAKEN:
    mov.u32 r1, 2;
MERGE:
    exit;
}
"#;
        // Note: bra.div keeps the guard from a preceding @-prefix; this form
        // is unguarded and the divergence predicate is implied by lane masks.
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.instrs()[1].target, Some(3));
        assert_eq!(k.instrs()[1].reconv, Some(4));
    }
}
