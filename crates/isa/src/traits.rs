//! Abstract interfaces between the ISA, the tensor-core model and the
//! memory/register substrates.

use crate::instr::Reg;

/// A byte-addressable memory.
///
/// Implemented by the device global memory and per-CTA shared memory in
/// `tcsim-mem`; the tensor-core functional model reads/writes operand
/// matrices through this interface.
pub trait ByteMemory {
    /// Reads one byte. Unwritten locations read as zero.
    fn read_u8(&self, addr: u64) -> u8;

    /// Writes one byte.
    fn write_u8(&mut self, addr: u64, value: u8);

    /// Reads a little-endian 16-bit value.
    fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr + 1)])
    }

    /// Writes a little-endian 16-bit value.
    fn write_u16(&mut self, addr: u64, value: u16) {
        let b = value.to_le_bytes();
        self.write_u8(addr, b[0]);
        self.write_u8(addr + 1, b[1]);
    }

    /// Reads a little-endian 32-bit value.
    fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        for (i, out) in b.iter_mut().enumerate() {
            *out = self.read_u8(addr + i as u64);
        }
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian 32-bit value.
    fn write_u32(&mut self, addr: u64, value: u32) {
        for (i, byte) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr + i as u64, byte);
        }
    }

    /// Reads a little-endian 64-bit value.
    fn read_u64(&self, addr: u64) -> u64 {
        (self.read_u32(addr) as u64) | ((self.read_u32(addr + 4) as u64) << 32)
    }

    /// Writes a little-endian 64-bit value.
    fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr + 4, (value >> 32) as u32);
    }
}

/// A simple growable `Vec<u8>`-backed memory, used for parameter buffers
/// and in tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VecMemory {
    bytes: Vec<u8>,
}

impl VecMemory {
    /// Creates an empty memory.
    pub fn new() -> VecMemory {
        VecMemory::default()
    }

    /// Creates a memory with `len` zero bytes pre-allocated.
    pub fn with_len(len: usize) -> VecMemory {
        VecMemory {
            bytes: vec![0; len],
        }
    }

    /// Current backing length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether no byte has been allocated.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Borrows the backing bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }
}

impl ByteMemory for VecMemory {
    fn read_u8(&self, addr: u64) -> u8 {
        self.bytes.get(addr as usize).copied().unwrap_or(0)
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        let idx = addr as usize;
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
        }
        self.bytes[idx] = value;
    }
}

/// Per-warp view of the register file: 32 lanes × N 32-bit registers.
///
/// The tensor-core functional model reads operand fragments and writes
/// result fragments through this interface (fragments are spans of
/// consecutive registers in each lane, §III-C).
pub trait WarpRegisters {
    /// Reads lane `lane`'s register `reg`.
    fn read(&self, lane: usize, reg: Reg) -> u32;

    /// Writes lane `lane`'s register `reg`.
    fn write(&mut self, lane: usize, reg: Reg, value: u32);

    /// Reads the 64-bit pair `(reg, reg+1)`.
    fn read_pair(&self, lane: usize, reg: Reg) -> u64 {
        (self.read(lane, reg) as u64) | ((self.read(lane, Reg(reg.0 + 1)) as u64) << 32)
    }

    /// Writes the 64-bit pair `(reg, reg+1)`.
    fn write_pair(&mut self, lane: usize, reg: Reg, value: u64) {
        self.write(lane, reg, value as u32);
        self.write(lane, Reg(reg.0 + 1), (value >> 32) as u32);
    }
}

/// Dense register storage for one warp.
#[derive(Clone, Debug)]
pub struct WarpRegFile {
    regs: Vec<u32>,
    per_lane: usize,
}

impl WarpRegFile {
    /// Creates a register file with `per_lane` registers for each of the 32
    /// lanes, all zero.
    pub fn new(per_lane: usize) -> WarpRegFile {
        WarpRegFile {
            regs: vec![0; per_lane * crate::WARP_SIZE],
            per_lane,
        }
    }

    /// Registers per lane.
    pub fn per_lane(&self) -> usize {
        self.per_lane
    }
}

impl WarpRegisters for WarpRegFile {
    fn read(&self, lane: usize, reg: Reg) -> u32 {
        assert!(
            (reg.0 as usize) < self.per_lane,
            "register {reg} out of range (kernel declares {} regs)",
            self.per_lane
        );
        self.regs[lane * self.per_lane + reg.0 as usize]
    }

    fn write(&mut self, lane: usize, reg: Reg, value: u32) {
        assert!(
            (reg.0 as usize) < self.per_lane,
            "register {reg} out of range (kernel declares {} regs)",
            self.per_lane
        );
        self.regs[lane * self.per_lane + reg.0 as usize] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_memory_reads_zero_when_unwritten() {
        let m = VecMemory::new();
        assert_eq!(m.read_u8(100), 0);
        assert_eq!(m.read_u32(4096), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn vec_memory_roundtrips_all_widths() {
        let mut m = VecMemory::new();
        m.write_u8(0, 0xAB);
        m.write_u16(2, 0xBEEF);
        m.write_u32(4, 0xDEAD_BEEF);
        m.write_u64(8, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u8(0), 0xAB);
        assert_eq!(m.read_u16(2), 0xBEEF);
        assert_eq!(m.read_u32(4), 0xDEAD_BEEF);
        assert_eq!(m.read_u64(8), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.len(), 16);
    }

    #[test]
    fn vec_memory_is_little_endian() {
        let mut m = VecMemory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.as_slice()[..4], [1, 2, 3, 4]);
    }

    #[test]
    fn warp_regfile_isolates_lanes() {
        let mut rf = WarpRegFile::new(16);
        rf.write(0, Reg(3), 111);
        rf.write(1, Reg(3), 222);
        assert_eq!(rf.read(0, Reg(3)), 111);
        assert_eq!(rf.read(1, Reg(3)), 222);
        assert_eq!(rf.read(2, Reg(3)), 0);
        assert_eq!(rf.per_lane(), 16);
    }

    #[test]
    fn warp_regfile_pairs() {
        let mut rf = WarpRegFile::new(8);
        rf.write_pair(5, Reg(2), 0xAAAA_BBBB_CCCC_DDDD);
        assert_eq!(rf.read(5, Reg(2)), 0xCCCC_DDDD);
        assert_eq!(rf.read(5, Reg(3)), 0xAAAA_BBBB);
        assert_eq!(rf.read_pair(5, Reg(2)), 0xAAAA_BBBB_CCCC_DDDD);
    }
}
