//! Fundamental SIMT execution types: grid/block geometry, address spaces,
//! access widths, scalar data types, and special registers.

use std::fmt;

/// A three-component extent or index, as used for CUDA grids and blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// X component (fastest varying).
    pub x: u32,
    /// Y component.
    pub y: u32,
    /// Z component.
    pub z: u32,
}

impl Dim3 {
    /// One in every dimension.
    pub const ONE: Dim3 = Dim3 { x: 1, y: 1, z: 1 };

    /// Creates a 3-D extent.
    pub const fn new(x: u32, y: u32, z: u32) -> Dim3 {
        Dim3 { x, y, z }
    }

    /// A 1-D extent `(x, 1, 1)`.
    pub const fn x(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    pub const fn xy(x: u32, y: u32) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements covered (`x·y·z`).
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Converts a flat index in `0..count()` to a (x, y, z) coordinate.
    pub fn delinearize(self, flat: u64) -> Dim3 {
        let x = (flat % self.x as u64) as u32;
        let y = ((flat / self.x as u64) % self.y as u64) as u32;
        let z = (flat / (self.x as u64 * self.y as u64)) as u32;
        Dim3 { x, y, z }
    }

    /// Converts a coordinate back to its flat index.
    pub fn linearize(self, idx: Dim3) -> u64 {
        idx.x as u64 + self.x as u64 * (idx.y as u64 + self.y as u64 * idx.z as u64)
    }
}

impl Default for Dim3 {
    fn default() -> Dim3 {
        Dim3::ONE
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Dim3 {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Dim3 {
        Dim3::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Dim3 {
        Dim3::new(x, y, z)
    }
}

/// Grid/block geometry plus dynamic shared memory for one kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks (CTAs) in the grid.
    pub grid: Dim3,
    /// Number of threads in each CTA.
    pub block: Dim3,
    /// Dynamic shared memory per CTA in bytes (added to the kernel's static
    /// allocation).
    pub shared_bytes: u32,
}

impl LaunchConfig {
    /// Creates a launch configuration with no dynamic shared memory.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> LaunchConfig {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
            shared_bytes: 0,
        }
    }

    /// Sets the dynamic shared memory size.
    pub fn with_shared_bytes(mut self, bytes: u32) -> LaunchConfig {
        self.shared_bytes = bytes;
        self
    }

    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> u32 {
        self.block.count() as u32
    }

    /// Warps per CTA (threads rounded up to warp granularity).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta().div_ceil(crate::WARP_SIZE as u32)
    }

    /// Total CTAs in the grid.
    pub fn total_ctas(&self) -> u64 {
        self.grid.count()
    }
}

/// Memory address spaces visible to a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory, backed by DRAM through the L1/L2 hierarchy.
    Global,
    /// Per-CTA scratchpad with 32 banks (`.shared`).
    Shared,
    /// Read-only kernel parameter space (`.param`).
    Param,
    /// Per-thread local memory (spills); modeled as global traffic.
    Local,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Param => "param",
            MemSpace::Local => "local",
        };
        f.write_str(s)
    }
}

/// Access widths supported by loads and stores.
///
/// `B64`/`B128` correspond to the SASS `LD.E.64`/`LD.E.128` instructions
/// that `wmma.load` decomposes into (§III-C of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// 1 byte.
    B8,
    /// 2 bytes.
    B16,
    /// 4 bytes (one register).
    B32,
    /// 8 bytes (an aligned register pair).
    B64,
    /// 16 bytes (an aligned register quad).
    B128,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B8 => 1,
            MemWidth::B16 => 2,
            MemWidth::B32 => 4,
            MemWidth::B64 => 8,
            MemWidth::B128 => 16,
        }
    }

    /// Number of 32-bit registers written/read (at least one).
    pub const fn regs(self) -> usize {
        match self {
            MemWidth::B8 | MemWidth::B16 | MemWidth::B32 => 1,
            MemWidth::B64 => 2,
            MemWidth::B128 => 4,
        }
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.bytes() * 8)
    }
}

/// Scalar data types used by conversions and comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 32-bit integer.
    S32,
    /// Unsigned 64-bit integer (register pair).
    U64,
    /// IEEE binary16.
    F16,
    /// IEEE binary32.
    F32,
    /// IEEE binary64 (register pair).
    F64,
}

impl DataType {
    /// Width of the type in bits.
    pub const fn bits(self) -> u32 {
        match self {
            DataType::F16 => 16,
            DataType::U32 | DataType::S32 | DataType::F32 => 32,
            DataType::U64 | DataType::F64 => 64,
        }
    }

    /// Whether the type occupies a register pair.
    pub const fn is_pair(self) -> bool {
        matches!(self, DataType::U64 | DataType::F64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::U32 => "u32",
            DataType::S32 => "s32",
            DataType::U64 => "u64",
            DataType::F16 => "f16",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// Read-only special registers (`S2R` sources).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the CTA, x component (`%tid.x`).
    TidX,
    /// Thread index within the CTA, y component.
    TidY,
    /// Thread index within the CTA, z component.
    TidZ,
    /// CTA index within the grid, x component (`%ctaid.x`).
    CtaIdX,
    /// CTA index within the grid, y component.
    CtaIdY,
    /// CTA index within the grid, z component.
    CtaIdZ,
    /// CTA extent, x component (`%ntid.x`).
    NTidX,
    /// CTA extent, y component.
    NTidY,
    /// Grid extent, x component (`%nctaid.x`).
    NCtaIdX,
    /// Grid extent, y component.
    NCtaIdY,
    /// Lane within the warp (`%laneid`).
    LaneId,
    /// Warp index within the CTA (`%warpid`).
    WarpId,
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::TidY => "%tid.y",
            SpecialReg::TidZ => "%tid.z",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::CtaIdY => "%ctaid.y",
            SpecialReg::CtaIdZ => "%ctaid.z",
            SpecialReg::NTidX => "%ntid.x",
            SpecialReg::NTidY => "%ntid.y",
            SpecialReg::NCtaIdX => "%nctaid.x",
            SpecialReg::NCtaIdY => "%nctaid.y",
            SpecialReg::LaneId => "%laneid",
            SpecialReg::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_linearize_roundtrip() {
        let ext = Dim3::new(7, 5, 3);
        for flat in 0..ext.count() {
            let idx = ext.delinearize(flat);
            assert_eq!(ext.linearize(idx), flat);
            assert!(idx.x < ext.x && idx.y < ext.y && idx.z < ext.z);
        }
    }

    #[test]
    fn dim3_conversions() {
        assert_eq!(Dim3::from(16u32), Dim3::new(16, 1, 1));
        assert_eq!(Dim3::from((4u32, 5u32)), Dim3::new(4, 5, 1));
        assert_eq!(Dim3::from((1u32, 2u32, 3u32)), Dim3::new(1, 2, 3));
        assert_eq!(Dim3::default(), Dim3::ONE);
        assert_eq!(Dim3::new(2, 3, 4).to_string(), "(2, 3, 4)");
    }

    #[test]
    fn launch_config_warp_math() {
        let lc = LaunchConfig::new(4u32, 96u32);
        assert_eq!(lc.threads_per_cta(), 96);
        assert_eq!(lc.warps_per_cta(), 3);
        assert_eq!(lc.total_ctas(), 4);
        let lc = LaunchConfig::new(1u32, 33u32);
        assert_eq!(lc.warps_per_cta(), 2);
        assert_eq!(lc.with_shared_bytes(4096).shared_bytes, 4096);
    }

    #[test]
    fn mem_width_sizes() {
        assert_eq!(MemWidth::B8.bytes(), 1);
        assert_eq!(MemWidth::B128.bytes(), 16);
        assert_eq!(MemWidth::B128.regs(), 4);
        assert_eq!(MemWidth::B64.regs(), 2);
        assert_eq!(MemWidth::B32.regs(), 1);
        assert_eq!(MemWidth::B64.to_string(), "b64");
    }

    #[test]
    fn data_type_widths() {
        assert_eq!(DataType::F16.bits(), 16);
        assert_eq!(DataType::F32.bits(), 32);
        assert!(DataType::U64.is_pair());
        assert!(!DataType::S32.is_pair());
        assert_eq!(DataType::F64.to_string(), "f64");
    }
}
