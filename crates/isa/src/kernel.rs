//! Kernel IR: resolved instruction sequences plus resources, and the
//! builder DSL used by the CUTLASS-like library to emit kernels.

use crate::instr::{AtomOp, CmpOp, Instr, Op, Operand, PredReg, Reg, ShflMode};
use crate::types::{DataType, MemSpace, MemWidth};
use crate::wmma::{FragmentKind, Layout, WmmaDirective, WmmaShape, WmmaType};
use std::collections::HashMap;
use std::fmt;

/// A forward-referenceable code label used during kernel construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// One kernel parameter: a name, size and byte offset into the parameter
/// buffer (`.param` space).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamDesc {
    /// Parameter name.
    pub name: String,
    /// Size in bytes (4 or 8).
    pub bytes: u32,
    /// Byte offset within the parameter buffer.
    pub offset: u32,
}

/// A compiled kernel: instructions with resolved branch targets, register
/// and shared-memory requirements, and the parameter layout.
#[derive(Clone, Debug)]
pub struct Kernel {
    name: String,
    instrs: Vec<Instr>,
    num_regs: u32,
    shared_bytes: u32,
    params: Vec<ParamDesc>,
}

impl Kernel {
    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence (branch targets are instruction indices).
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Architectural registers required per thread.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// Static shared memory required per CTA, in bytes.
    pub fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    /// Declared kernel parameters in declaration order.
    pub fn params(&self) -> &[ParamDesc] {
        &self.params
    }

    /// Total parameter buffer size in bytes.
    pub fn param_bytes(&self) -> u32 {
        self.params.last().map(|p| p.offset + p.bytes).unwrap_or(0)
    }

    /// Looks up a parameter's byte offset by name.
    ///
    /// # Panics
    ///
    /// Panics if no parameter with that name was declared.
    pub fn param_offset(&self, name: &str) -> u32 {
        self.params
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("kernel {}: unknown parameter {name}", self.name))
            .offset
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ".kernel {} .regs {} .shared {}",
            self.name, self.num_regs, self.shared_bytes
        )?;
        for p in &self.params {
            writeln!(f, ".param {} : {} @ {}", p.name, p.bytes, p.offset)?;
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:4}: {i}")?;
        }
        Ok(())
    }
}

/// A collection of kernels addressable by name (a "module").
#[derive(Clone, Debug, Default)]
pub struct Program {
    kernels: HashMap<String, Kernel>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a kernel, replacing any existing kernel of the same name.
    pub fn add(&mut self, kernel: Kernel) {
        self.kernels.insert(kernel.name().to_string(), kernel);
    }

    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.get(name)
    }

    /// Number of kernels in the program.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the program holds no kernels.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Iterates over all kernels in unspecified order.
    pub fn kernels(&self) -> impl Iterator<Item = &Kernel> {
        self.kernels.values()
    }
}

impl FromIterator<Kernel> for Program {
    fn from_iter<T: IntoIterator<Item = Kernel>>(iter: T) -> Program {
        let mut p = Program::new();
        for k in iter {
            p.add(k);
        }
        p
    }
}

/// Assembler-style builder for [`Kernel`]s.
///
/// Registers are allocated with [`reg`](KernelBuilder::reg) /
/// [`reg_block`](KernelBuilder::reg_block); labels are created with
/// [`label`](KernelBuilder::label), bound with
/// [`place`](KernelBuilder::place) and may be referenced before binding.
///
/// # Example
///
/// ```
/// use tcsim_isa::{KernelBuilder, Operand, CmpOp, DataType};
///
/// let mut b = KernelBuilder::new("count_to_ten");
/// let i = b.reg();
/// b.mov(i, Operand::Imm(0));
/// let top = b.label();
/// b.place(top);
/// b.iadd(i, i, Operand::Imm(1));
/// let p = b.pred();
/// b.setp(p, CmpOp::Lt, DataType::S32, i, Operand::Imm(10));
/// b.bra_if(p, true, top);
/// b.exit();
/// let k = b.build();
/// assert_eq!(k.instrs()[3].target, Some(1));
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label, bool)>, // (pc, label, is_reconv)
    next_reg: u16,
    next_pred: u8,
    shared_bytes: u32,
    params: Vec<ParamDesc>,
    param_cursor: u32,
}

impl KernelBuilder {
    /// Starts building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            next_reg: 0,
            next_pred: 0,
            shared_bytes: 0,
            params: Vec::new(),
            param_cursor: 0,
        }
    }

    /// Allocates a fresh 32-bit register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocates `n` consecutive registers and returns the base (used for
    /// WMMA fragments and vector loads). The base is aligned to the
    /// smallest power of two ≥ `n` (max 4), matching SASS vector-register
    /// alignment rules.
    pub fn reg_block(&mut self, n: usize) -> Reg {
        let align = (n.next_power_of_two().min(4)) as u16;
        let base = self.next_reg.div_ceil(align) * align;
        self.next_reg = base + n as u16;
        Reg(base)
    }

    /// Allocates a register pair for a 64-bit value (aligned to 2).
    pub fn reg_pair(&mut self) -> Reg {
        self.reg_block(2)
    }

    /// Allocates a fresh predicate register.
    ///
    /// # Panics
    ///
    /// Panics if more than 8 predicates are requested.
    pub fn pred(&mut self) -> PredReg {
        assert!(self.next_pred < 8, "out of predicate registers");
        let p = PredReg(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Declares a kernel parameter of `bytes` size (4 or 8), returning its
    /// byte offset in the parameter buffer. Offsets are naturally aligned.
    pub fn param(&mut self, name: impl Into<String>, bytes: u32) -> u32 {
        assert!(bytes == 4 || bytes == 8, "parameters are 4 or 8 bytes");
        let offset = self.param_cursor.div_ceil(bytes) * bytes;
        self.param_cursor = offset + bytes;
        self.params.push(ParamDesc {
            name: name.into(),
            bytes,
            offset,
        });
        offset
    }

    /// Declares a 64-bit (pointer) parameter.
    pub fn param_u64(&mut self, name: impl Into<String>) -> u32 {
        self.param(name, 8)
    }

    /// Declares a 32-bit parameter.
    pub fn param_u32(&mut self, name: impl Into<String>) -> u32 {
        self.param(name, 4)
    }

    /// Reserves `bytes` of static shared memory, returning the byte offset
    /// of the reservation (16-byte aligned).
    pub fn shared_alloc(&mut self, bytes: u32) -> u32 {
        let offset = self.shared_bytes.div_ceil(16) * 16;
        self.shared_bytes = offset + bytes;
        offset
    }

    /// Creates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Appends a raw instruction (escape hatch).
    pub fn emit(&mut self, instr: Instr) -> &mut Instr {
        self.instrs.push(instr);
        self.instrs.last_mut().expect("just pushed")
    }

    fn emit3(&mut self, op: Op, dst: Reg, srcs: Vec<Operand>) {
        self.emit(Instr::new(op).with_dst(dst).with_srcs(srcs));
    }

    /// `dst ← src` (32-bit).
    pub fn mov(&mut self, dst: Reg, src: Operand) {
        self.emit3(Op::Mov, dst, vec![src]);
    }

    /// `dst_pair ← src` (64-bit move; `src` may be a pair or immediate).
    pub fn mov64(&mut self, dst: Reg, src: Operand) {
        self.emit3(Op::Mov64, dst, vec![src]);
    }

    /// `dst ← a + b`.
    pub fn iadd(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::IAdd, dst, vec![Operand::Reg(a), b]);
    }

    /// `dst ← a − b`.
    pub fn isub(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::ISub, dst, vec![Operand::Reg(a), b]);
    }

    /// `dst ← a × b` (low 32 bits).
    pub fn imul(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::IMul, dst, vec![Operand::Reg(a), b]);
    }

    /// `dst ← a × b + c` (low 32 bits).
    pub fn imad(&mut self, dst: Reg, a: Reg, b: Operand, c: Operand) {
        self.emit3(Op::IMad, dst, vec![Operand::Reg(a), b, c]);
    }

    /// Signed `dst ← min(a, b)`.
    pub fn imin(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::IMin, dst, vec![Operand::Reg(a), b]);
    }

    /// Signed `dst ← max(a, b)`.
    pub fn imax(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::IMax, dst, vec![Operand::Reg(a), b]);
    }

    /// `dst ← a << b`.
    pub fn shl(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::Shl, dst, vec![Operand::Reg(a), b]);
    }

    /// `dst ← a >> b` (logical).
    pub fn shr(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::Shr, dst, vec![Operand::Reg(a), b]);
    }

    /// `dst ← a & b`.
    pub fn and(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::And, dst, vec![Operand::Reg(a), b]);
    }

    /// `dst ← a | b`.
    pub fn or(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::Or, dst, vec![Operand::Reg(a), b]);
    }

    /// `dst ← a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::Xor, dst, vec![Operand::Reg(a), b]);
    }

    /// `dst_pair ← a_pair + b` (b zero-extended if 32-bit).
    pub fn iadd64(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::IAdd64, dst, vec![Operand::RegPair(a), b]);
    }

    /// `dst_pair ← a32 × b32 + c_pair` (SASS `IMAD.WIDE`).
    pub fn imad_wide(&mut self, dst: Reg, a: Reg, b: Operand, c: Reg) {
        self.emit3(
            Op::IMadWide,
            dst,
            vec![Operand::Reg(a), b, Operand::RegPair(c)],
        );
    }

    /// FP32 `dst ← a + b`.
    pub fn fadd(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::FAdd, dst, vec![Operand::Reg(a), b]);
    }

    /// FP32 `dst ← a × b`.
    pub fn fmul(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::FMul, dst, vec![Operand::Reg(a), b]);
    }

    /// FP32 `dst ← a × b + c` (fused).
    pub fn ffma(&mut self, dst: Reg, a: Reg, b: Operand, c: Operand) {
        self.emit3(Op::FFma, dst, vec![Operand::Reg(a), b, c]);
    }

    /// Packed-half `dst ← a + b` per lane pair.
    pub fn hadd2(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::HAdd2, dst, vec![Operand::Reg(a), b]);
    }

    /// Packed-half `dst ← a × b` per lane pair.
    pub fn hmul2(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::HMul2, dst, vec![Operand::Reg(a), b]);
    }

    /// Packed-half `dst ← a × b + c` per lane pair (fused).
    pub fn hfma2(&mut self, dst: Reg, a: Reg, b: Operand, c: Operand) {
        self.emit3(Op::HFma2, dst, vec![Operand::Reg(a), b, c]);
    }

    /// FP32 `dst ← min(a, b)`.
    pub fn fmin(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::FMin, dst, vec![Operand::Reg(a), b]);
    }

    /// FP32 `dst ← max(a, b)`.
    pub fn fmax(&mut self, dst: Reg, a: Reg, b: Operand) {
        self.emit3(Op::FMax, dst, vec![Operand::Reg(a), b]);
    }

    /// MUFU reciprocal `dst ← 1 / a`.
    pub fn frcp(&mut self, dst: Reg, a: Reg) {
        self.emit3(Op::FRcp, dst, vec![Operand::Reg(a)]);
    }

    /// MUFU square root `dst ← √a`.
    pub fn fsqrt(&mut self, dst: Reg, a: Reg) {
        self.emit3(Op::FSqrt, dst, vec![Operand::Reg(a)]);
    }

    /// MUFU base-2 exponential `dst ← 2^a`.
    pub fn fex2(&mut self, dst: Reg, a: Reg) {
        self.emit3(Op::FEx2, dst, vec![Operand::Reg(a)]);
    }

    /// MUFU base-2 logarithm `dst ← log2(a)`.
    pub fn flg2(&mut self, dst: Reg, a: Reg) {
        self.emit3(Op::FLg2, dst, vec![Operand::Reg(a)]);
    }

    /// Type conversion `dst ← cvt(a)`.
    pub fn cvt(&mut self, dst: Reg, from: DataType, to: DataType, a: Operand) {
        self.emit3(Op::Cvt { from, to }, dst, vec![a]);
    }

    /// Predicate compare: `pd ← a <cmp> b`.
    pub fn setp(&mut self, pd: PredReg, cmp: CmpOp, ty: DataType, a: Reg, b: Operand) {
        let mut i = Instr::new(Op::Setp { cmp, ty }).with_srcs(vec![Operand::Reg(a), b]);
        i.pred_dst = Some(pd);
        self.emit(i);
    }

    /// Select `dst ← p ? a : b`.
    pub fn selp(&mut self, dst: Reg, p: PredReg, a: Operand, b: Operand) {
        self.emit3(Op::SelP, dst, vec![Operand::Pred(p), a, b]);
    }

    /// Unconditional branch (must be warp-uniform at execution).
    pub fn bra(&mut self, target: Label) {
        let pc = self.instrs.len();
        self.emit(Instr::new(Op::Bra));
        self.fixups.push((pc, target, false));
    }

    /// Conditional branch `@p`/`@!p` with no divergence allowed (the
    /// predicate must be uniform across active lanes; loop back-edges in
    /// the GEMM kernels are of this form).
    pub fn bra_if(&mut self, p: PredReg, sense: bool, target: Label) {
        let pc = self.instrs.len();
        self.emit(Instr::new(Op::Bra).with_guard(p, sense));
        self.fixups.push((pc, target, false));
    }

    /// Potentially divergent conditional branch with an explicit
    /// reconvergence label (the immediate post-dominator), like the
    /// compiler-inserted `SSY` on real hardware.
    pub fn bra_div(&mut self, p: PredReg, sense: bool, target: Label, reconv: Label) {
        let pc = self.instrs.len();
        self.emit(Instr::new(Op::Bra).with_guard(p, sense));
        self.fixups.push((pc, target, false));
        self.fixups.push((pc, reconv, true));
    }

    /// CTA-wide barrier.
    pub fn bar(&mut self) {
        self.emit(Instr::new(Op::Bar));
    }

    /// Thread exit.
    pub fn exit(&mut self) {
        self.emit(Instr::new(Op::Exit));
    }

    /// Reads the SM cycle counter into `dst` (`CS2R Rd, SR_CLOCKLO`).
    pub fn clock(&mut self, dst: Reg) {
        self.emit(Instr::new(Op::Clock).with_dst(dst));
    }

    /// Load: `dst.. ← [addr_pair + offset]` from `space`.
    pub fn ld(&mut self, space: MemSpace, width: MemWidth, dst: Reg, addr: Operand, offset: i64) {
        self.emit3(
            Op::Ld { space, width },
            dst,
            vec![addr, Operand::Imm(offset)],
        );
    }

    /// Global load convenience (address in a register pair).
    pub fn ld_global(&mut self, width: MemWidth, dst: Reg, addr: Reg, offset: i64) {
        self.ld(MemSpace::Global, width, dst, Operand::RegPair(addr), offset);
    }

    /// Shared-memory load (32-bit byte address in a single register).
    pub fn ld_shared(&mut self, width: MemWidth, dst: Reg, addr: Reg, offset: i64) {
        self.ld(MemSpace::Shared, width, dst, Operand::Reg(addr), offset);
    }

    /// Parameter load: `dst.. ← param[offset]`.
    pub fn ld_param(&mut self, width: MemWidth, dst: Reg, offset: u32) {
        self.emit3(
            Op::Ld {
                space: MemSpace::Param,
                width,
            },
            dst,
            vec![Operand::Imm(offset as i64), Operand::Imm(0)],
        );
    }

    /// Warp shuffle: `dst ← value-of-lane-selected-by(mode, b)`.
    pub fn shfl(&mut self, mode: ShflMode, dst: Reg, value: Reg, b: Operand) {
        self.emit(
            Instr::new(Op::Shfl { mode })
                .with_dst(dst)
                .with_srcs(vec![Operand::Reg(value), b]),
        );
    }

    /// Atomic read-modify-write: `dst ← [addr+offset]; [addr+offset] ←
    /// op(old, data)`. Global space takes a register-pair address, shared
    /// a single register.
    pub fn atom(
        &mut self,
        space: MemSpace,
        op: AtomOp,
        dst: Reg,
        addr: Operand,
        offset: i64,
        data: Reg,
    ) {
        self.emit(
            Instr::new(Op::Atom { space, op })
                .with_dst(dst)
                .with_srcs(vec![addr, Operand::Imm(offset), Operand::Reg(data)]),
        );
    }

    /// Store: `[addr + offset] ← data..` to `space`.
    pub fn st(&mut self, space: MemSpace, width: MemWidth, addr: Operand, offset: i64, data: Reg) {
        self.emit(Instr::new(Op::St { space, width }).with_srcs(vec![
            addr,
            Operand::Imm(offset),
            Operand::Reg(data),
        ]));
    }

    /// Global store convenience.
    pub fn st_global(&mut self, width: MemWidth, addr: Reg, offset: i64, data: Reg) {
        self.st(
            MemSpace::Global,
            width,
            Operand::RegPair(addr),
            offset,
            data,
        );
    }

    /// Shared-memory store convenience.
    pub fn st_shared(&mut self, width: MemWidth, addr: Reg, offset: i64, data: Reg) {
        self.st(MemSpace::Shared, width, Operand::Reg(addr), offset, data);
    }

    /// `wmma.load.{a,b,c}`: loads an operand-matrix fragment. `addr` is a
    /// register pair for global space or a single register for shared
    /// space; `stride` is the leading dimension in elements.
    #[allow(clippy::too_many_arguments)]
    pub fn wmma_load(
        &mut self,
        frag: FragmentKind,
        shape: WmmaShape,
        layout: Layout,
        ty: WmmaType,
        space: MemSpace,
        dst: Reg,
        addr: Operand,
        stride: Operand,
    ) {
        let dir = WmmaDirective::Load {
            frag,
            shape,
            layout,
            ty,
        };
        let mut i = Instr::new(Op::Wmma(dir))
            .with_dst(dst)
            .with_srcs(vec![addr, stride]);
        // Encode the address space in the target field's absence; spaces are
        // distinguished by the operand kind plus this marker list.
        i.srcs.push(Operand::Imm(match space {
            MemSpace::Global => 0,
            MemSpace::Shared => 1,
            _ => panic!("wmma.load only supports global/shared"),
        }));
        self.emit(i);
    }

    /// `wmma.mma`: `d ← a × b + c` on register fragments.
    #[allow(clippy::too_many_arguments)]
    pub fn wmma_mma(
        &mut self,
        shape: WmmaShape,
        a_layout: Layout,
        b_layout: Layout,
        ab_type: WmmaType,
        d_type: WmmaType,
        c_type: WmmaType,
        d: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
    ) {
        let dir = WmmaDirective::Mma {
            shape,
            a_layout,
            b_layout,
            ab_type,
            d_type,
            c_type,
        };
        self.emit3(
            Op::Wmma(dir),
            d,
            vec![Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)],
        );
    }

    /// `mma.sync`: Ampere per-instruction `d ← a × b + c` on register
    /// fragments with fixed `row.col` operand layouts. `meta` carries the
    /// 2:4 sparsity metadata register and must be `Some` exactly when
    /// `sparse` is set.
    #[allow(clippy::too_many_arguments)]
    pub fn mma_sync(
        &mut self,
        shape: WmmaShape,
        ab_type: WmmaType,
        d_type: WmmaType,
        c_type: WmmaType,
        sparse: bool,
        d: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
        meta: Option<Reg>,
    ) {
        assert_eq!(
            sparse,
            meta.is_some(),
            "sparse mma.sync needs exactly one metadata register"
        );
        let dir = WmmaDirective::MmaSync {
            shape,
            ab_type,
            d_type,
            c_type,
            sparse,
        };
        let mut srcs = vec![Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)];
        if let Some(m) = meta {
            srcs.push(Operand::Reg(m));
        }
        self.emit3(Op::Wmma(dir), d, srcs);
    }

    /// `wmma.store.d`: stores a result fragment to memory.
    #[allow(clippy::too_many_arguments)]
    pub fn wmma_store(
        &mut self,
        shape: WmmaShape,
        layout: Layout,
        ty: WmmaType,
        space: MemSpace,
        addr: Operand,
        stride: Operand,
        d: Reg,
    ) {
        let dir = WmmaDirective::Store { shape, layout, ty };
        let mut i = Instr::new(Op::Wmma(dir)).with_srcs(vec![addr, stride, Operand::Reg(d)]);
        i.srcs.push(Operand::Imm(match space {
            MemSpace::Global => 0,
            MemSpace::Shared => 1,
            _ => panic!("wmma.store only supports global/shared"),
        }));
        self.emit(i);
    }

    /// Number of registers allocated so far.
    pub fn regs_used(&self) -> u32 {
        self.next_reg as u32
    }

    /// Looks up the byte offset of an already-declared parameter without
    /// building (used by the text parser).
    pub fn peek_param_offset(&self, name: &str) -> Option<u32> {
        self.params
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.offset)
    }

    /// Finalizes the kernel, resolving all label references.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never placed.
    pub fn build(mut self) -> Kernel {
        for (pc, label, is_reconv) in self.fixups.drain(..) {
            let Some(at) = self.labels[label.0] else {
                panic!("kernel {}: unplaced label {:?}", self.name, label)
            };
            if is_reconv {
                self.instrs[pc].reconv = Some(at);
            } else {
                self.instrs[pc].target = Some(at);
            }
        }
        Kernel {
            name: self.name,
            instrs: self.instrs,
            num_regs: (self.next_reg as u32).max(1),
            shared_bytes: self.shared_bytes,
            params: self.params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SpecialReg;

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = KernelBuilder::new("labels");
        let fwd = b.label();
        b.bra(fwd); // pc 0 → 2
        b.exit(); // pc 1 (dead)
        b.place(fwd);
        let back = b.label();
        b.place(back);
        let p = b.pred();
        let r = b.reg();
        b.setp(p, CmpOp::Lt, DataType::S32, r, Operand::Imm(4)); // pc 2
        b.bra_if(p, true, back); // pc 3 → 2
        b.exit(); // pc 4
        let k = b.build();
        assert_eq!(k.instrs()[0].target, Some(2));
        assert_eq!(k.instrs()[3].target, Some(2));
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics() {
        let mut b = KernelBuilder::new("bad");
        let l = b.label();
        b.bra(l);
        let _ = b.build();
    }

    #[test]
    fn reg_block_alignment() {
        let mut b = KernelBuilder::new("regs");
        let _r0 = b.reg(); // r0
        let quad = b.reg_block(4); // aligned to 4 → r4
        assert_eq!(quad, Reg(4));
        let pair = b.reg_pair(); // r8
        assert_eq!(pair, Reg(8));
        let r = b.reg();
        assert_eq!(r, Reg(10));
        let oct = b.reg_block(8); // aligned to 4 → r12
        assert_eq!(oct, Reg(12));
        assert_eq!(b.regs_used(), 20);
    }

    #[test]
    fn params_are_naturally_aligned() {
        let mut b = KernelBuilder::new("params");
        assert_eq!(b.param_u32("n"), 0);
        assert_eq!(b.param_u64("ptr"), 8); // aligned up from 4
        assert_eq!(b.param_u32("m"), 16);
        let k = b.build();
        assert_eq!(k.param_bytes(), 20);
        assert_eq!(k.param_offset("ptr"), 8);
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_param_panics() {
        let b = KernelBuilder::new("p");
        let k = b.build();
        k.param_offset("nope");
    }

    #[test]
    fn shared_alloc_aligns_to_16() {
        let mut b = KernelBuilder::new("sh");
        assert_eq!(b.shared_alloc(100), 0);
        assert_eq!(b.shared_alloc(4), 112);
        let k = b.build();
        assert_eq!(k.shared_bytes(), 116);
    }

    #[test]
    fn divergent_branch_records_reconvergence() {
        let mut b = KernelBuilder::new("div");
        let taken = b.label();
        let merge = b.label();
        let p = b.pred();
        b.bra_div(p, true, taken, merge); // pc 0
        let r = b.reg();
        b.mov(r, Operand::Imm(1)); // pc 1 (not taken)
        b.place(taken);
        b.mov(r, Operand::Imm(2)); // pc 2
        b.place(merge);
        b.exit(); // pc 3
        let k = b.build();
        assert_eq!(k.instrs()[0].target, Some(2));
        assert_eq!(k.instrs()[0].reconv, Some(3));
    }

    #[test]
    fn program_lookup() {
        let mut b = KernelBuilder::new("a");
        b.exit();
        let ka = b.build();
        let mut b = KernelBuilder::new("bk");
        b.exit();
        let kb = b.build();
        let prog: Program = vec![ka, kb].into_iter().collect();
        assert_eq!(prog.len(), 2);
        assert!(!prog.is_empty());
        assert!(prog.kernel("a").is_some());
        assert!(prog.kernel("bk").is_some());
        assert!(prog.kernel("c").is_none());
    }

    #[test]
    fn display_renders_program_counter_lines() {
        let mut b = KernelBuilder::new("disp");
        let r = b.reg();
        b.mov(r, Operand::Special(SpecialReg::TidX));
        b.exit();
        let k = b.build();
        let text = k.to_string();
        assert!(text.contains(".kernel disp"));
        assert!(text.contains("0:"));
        assert!(text.contains("%tid.x"));
    }

    #[test]
    fn out_of_predicates_panics() {
        let mut b = KernelBuilder::new("preds");
        for _ in 0..8 {
            let _ = b.pred();
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.pred()));
        assert!(result.is_err());
    }
}
