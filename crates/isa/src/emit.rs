//! Emitting kernels back to the PTX-flavoured text format of
//! [`crate::ptx`], such that `parse(emit(k))` reproduces the exact
//! instruction stream — the disassembler counterpart of the parser, and
//! the backbone of the round-trip property tests.

use crate::instr::{CmpOp, Op, Operand};
use crate::kernel::Kernel;
use crate::types::{DataType, MemSpace, MemWidth};
use crate::wmma::{FragmentKind, WmmaDirective};
use std::collections::BTreeMap;
use std::fmt::Write;

fn width_suffix(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B8 => "b8",
        MemWidth::B16 => "b16",
        MemWidth::B32 => "b32",
        MemWidth::B64 => "b64",
        MemWidth::B128 => "b128",
    }
}

fn dtype_suffix(t: DataType) -> &'static str {
    match t {
        DataType::U32 => "u32",
        DataType::S32 => "s32",
        DataType::U64 => "u64",
        DataType::F16 => "f16",
        DataType::F32 => "f32",
        DataType::F64 => "f64",
    }
}

fn cmp_suffix(c: CmpOp) -> &'static str {
    match c {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) | Operand::RegPair(r) => format!("r{}", r.0),
        Operand::Imm(i) => i.to_string(),
        Operand::Special(s) => s.to_string(),
        Operand::Pred(p) => format!("p{}", p.0),
    }
}

fn addr(o: &Operand, off: &Operand) -> String {
    let base = match o {
        Operand::Reg(r) | Operand::RegPair(r) => r.0,
        other => panic!("address operand must be a register, found {other:?}"),
    };
    match off {
        Operand::Imm(i) if *i >= 0 => format!("[r{base}+{i}]"),
        Operand::Imm(i) => format!("[r{base}{i}]"),
        other => panic!("offset must be immediate, found {other:?}"),
    }
}

fn reg_of(o: &Operand) -> String {
    match o {
        Operand::Reg(r) | Operand::RegPair(r) => format!("r{}", r.0),
        other => panic!("expected register operand, found {other:?}"),
    }
}

fn space_suffix(marker: &Operand) -> &'static str {
    match marker {
        Operand::Imm(1) => "shared",
        _ => "global",
    }
}

/// Emits a kernel as parseable PTX-flavoured text.
///
/// Branch targets become labels `L<pc>`; parameters keep their declared
/// names and order. `parse_kernel(emit_kernel(k))` yields an identical
/// instruction stream (asserted by the round-trip tests).
///
/// # Panics
///
/// Panics on IR the text format cannot express (malformed operand kinds).
pub fn emit_kernel(k: &Kernel) -> String {
    let mut out = String::new();
    writeln!(out, ".kernel {}", k.name()).expect("write to string");
    for p in k.params() {
        writeln!(
            out,
            ".param {} : {}",
            p.name,
            if p.bytes == 8 { "u64" } else { "u32" }
        )
        .expect("write to string");
    }
    if k.shared_bytes() > 0 {
        writeln!(out, ".shared {}", k.shared_bytes()).expect("write to string");
    }
    writeln!(out, "{{").expect("write to string");

    // Label every branch/reconvergence target.
    let mut labels: BTreeMap<usize, String> = BTreeMap::new();
    for i in k.instrs() {
        for t in [i.target, i.reconv].into_iter().flatten() {
            labels.entry(t).or_insert_with(|| format!("L{t}"));
        }
    }

    let param_name = |off: i64| -> &str {
        k.params()
            .iter()
            .find(|p| p.offset as i64 == off)
            .map(|p| p.name.as_str())
            .expect("param offset refers to a declared parameter")
    };

    for (pc, i) in k.instrs().iter().enumerate() {
        if let Some(l) = labels.get(&pc) {
            writeln!(out, "{l}:").expect("write to string");
        }
        let guard = match i.guard {
            Some((p, true)) => format!("@p{} ", p.0),
            Some((p, false)) => format!("@!p{} ", p.0),
            None => String::new(),
        };
        let dst = i.dst.map(|r| format!("r{}", r.0));
        let body = match &i.op {
            Op::Nop => "nop".to_string(),
            Op::Exit => "exit".to_string(),
            Op::Bar => "bar.sync".to_string(),
            Op::Clock => format!("clock {}", dst.clone().expect("clock dst")),
            Op::Bra => {
                let t = &labels[&i.target.expect("resolved branch")];
                match i.reconv {
                    Some(r) => format!("bra.div {t}, {}", labels[&r]),
                    None => format!("bra {t}"),
                }
            }
            Op::Mov => format!(
                "mov.u32 {}, {}",
                dst.clone().expect("dst"),
                operand(&i.srcs[0])
            ),
            Op::Mov64 => format!(
                "mov.b64 {}, {}",
                dst.clone().expect("dst"),
                operand(&i.srcs[0])
            ),
            Op::IAdd
            | Op::ISub
            | Op::IMul
            | Op::IMin
            | Op::IMax
            | Op::Shl
            | Op::Shr
            | Op::Sar
            | Op::And
            | Op::Or
            | Op::Xor => {
                let m = match i.op {
                    Op::IAdd => "iadd",
                    Op::ISub => "isub",
                    Op::IMul => "imul",
                    Op::IMin => "imin",
                    Op::IMax => "imax",
                    Op::Shl => "shl",
                    Op::Shr => "shr",
                    Op::Sar => "sar",
                    Op::And => "and",
                    Op::Or => "or",
                    _ => "xor",
                };
                format!(
                    "{m} {}, {}, {}",
                    dst.clone().expect("dst"),
                    reg_of(&i.srcs[0]),
                    operand(&i.srcs[1])
                )
            }
            Op::Not => format!("not {}, {}", dst.clone().expect("dst"), reg_of(&i.srcs[0])),
            Op::IMad => format!(
                "imad {}, {}, {}, {}",
                dst.clone().expect("dst"),
                reg_of(&i.srcs[0]),
                operand(&i.srcs[1]),
                operand(&i.srcs[2])
            ),
            Op::IAdd64 => format!(
                "iadd64 {}, {}, {}",
                dst.clone().expect("dst"),
                reg_of(&i.srcs[0]),
                operand(&i.srcs[1])
            ),
            Op::IMadWide => format!(
                "imad.wide {}, {}, {}, {}",
                dst.clone().expect("dst"),
                reg_of(&i.srcs[0]),
                operand(&i.srcs[1]),
                reg_of(&i.srcs[2])
            ),
            Op::FAdd | Op::FMul | Op::FMin | Op::FMax | Op::HAdd2 | Op::HMul2 => {
                let m = match i.op {
                    Op::FAdd => "fadd",
                    Op::FMul => "fmul",
                    Op::FMin => "fmin",
                    Op::FMax => "fmax",
                    Op::HAdd2 => "hadd2",
                    _ => "hmul2",
                };
                format!(
                    "{m} {}, {}, {}",
                    dst.clone().expect("dst"),
                    reg_of(&i.srcs[0]),
                    operand(&i.srcs[1])
                )
            }
            Op::FFma | Op::HFma2 => format!(
                "{} {}, {}, {}, {}",
                if matches!(i.op, Op::FFma) {
                    "ffma"
                } else {
                    "hfma2"
                },
                dst.clone().expect("dst"),
                reg_of(&i.srcs[0]),
                operand(&i.srcs[1]),
                operand(&i.srcs[2])
            ),
            Op::FRcp | Op::FSqrt | Op::FEx2 | Op::FLg2 => {
                let m = match i.op {
                    Op::FRcp => "frcp",
                    Op::FSqrt => "fsqrt",
                    Op::FEx2 => "fex2",
                    _ => "flg2",
                };
                format!("{m} {}, {}", dst.clone().expect("dst"), reg_of(&i.srcs[0]))
            }
            Op::DAdd | Op::DMul => format!(
                "{} {}, {}, {}",
                if matches!(i.op, Op::DAdd) {
                    "dadd"
                } else {
                    "dmul"
                },
                dst.clone().expect("dst"),
                reg_of(&i.srcs[0]),
                reg_of(&i.srcs[1])
            ),
            Op::DFma => format!(
                "dfma {}, {}, {}, {}",
                dst.clone().expect("dst"),
                reg_of(&i.srcs[0]),
                reg_of(&i.srcs[1]),
                reg_of(&i.srcs[2])
            ),
            Op::Cvt { from, to } => format!(
                "cvt.{}.{} {}, {}",
                dtype_suffix(*to),
                dtype_suffix(*from),
                dst.clone().expect("dst"),
                operand(&i.srcs[0])
            ),
            Op::Setp { cmp, ty } => format!(
                "setp.{}.{} p{}, {}, {}",
                cmp_suffix(*cmp),
                dtype_suffix(*ty),
                i.pred_dst.expect("setp pred").0,
                reg_of(&i.srcs[0]),
                operand(&i.srcs[1])
            ),
            Op::SelP => format!(
                "selp {}, {}, {}, {}",
                dst.clone().expect("dst"),
                operand(&i.srcs[0]),
                operand(&i.srcs[1]),
                operand(&i.srcs[2])
            ),
            Op::Ld {
                space: MemSpace::Param,
                width,
            } => {
                let Operand::Imm(off) = i.srcs[0] else {
                    panic!("param load offset")
                };
                format!(
                    "ld.param.{} {}, [{}]",
                    width_suffix(*width),
                    dst.clone().expect("dst"),
                    param_name(off)
                )
            }
            Op::Ld { space, width } => format!(
                "ld.{space}.{} {}, {}",
                width_suffix(*width),
                dst.clone().expect("dst"),
                addr(&i.srcs[0], &i.srcs[1])
            ),
            Op::St { space, width } => format!(
                "st.{space}.{} {}, {}",
                width_suffix(*width),
                addr(&i.srcs[0], &i.srcs[1]),
                reg_of(&i.srcs[2])
            ),
            Op::Atom { space, op } => format!(
                "atom.{space}.{op} {}, {}, {}",
                dst.clone().expect("dst"),
                addr(&i.srcs[0], &i.srcs[1]),
                reg_of(&i.srcs[2])
            ),
            Op::Shfl { mode } => format!(
                "shfl.{mode} {}, {}, {}",
                dst.clone().expect("dst"),
                reg_of(&i.srcs[0]),
                operand(&i.srcs[1])
            ),
            Op::Wmma(WmmaDirective::Load {
                frag,
                shape,
                layout,
                ty,
            }) => {
                let f = match frag {
                    FragmentKind::A => "a",
                    FragmentKind::B => "b",
                    _ => "c",
                };
                format!(
                    "wmma.load.{f}.sync.{layout}.{shape}.{ty}.{} {}, {}, {}",
                    space_suffix(&i.srcs[2]),
                    dst.clone().expect("dst"),
                    addr(&i.srcs[0], &Operand::Imm(0)),
                    operand(&i.srcs[1])
                )
            }
            Op::Wmma(WmmaDirective::Mma {
                shape,
                a_layout,
                b_layout,
                ab_type,
                d_type,
                c_type,
            }) => {
                format!(
                    "wmma.mma.sync.{a_layout}.{b_layout}.{shape}.{d_type}.{c_type}.{ab_type} {}, {}, {}, {}",
                    dst.clone().expect("dst"),
                    reg_of(&i.srcs[0]),
                    reg_of(&i.srcs[1]),
                    reg_of(&i.srcs[2])
                )
            }
            Op::Wmma(WmmaDirective::MmaSync {
                shape,
                ab_type,
                d_type,
                c_type,
                sparse,
            }) => {
                let sp = if *sparse { ".sp" } else { "" };
                let mut s = format!(
                    "mma{sp}.sync.aligned.{shape}.row.col.{d_type}.{ab_type}.{ab_type}.{c_type} {}, {}, {}, {}",
                    dst.clone().expect("dst"),
                    reg_of(&i.srcs[0]),
                    reg_of(&i.srcs[1]),
                    reg_of(&i.srcs[2])
                );
                if *sparse {
                    s.push_str(&format!(", {}", reg_of(&i.srcs[3])));
                }
                s
            }
            Op::Wmma(WmmaDirective::Store { shape, layout, ty }) => format!(
                "wmma.store.d.sync.{layout}.{shape}.{ty}.{} {}, {}, {}",
                space_suffix(&i.srcs[3]),
                addr(&i.srcs[0], &Operand::Imm(0)),
                reg_of(&i.srcs[2]),
                operand(&i.srcs[1])
            ),
        };
        writeln!(out, "    {guard}{body};").expect("write to string");
    }
    // Trailing labels (targets one past the last instruction cannot occur
    // because branches resolve to existing instructions).
    writeln!(out, "}}").expect("write to string");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::kernel::KernelBuilder;
    use crate::ptx::parse_kernel;
    use crate::types::SpecialReg;
    use crate::wmma::{Layout, WmmaShape, WmmaType};
    use crate::AtomOp;

    fn roundtrip(k: &Kernel) {
        let text = emit_kernel(k);
        let back = parse_kernel(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(back.name(), k.name(), "{text}");
        assert_eq!(back.instrs(), k.instrs(), "{text}");
        assert_eq!(back.shared_bytes(), k.shared_bytes());
        assert_eq!(back.params().len(), k.params().len());
        for (a, b) in back.params().iter().zip(k.params()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.offset, b.offset);
        }
    }

    #[test]
    fn roundtrips_alu_and_control() {
        let mut b = KernelBuilder::new("alu");
        let p = b.param_u64("x");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let r = b.reg();
        b.mov(r, Operand::Special(SpecialReg::TidX));
        let top = b.label();
        b.place(top);
        b.iadd(r, r, Operand::Imm(-3));
        b.imad(r, r, Operand::Imm(5), Operand::Reg(r));
        let q = b.pred();
        b.setp(q, CmpOp::Lt, DataType::S32, r, Operand::Imm(100));
        b.bra_if(q, true, top);
        b.selp(r, q, Operand::Imm(1), Operand::Imm(2));
        b.exit();
        roundtrip(&b.build());
    }

    #[test]
    fn roundtrips_memory_and_atomics() {
        let mut b = KernelBuilder::new("mem");
        let p = b.param_u64("x");
        b.shared_alloc(256);
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let v = b.reg_block(4);
        b.ld_global(MemWidth::B128, v, base, 16);
        b.st_global(MemWidth::B32, base, -4, v);
        let sa = b.reg();
        b.mov(sa, Operand::Imm(0));
        b.st_shared(MemWidth::B64, sa, 8, v);
        b.ld_shared(MemWidth::B16, v, sa, 2);
        let old = b.reg();
        b.atom(
            MemSpace::Global,
            AtomOp::Add,
            old,
            Operand::RegPair(base),
            0,
            v,
        );
        b.atom(MemSpace::Shared, AtomOp::Max, old, Operand::Reg(sa), 4, v);
        b.bar();
        b.exit();
        roundtrip(&b.build());
    }

    #[test]
    fn roundtrips_float_half_double_and_mufu() {
        let mut b = KernelBuilder::new("fp");
        let r = b.reg();
        b.mov(r, Operand::fimm(1.5));
        b.fadd(r, r, Operand::fimm(2.0));
        b.ffma(r, r, Operand::Reg(r), Operand::Reg(r));
        b.hadd2(r, r, Operand::Reg(r));
        b.hfma2(r, r, Operand::Reg(r), Operand::Reg(r));
        b.fex2(r, r);
        b.flg2(r, r);
        let d = b.reg_pair();
        b.mov64(d, Operand::Imm(0));
        b.emit(Instr::new(Op::DFma).with_dst(d).with_srcs(vec![
            Operand::RegPair(d),
            Operand::RegPair(d),
            Operand::RegPair(d),
        ]));
        b.cvt(r, DataType::F32, DataType::F16, Operand::Reg(r));
        b.exit();
        roundtrip(&b.build());
    }

    #[test]
    fn roundtrips_wmma_and_shuffle() {
        let mut b = KernelBuilder::new("wmma");
        let p = b.param_u64("x");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let fa = b.reg_block(8);
        let fb = b.reg_block(8);
        let fc = b.reg_block(8);
        let fd = b.reg_block(8);
        b.wmma_load(
            FragmentKind::A,
            WmmaShape::M16N16K16,
            Layout::Row,
            WmmaType::F16,
            MemSpace::Global,
            fa,
            Operand::RegPair(base),
            Operand::Imm(16),
        );
        let sa = b.reg();
        b.mov(sa, Operand::Imm(0));
        b.wmma_load(
            FragmentKind::B,
            WmmaShape::M16N16K16,
            Layout::Col,
            WmmaType::F16,
            MemSpace::Shared,
            fb,
            Operand::Reg(sa),
            Operand::Imm(32),
        );
        b.wmma_mma(
            WmmaShape::M16N16K16,
            Layout::Row,
            Layout::Col,
            WmmaType::F16,
            WmmaType::F32,
            WmmaType::F32,
            fd,
            fa,
            fb,
            fc,
        );
        b.wmma_store(
            WmmaShape::M16N16K16,
            Layout::Row,
            WmmaType::F32,
            MemSpace::Global,
            Operand::RegPair(base),
            Operand::Imm(16),
            fd,
        );
        b.shfl(crate::ShflMode::Bfly, sa, sa, Operand::Imm(1));
        b.exit();
        roundtrip(&b.build());
    }

    #[test]
    fn roundtrips_mma_sync_dense_and_sparse() {
        let mut b = KernelBuilder::new("mma_sync");
        let p = b.param_u64("x");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let fa = b.reg_block(4);
        let fb = b.reg_block(2);
        let fc = b.reg_block(4);
        let fd = b.reg_block(4);
        let meta = b.reg();
        b.wmma_load(
            FragmentKind::A,
            WmmaShape::M16N8K16,
            Layout::Row,
            WmmaType::BF16,
            MemSpace::Global,
            fa,
            Operand::RegPair(base),
            Operand::Imm(16),
        );
        b.mma_sync(
            WmmaShape::M16N8K16,
            WmmaType::BF16,
            WmmaType::F32,
            WmmaType::F32,
            false,
            fd,
            fa,
            fb,
            fc,
            None,
        );
        b.mma_sync(
            WmmaShape::M16N8K16,
            WmmaType::F16,
            WmmaType::F32,
            WmmaType::F32,
            true,
            fd,
            fa,
            fb,
            fc,
            Some(meta),
        );
        b.mma_sync(
            WmmaShape::M16N8K8,
            WmmaType::TF32,
            WmmaType::F32,
            WmmaType::F32,
            false,
            fd,
            fa,
            fb,
            fc,
            None,
        );
        b.wmma_store(
            WmmaShape::M16N8K16,
            Layout::Row,
            WmmaType::F32,
            MemSpace::Global,
            Operand::RegPair(base),
            Operand::Imm(8),
            fd,
        );
        b.exit();
        let k = b.build();
        let text = emit_kernel(&k);
        assert!(
            text.contains("mma.sync.aligned.m16n8k16.row.col.f32.bf16.bf16.f32"),
            "{text}"
        );
        assert!(
            text.contains("mma.sp.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32"),
            "{text}"
        );
        assert!(
            text.contains("mma.sync.aligned.m16n8k8.row.col.f32.tf32.tf32.f32"),
            "{text}"
        );
        roundtrip(&k);
    }

    #[test]
    fn roundtrips_divergent_branches() {
        let mut b = KernelBuilder::new("div");
        let taken = b.label();
        let merge = b.label();
        let p = b.pred();
        let r = b.reg();
        b.bra_div(p, false, taken, merge);
        b.mov(r, Operand::Imm(1));
        b.place(taken);
        b.mov(r, Operand::Imm(2));
        b.place(merge);
        b.exit();
        roundtrip(&b.build());
    }
}
