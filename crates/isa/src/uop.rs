//! Decode-once μop streams.
//!
//! The SM issue loop polls the same instruction many times while a warp
//! waits out a hazard, and every poll through [`crate::Instr::use_regs`]/
//! [`crate::Instr::def_regs`] allocates and sorts fresh `Vec`s. A
//! [`UopStream`] performs that expansion **once per kernel**: each PC maps
//! to a [`Uop`] carrying its unit class and two index spans into one flat,
//! shared register array, so a hazard check is a pair of slice walks with
//! no allocation, hashing, or `Op` matching.
//!
//! The stream is purely a pre-resolved view — it holds exactly what the
//! per-instruction methods would have returned, so a scheduler driven by
//! μops is cycle-identical to one re-interpreting [`crate::Instr`]s.

use crate::instr::{Instr, Op, Reg, UnitClass};
use crate::kernel::Kernel;

/// One pre-decoded instruction: scheduling metadata plus operand spans
/// into the owning [`UopStream`]'s flat register array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Uop {
    /// Functional unit class the instruction issues to.
    pub unit: UnitClass,
    /// Whether this is a CTA barrier (`bar.sync`), which fences on all
    /// outstanding writes before arriving.
    pub is_bar: bool,
    /// Start of the read-register span (index into the stream's flat
    /// register array, resolved via [`UopStream::uses`]).
    pub uses_start: u32,
    /// End (exclusive) of the read-register span.
    pub uses_end: u32,
    /// Start of the written-register span.
    pub defs_start: u32,
    /// End (exclusive) of the written-register span.
    pub defs_end: u32,
}

/// A kernel's instructions decoded into dense μops: one [`Uop`] per PC,
/// operand registers expanded (pairs, vector widths, WMMA fragments) into
/// one flat array the spans index.
///
/// # Example
///
/// ```
/// use tcsim_isa::{KernelBuilder, Operand, UnitClass, UopStream};
///
/// let mut b = KernelBuilder::new("k");
/// let r = b.reg();
/// b.iadd(r, r, Operand::Imm(1));
/// b.exit();
/// let kernel = b.build();
///
/// let uops = UopStream::decode(&kernel, true);
/// assert_eq!(uops.len(), kernel.instrs().len());
/// assert_eq!(uops.uop(0).unit, UnitClass::Int);
/// assert_eq!(uops.uses(0), kernel.instrs()[0].use_regs(true).as_slice());
/// assert_eq!(uops.defs(0), kernel.instrs()[0].def_regs(true).as_slice());
/// ```
#[derive(Clone, Debug)]
pub struct UopStream {
    uops: Vec<Uop>,
    /// Flat operand-register storage all spans index into.
    regs: Vec<Reg>,
}

impl UopStream {
    /// Decodes every instruction of `kernel`. `volta_double_load` selects
    /// the Volta fragment sizing, exactly as the per-instruction
    /// [`Instr::use_regs`]/[`Instr::def_regs`] calls it replaces.
    pub fn decode(kernel: &Kernel, volta_double_load: bool) -> UopStream {
        let instrs = kernel.instrs();
        let mut uops = Vec::with_capacity(instrs.len());
        let mut regs = Vec::new();
        for instr in instrs {
            uops.push(Uop::from_instr(instr, volta_double_load, &mut regs));
        }
        UopStream { uops, regs }
    }

    /// Number of μops (equals the kernel's instruction count).
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The μop at `pc`.
    pub fn uop(&self, pc: usize) -> Uop {
        self.uops[pc]
    }

    /// Registers read by the instruction at `pc` (sorted, deduplicated).
    pub fn uses(&self, pc: usize) -> &[Reg] {
        let u = &self.uops[pc];
        &self.regs[u.uses_start as usize..u.uses_end as usize]
    }

    /// Registers written by the instruction at `pc`.
    pub fn defs(&self, pc: usize) -> &[Reg] {
        let u = &self.uops[pc];
        &self.regs[u.defs_start as usize..u.defs_end as usize]
    }
}

impl Uop {
    fn from_instr(instr: &Instr, volta_double_load: bool, regs: &mut Vec<Reg>) -> Uop {
        let uses_start = regs.len() as u32;
        regs.extend(instr.use_regs(volta_double_load));
        let defs_start = regs.len() as u32;
        regs.extend(instr.def_regs(volta_double_load));
        Uop {
            unit: instr.op.unit(),
            is_bar: matches!(instr.op, Op::Bar),
            uses_start,
            uses_end: defs_start,
            defs_start,
            defs_end: regs.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Operand;
    use crate::kernel::KernelBuilder;
    use crate::types::{MemWidth, SpecialReg};
    use crate::wmma::{fragment_regs, FragmentKind, Layout, WmmaShape, WmmaType};

    fn wmma_kernel() -> Kernel {
        use crate::types::MemSpace;
        let mut b = KernelBuilder::new("wmma");
        let p = b.param_u64("tile");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let a = b.reg_block(fragment_regs(
            FragmentKind::A,
            WmmaShape::M16N16K16,
            WmmaType::F16,
            true,
        ));
        let bb = b.reg_block(fragment_regs(
            FragmentKind::B,
            WmmaShape::M16N16K16,
            WmmaType::F16,
            true,
        ));
        let c = b.reg_block(fragment_regs(
            FragmentKind::C,
            WmmaShape::M16N16K16,
            WmmaType::F16,
            true,
        ));
        b.wmma_load(
            FragmentKind::A,
            WmmaShape::M16N16K16,
            Layout::Row,
            WmmaType::F16,
            MemSpace::Global,
            a,
            Operand::RegPair(base),
            Operand::Imm(16),
        );
        b.wmma_mma(
            WmmaShape::M16N16K16,
            Layout::Row,
            Layout::Row,
            WmmaType::F16,
            WmmaType::F16,
            WmmaType::F16,
            c,
            a,
            bb,
            c,
        );
        b.bar();
        b.exit();
        b.build()
    }

    #[test]
    fn spans_match_per_instruction_expansion_for_every_pc() {
        // Both fragment sizings: the stream must agree with the methods it
        // caches, register for register.
        for volta in [true, false] {
            for kernel in [wmma_kernel(), simt_kernel()] {
                let s = UopStream::decode(&kernel, volta);
                assert_eq!(s.len(), kernel.instrs().len());
                for (pc, instr) in kernel.instrs().iter().enumerate() {
                    assert_eq!(
                        s.uses(pc),
                        instr.use_regs(volta).as_slice(),
                        "uses at pc {pc}"
                    );
                    assert_eq!(
                        s.defs(pc),
                        instr.def_regs(volta).as_slice(),
                        "defs at pc {pc}"
                    );
                    assert_eq!(s.uop(pc).unit, instr.op.unit(), "unit at pc {pc}");
                    assert_eq!(
                        s.uop(pc).is_bar,
                        matches!(instr.op, Op::Bar),
                        "bar at pc {pc}"
                    );
                }
            }
        }
    }

    fn simt_kernel() -> Kernel {
        let mut b = KernelBuilder::new("simt");
        let p = b.param_u64("out");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let tid = b.reg();
        b.mov(tid, Operand::Special(SpecialReg::TidX));
        let addr = b.reg_pair();
        b.imad_wide(addr, tid, Operand::Imm(4), base);
        b.st_global(MemWidth::B32, addr, 0, tid);
        b.bar();
        b.exit();
        b.build()
    }

    #[test]
    fn fragment_spans_are_dense_and_wide() {
        let kernel = wmma_kernel();
        let s = UopStream::decode(&kernel, true);
        // PC 1 is the wmma.load: defs are the whole A fragment.
        let frag = fragment_regs(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::F16, true);
        assert_eq!(s.defs(1).len(), frag);
        // PC 2 is the wmma.mma: reads A+B+C fragments.
        assert!(s.uses(2).len() >= 3, "mma reads three fragments");
        assert_eq!(s.uop(2).unit, UnitClass::Tensor);
        // PC 3 is the barrier.
        assert!(s.uop(3).is_bar);
        assert_eq!(s.uop(3).unit, UnitClass::Control);
    }

    #[test]
    fn unit_class_all_is_exhaustive() {
        let mut seen = [false; UnitClass::COUNT];
        for (i, u) in UnitClass::ALL.into_iter().enumerate() {
            // Every variant appears exactly once; the match is the
            // exhaustiveness guard for new variants.
            let idx = match u {
                UnitClass::Sp => 0,
                UnitClass::Int => 1,
                UnitClass::Fp64 => 2,
                UnitClass::Mufu => 3,
                UnitClass::Tensor => 4,
                UnitClass::Mem => 5,
                UnitClass::Control => 6,
            };
            assert_eq!(i, idx);
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
