#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! PTX-subset SIMT instruction set, kernel IR, builder DSL and parser.
//!
//! GPGPU-Sim models tensor cores at the PTX virtual-ISA level (§V-A of the
//! paper): the three `wmma.{load,mma,store}` instructions introduced in PTX
//! 6.0 (Fig 2) are executed functionally as whole warp-wide operations with
//! an attached timing model. This crate defines the equivalent instruction
//! set for the Rust reproduction:
//!
//! * scalar integer / FP32 / FP64 / packed-FP16 ALU operations, predicates
//!   and comparisons, conversions;
//! * typed loads/stores over global/shared/param/local address spaces,
//!   including the 64/128-bit vector widths that `wmma.load` decomposes
//!   into at the SASS level (`LD.E.64`, `LD.E.128`, §III-C);
//! * warp barriers, branches with explicit reconvergence points (SIMT
//!   stack), `EXIT`, and a `CS2R SR_CLOCKLO`-style clock read used by the
//!   latency microbenchmarks (Fig 6);
//! * the three WMMA instructions with their layout/shape/type qualifiers.
//!
//! Kernels are built programmatically with [`KernelBuilder`] (the route the
//! CUTLASS-like library uses) or parsed from a PTX-flavoured text format
//! with [`ptx::parse_program`].
//!
//! # Example
//!
//! ```
//! use tcsim_isa::{KernelBuilder, Operand, SpecialReg};
//!
//! let mut b = KernelBuilder::new("saxpy_like");
//! let tid = b.reg();
//! b.mov(tid, Operand::Special(SpecialReg::TidX));
//! let r = b.reg();
//! b.iadd(r, tid, Operand::Imm(1));
//! b.exit();
//! let kernel = b.build();
//! assert_eq!(kernel.name(), "saxpy_like");
//! assert_eq!(kernel.instrs().len(), 3);
//! ```

pub mod emit;
pub mod exec;
mod instr;
mod kernel;
pub mod ptx;
mod traits;
mod types;
mod uop;
mod wmma;

pub use instr::{AtomOp, CmpOp, Instr, Op, Operand, PredReg, Reg, ShflMode, UnitClass};
pub use kernel::{Kernel, KernelBuilder, Label, ParamDesc, Program};
pub use traits::{ByteMemory, VecMemory, WarpRegFile, WarpRegisters};
pub use types::{DataType, Dim3, LaunchConfig, MemSpace, MemWidth, SpecialReg};
pub use uop::{Uop, UopStream};
pub use wmma::{
    fragment_elements, fragment_regs, mma_sync_a_shape, FragmentKind, Layout, TensorGen,
    WmmaDirective, WmmaShape, WmmaType, WARP_SIZE,
};
