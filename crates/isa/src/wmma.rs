//! WMMA instruction qualifiers: tile shapes, operand layouts, precisions,
//! and per-thread fragment sizes (Fig 2 and §II-C of the paper).

use std::fmt;

/// Number of threads in a warp on all modeled architectures.
pub const WARP_SIZE: usize = 32;

/// Matrix tile shapes supported by `wmma` instructions, written `MxNxK`
/// where A is `M×K`, B is `K×N` and C/D are `M×N`.
///
/// CUDA 9.0 supported only `m16n16k16`; Turing added `m32n8k16` and
/// `m8n32k16` for 8/16-bit modes and `m8n8k32` for the 4-bit mode
/// (§III-B2). Ampere's per-instruction `mma.sync` family uses the
/// narrower `m16n8k8` and `m16n8k16` tiles (arXiv:2502.15999 §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WmmaShape {
    /// 16×16 output tile, K = 16.
    M16N16K16,
    /// 32×8 output tile, K = 16 (Turing).
    M32N8K16,
    /// 8×32 output tile, K = 16 (Turing).
    M8N32K16,
    /// 8×8 output tile, K = 32, 4-bit operands only (Turing).
    M8N8K32,
    /// 16×8 output tile, K = 8 (Ampere `mma.sync`; TF32/F16/BF16).
    M16N8K8,
    /// 16×8 output tile, K = 16 (Ampere `mma.sync`; F16/BF16, sparse).
    M16N8K16,
}

impl WmmaShape {
    /// Rows of A and of C/D.
    pub const fn m(self) -> usize {
        match self {
            WmmaShape::M16N16K16 | WmmaShape::M16N8K8 | WmmaShape::M16N8K16 => 16,
            WmmaShape::M32N8K16 => 32,
            WmmaShape::M8N32K16 | WmmaShape::M8N8K32 => 8,
        }
    }

    /// Columns of B and of C/D.
    pub const fn n(self) -> usize {
        match self {
            WmmaShape::M16N16K16 => 16,
            WmmaShape::M32N8K16 | WmmaShape::M8N8K32 | WmmaShape::M16N8K8 | WmmaShape::M16N8K16 => {
                8
            }
            WmmaShape::M8N32K16 => 32,
        }
    }

    /// Inner (reduction) dimension: columns of A, rows of B.
    pub const fn k(self) -> usize {
        match self {
            WmmaShape::M16N16K16
            | WmmaShape::M32N8K16
            | WmmaShape::M8N32K16
            | WmmaShape::M16N8K16 => 16,
            WmmaShape::M8N8K32 => 32,
            WmmaShape::M16N8K8 => 8,
        }
    }

    /// All warp-scope WMMA shapes, in the order used by Table I of the
    /// paper. The `mma.sync` tiles are listed separately in
    /// [`WmmaShape::MMA_SYNC`].
    pub const ALL: [WmmaShape; 4] = [
        WmmaShape::M16N16K16,
        WmmaShape::M32N8K16,
        WmmaShape::M8N32K16,
        WmmaShape::M8N8K32,
    ];

    /// The per-instruction `mma.sync` tile shapes (Ampere).
    pub const MMA_SYNC: [WmmaShape; 2] = [WmmaShape::M16N8K8, WmmaShape::M16N8K16];

    /// Whether this is one of the per-instruction `mma.sync` tiles.
    pub const fn is_mma_sync(self) -> bool {
        matches!(self, WmmaShape::M16N8K8 | WmmaShape::M16N8K16)
    }

    /// Parses the PTX `mMnNkK` spelling.
    pub fn from_qualifier(s: &str) -> Option<WmmaShape> {
        match s {
            "m16n16k16" => Some(WmmaShape::M16N16K16),
            "m32n8k16" => Some(WmmaShape::M32N8K16),
            "m8n32k16" => Some(WmmaShape::M8N32K16),
            "m8n8k32" => Some(WmmaShape::M8N8K32),
            "m16n8k8" => Some(WmmaShape::M16N8K8),
            "m16n8k16" => Some(WmmaShape::M16N8K16),
            _ => None,
        }
    }
}

impl fmt::Display for WmmaShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}n{}k{}", self.m(), self.n(), self.k())
    }
}

/// Memory layout of an operand matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Elements of a row are contiguous; `stride` is the row pitch.
    Row,
    /// Elements of a column are contiguous; `stride` is the column pitch.
    Col,
}

impl Layout {
    /// The opposite layout.
    pub const fn transposed(self) -> Layout {
        match self {
            Layout::Row => Layout::Col,
            Layout::Col => Layout::Row,
        }
    }

    /// Byte address of element `(row, col)` given the leading-dimension
    /// stride in *elements* and the element size in bytes.
    pub fn element_offset(self, row: usize, col: usize, stride: usize, elem_bytes: usize) -> u64 {
        let linear = match self {
            Layout::Row => row * stride + col,
            Layout::Col => col * stride + row,
        };
        (linear * elem_bytes) as u64
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layout::Row => "row",
            Layout::Col => "col",
        })
    }
}

/// Element precision of a WMMA operand matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WmmaType {
    /// IEEE binary16 (A/B on Volta and Turing; C/D FP16 mode).
    F16,
    /// IEEE binary32 (C/D in mixed-precision mode).
    F32,
    /// bfloat16: 8-bit exponent, 7-bit mantissa, 16-bit storage
    /// (Ampere `mma.sync` multiplicands, FP32 accumulate).
    BF16,
    /// TensorFloat-32: 8-bit exponent, 10-bit mantissa, stored in a full
    /// 32-bit register (Ampere `mma.sync` multiplicands, FP32 accumulate).
    TF32,
    /// Signed 8-bit integer (Turing inference mode).
    S8,
    /// Unsigned 8-bit integer (Turing inference mode).
    U8,
    /// Signed 4-bit integer (Turing experimental mode).
    S4,
    /// Unsigned 4-bit integer (Turing experimental mode).
    U4,
    /// 32-bit signed accumulator for the integer modes.
    S32,
}

impl WmmaType {
    /// Element width in bits, as stored in registers and memory (TF32
    /// values occupy a full 32-bit word despite the 19-bit payload).
    pub const fn bits(self) -> usize {
        match self {
            WmmaType::S4 | WmmaType::U4 => 4,
            WmmaType::S8 | WmmaType::U8 => 8,
            WmmaType::F16 | WmmaType::BF16 => 16,
            WmmaType::F32 | WmmaType::TF32 | WmmaType::S32 => 32,
        }
    }

    /// Whether this is one of the integer operand/accumulator types.
    pub const fn is_integer(self) -> bool {
        matches!(
            self,
            WmmaType::S8 | WmmaType::U8 | WmmaType::S4 | WmmaType::U4 | WmmaType::S32
        )
    }

    /// Whether the type is signed (floating-point types are signed).
    pub const fn is_signed(self) -> bool {
        !matches!(self, WmmaType::U8 | WmmaType::U4)
    }

    /// Parses the PTX type qualifier.
    pub fn from_qualifier(s: &str) -> Option<WmmaType> {
        match s {
            "f16" => Some(WmmaType::F16),
            "f32" => Some(WmmaType::F32),
            "bf16" => Some(WmmaType::BF16),
            "tf32" => Some(WmmaType::TF32),
            "s8" => Some(WmmaType::S8),
            "u8" => Some(WmmaType::U8),
            "s4" => Some(WmmaType::S4),
            "u4" => Some(WmmaType::U4),
            "s32" => Some(WmmaType::S32),
            _ => None,
        }
    }
}

impl fmt::Display for WmmaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WmmaType::F16 => "f16",
            WmmaType::F32 => "f32",
            WmmaType::BF16 => "bf16",
            WmmaType::TF32 => "tf32",
            WmmaType::S8 => "s8",
            WmmaType::U8 => "u8",
            WmmaType::S4 => "s4",
            WmmaType::U4 => "u4",
            WmmaType::S32 => "s32",
        })
    }
}

/// Tensor-core generation, selecting which WMMA/`mma.sync` qualifier
/// combinations a kernel may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TensorGen {
    /// First generation: warp-scope `m16n16k16` FP16 WMMA only (§II-C).
    Volta,
    /// Second generation: adds integer modes and the wide/tall/4-bit
    /// warp-scope shapes (§III-B2).
    Turing,
    /// Third generation: adds per-instruction `mma.sync` (m16n8kN tiles),
    /// BF16/TF32 multiplicands, and 2:4 structured sparsity.
    Ampere,
}

impl TensorGen {
    /// Whether Turing-era warp-WMMA extensions (integer modes, extra
    /// shapes) are available.
    pub const fn has_turing_wmma(self) -> bool {
        !matches!(self, TensorGen::Volta)
    }

    /// Whether per-instruction `mma.sync` is available.
    pub const fn has_mma_sync(self) -> bool {
        matches!(self, TensorGen::Ampere)
    }

    /// The canonical lower-case spelling.
    pub fn qualifier(self) -> &'static str {
        match self {
            TensorGen::Volta => "volta",
            TensorGen::Turing => "turing",
            TensorGen::Ampere => "ampere",
        }
    }

    /// Parses the lower-case spelling.
    pub fn from_qualifier(s: &str) -> Option<TensorGen> {
        match s {
            "volta" => Some(TensorGen::Volta),
            "turing" => Some(TensorGen::Turing),
            "ampere" => Some(TensorGen::Ampere),
            _ => None,
        }
    }
}

impl fmt::Display for TensorGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.qualifier())
    }
}

/// Which operand matrix a fragment holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FragmentKind {
    /// Multiplicand A (`M×K`).
    A,
    /// Multiplicand B (`K×N`).
    B,
    /// Accumulator input C (`M×N`).
    C,
    /// Result D (`M×N`).
    D,
}

impl FragmentKind {
    /// (rows, cols) of this operand under `shape`.
    pub const fn dims(self, shape: WmmaShape) -> (usize, usize) {
        match self {
            FragmentKind::A => (shape.m(), shape.k()),
            FragmentKind::B => (shape.k(), shape.n()),
            FragmentKind::C | FragmentKind::D => (shape.m(), shape.n()),
        }
    }

    /// Total elements of this operand under `shape`.
    pub const fn elements(self, shape: WmmaShape) -> usize {
        let (r, c) = self.dims(shape);
        r * c
    }
}

impl fmt::Display for FragmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FragmentKind::A => "a",
            FragmentKind::B => "b",
            FragmentKind::C => "c",
            FragmentKind::D => "d",
        })
    }
}

/// A fully qualified WMMA operation, as encoded on the three PTX
/// instructions of Fig 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WmmaDirective {
    /// `wmma.load.{a,b,c}.sync.layout.shape.type rX, [addr], stride`
    Load {
        /// Which operand matrix is loaded (A, B or C).
        frag: FragmentKind,
        /// Tile shape qualifier.
        shape: WmmaShape,
        /// Memory layout of the operand matrix.
        layout: Layout,
        /// Element type.
        ty: WmmaType,
    },
    /// `wmma.mma.sync.alayout.blayout.shape.dtype.ctype rd, ra, rb, rc`
    Mma {
        /// Tile shape qualifier.
        shape: WmmaShape,
        /// Layout qualifier the A fragment was loaded with.
        a_layout: Layout,
        /// Layout qualifier the B fragment was loaded with.
        b_layout: Layout,
        /// Element type of the A/B multiplicands.
        ab_type: WmmaType,
        /// Element type of the D result.
        d_type: WmmaType,
        /// Element type of the C accumulator.
        c_type: WmmaType,
    },
    /// `wmma.store.d.sync.layout.shape.type [addr], rd, stride`
    Store {
        /// Tile shape qualifier.
        shape: WmmaShape,
        /// Memory layout of the destination matrix.
        layout: Layout,
        /// Element type.
        ty: WmmaType,
    },
    /// `mma[.sp].sync.aligned.shape.row.col.dtype.abtype.abtype.ctype
    /// rd, ra, rb, rc[, rmeta]` — Ampere per-instruction MMA with fixed
    /// `row.col` operand layouts (arXiv:2502.15999 §3).
    MmaSync {
        /// Tile shape qualifier (`m16n8k8` or `m16n8k16`).
        shape: WmmaShape,
        /// Element type of the A/B multiplicands (F16, BF16 or TF32).
        ab_type: WmmaType,
        /// Element type of the D result.
        d_type: WmmaType,
        /// Element type of the C accumulator.
        c_type: WmmaType,
        /// 2:4 structured sparsity: A is stored compressed (half the K
        /// extent) and a metadata operand selects the surviving elements.
        sparse: bool,
    },
}

impl WmmaDirective {
    /// The tile shape of the operation.
    pub fn shape(&self) -> WmmaShape {
        match *self {
            WmmaDirective::Load { shape, .. }
            | WmmaDirective::Mma { shape, .. }
            | WmmaDirective::Store { shape, .. }
            | WmmaDirective::MmaSync { shape, .. } => shape,
        }
    }

    /// Checks the qualifier combination is one the given architecture
    /// supports (§II-C / §III-B2). Back-compat wrapper over
    /// [`WmmaDirective::is_valid_on`] for the two paper generations.
    pub fn is_valid(&self, turing: bool) -> bool {
        self.is_valid_on(if turing {
            TensorGen::Turing
        } else {
            TensorGen::Volta
        })
    }

    /// Checks the qualifier combination against a tensor-core generation.
    ///
    /// Volta: only `m16n16k16` FP16 multiplies with FP16/FP32 accumulate.
    /// Turing adds the integer modes and shapes. Ampere keeps everything
    /// Turing has and adds per-instruction `mma.sync` on the `m16n8kN`
    /// tiles: F16 multiplicands with F16/F32 accumulate, BF16 and TF32
    /// with F32 accumulate (TF32 only at `k8`), plus 2:4 sparse variants
    /// of the 16-bit `m16n8k16` modes.
    pub fn is_valid_on(&self, gen: TensorGen) -> bool {
        let turing = gen.has_turing_wmma();
        let valid_mma = |shape: WmmaShape, ab: WmmaType, c: WmmaType, d: WmmaType| -> bool {
            match ab {
                WmmaType::F16 => {
                    matches!(
                        shape,
                        WmmaShape::M16N16K16 | WmmaShape::M32N8K16 | WmmaShape::M8N32K16
                    ) && matches!(c, WmmaType::F16 | WmmaType::F32)
                        && matches!(d, WmmaType::F16 | WmmaType::F32)
                        && (turing || shape == WmmaShape::M16N16K16)
                }
                WmmaType::S8 | WmmaType::U8 => {
                    turing
                        && matches!(
                            shape,
                            WmmaShape::M16N16K16 | WmmaShape::M32N8K16 | WmmaShape::M8N32K16
                        )
                        && c == WmmaType::S32
                        && d == WmmaType::S32
                }
                WmmaType::S4 | WmmaType::U4 => {
                    turing
                        && shape == WmmaShape::M8N8K32
                        && c == WmmaType::S32
                        && d == WmmaType::S32
                }
                _ => false,
            }
        };
        // `mma.sync` multiplicand validity: which ab types are allowed on
        // which m16n8 tile (sparse restricted to the 16-bit k16 modes).
        let valid_mma_sync =
            |shape: WmmaShape, ab: WmmaType, c: WmmaType, d: WmmaType, sparse: bool| -> bool {
                if !gen.has_mma_sync() || !shape.is_mma_sync() {
                    return false;
                }
                let types_ok = match ab {
                    WmmaType::F16 => {
                        matches!(c, WmmaType::F16 | WmmaType::F32)
                            && matches!(d, WmmaType::F16 | WmmaType::F32)
                    }
                    WmmaType::BF16 => c == WmmaType::F32 && d == WmmaType::F32,
                    WmmaType::TF32 => {
                        shape == WmmaShape::M16N8K8 && c == WmmaType::F32 && d == WmmaType::F32
                    }
                    _ => false,
                };
                let sparse_ok = !sparse
                    || (shape == WmmaShape::M16N8K16
                        && matches!(ab, WmmaType::F16 | WmmaType::BF16));
                types_ok && sparse_ok
            };
        match *self {
            WmmaDirective::Mma {
                shape,
                ab_type,
                c_type,
                d_type,
                ..
            } => !shape.is_mma_sync() && valid_mma(shape, ab_type, c_type, d_type),
            WmmaDirective::MmaSync {
                shape,
                ab_type,
                c_type,
                d_type,
                sparse,
            } => valid_mma_sync(shape, ab_type, c_type, d_type, sparse),
            WmmaDirective::Load {
                frag, shape, ty, ..
            } if shape.is_mma_sync() => {
                // m16n8 loads/stores are the `ldmatrix`-style fragment
                // moves feeding `mma.sync`; Ampere only.
                match frag {
                    FragmentKind::A | FragmentKind::B => {
                        valid_mma_sync(shape, ty, WmmaType::F32, WmmaType::F32, false)
                    }
                    FragmentKind::C | FragmentKind::D => {
                        gen.has_mma_sync() && matches!(ty, WmmaType::F16 | WmmaType::F32)
                    }
                }
            }
            WmmaDirective::Load {
                frag, shape, ty, ..
            } => match frag {
                FragmentKind::A | FragmentKind::B => valid_mma(
                    shape,
                    ty,
                    if ty == WmmaType::F16 {
                        WmmaType::F32
                    } else {
                        WmmaType::S32
                    },
                    if ty == WmmaType::F16 {
                        WmmaType::F32
                    } else {
                        WmmaType::S32
                    },
                ),
                FragmentKind::C | FragmentKind::D => {
                    matches!(ty, WmmaType::F16 | WmmaType::F32 | WmmaType::S32)
                        && (turing || shape == WmmaShape::M16N16K16)
                }
            },
            WmmaDirective::Store { shape, ty, .. } if shape.is_mma_sync() => {
                gen.has_mma_sync() && matches!(ty, WmmaType::F16 | WmmaType::F32)
            }
            WmmaDirective::Store { shape, ty, .. } => {
                matches!(ty, WmmaType::F16 | WmmaType::F32 | WmmaType::S32)
                    && (turing || shape == WmmaShape::M16N16K16)
            }
        }
    }
}

/// The tile shape whose A-operand dimensions describe the A fragment a
/// `mma.sync` actually reads: for the 2:4 sparse `m16n8k16` modes, A is
/// stored compressed to half the K extent — exactly the `m16n8k8` A tile.
pub const fn mma_sync_a_shape(shape: WmmaShape, sparse: bool) -> WmmaShape {
    match (shape, sparse) {
        (WmmaShape::M16N8K16, true) => WmmaShape::M16N8K8,
        _ => shape,
    }
}

/// Per-thread fragment sizing.
///
/// On Volta each element of A and B is held by **two** threads (one in each
/// of two threadgroups, §III-B1), so fragments are twice the naive
/// `elements / 32` size; on Turing each element is held once (§III-B2).
/// The `m16n8` `mma.sync` tiles exist only on Ampere, where every element
/// has a single owner — they ignore the Volta double-load flag so that
/// fragment sizes are generation-independent at parse time.
pub fn fragment_elements(
    frag: FragmentKind,
    shape: WmmaShape,
    ty: WmmaType,
    volta_double_load: bool,
) -> usize {
    let naive = frag.elements(shape) / WARP_SIZE;
    let _ = ty;
    match frag {
        FragmentKind::A | FragmentKind::B if volta_double_load && !shape.is_mma_sync() => naive * 2,
        _ => naive,
    }
}

/// Number of consecutive 32-bit registers a fragment occupies per thread.
pub fn fragment_regs(
    frag: FragmentKind,
    shape: WmmaShape,
    ty: WmmaType,
    volta_double_load: bool,
) -> usize {
    let elems = fragment_elements(frag, shape, ty, volta_double_load);
    (elems * ty.bits()).div_ceil(32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_dimensions() {
        assert_eq!(
            (
                WmmaShape::M16N16K16.m(),
                WmmaShape::M16N16K16.n(),
                WmmaShape::M16N16K16.k()
            ),
            (16, 16, 16)
        );
        assert_eq!(
            (
                WmmaShape::M32N8K16.m(),
                WmmaShape::M32N8K16.n(),
                WmmaShape::M32N8K16.k()
            ),
            (32, 8, 16)
        );
        assert_eq!(
            (
                WmmaShape::M8N32K16.m(),
                WmmaShape::M8N32K16.n(),
                WmmaShape::M8N32K16.k()
            ),
            (8, 32, 16)
        );
        assert_eq!(
            (
                WmmaShape::M8N8K32.m(),
                WmmaShape::M8N8K32.n(),
                WmmaShape::M8N8K32.k()
            ),
            (8, 8, 32)
        );
    }

    #[test]
    fn shape_qualifier_roundtrip() {
        for s in WmmaShape::ALL {
            assert_eq!(WmmaShape::from_qualifier(&s.to_string()), Some(s));
        }
        assert_eq!(WmmaShape::from_qualifier("m1n1k1"), None);
    }

    #[test]
    fn layout_offsets() {
        // Row-major 16×16 f16 with stride 16: element (2, 3) at (2*16+3)*2.
        assert_eq!(Layout::Row.element_offset(2, 3, 16, 2), 70);
        assert_eq!(Layout::Col.element_offset(2, 3, 16, 2), (3 * 16 + 2) * 2);
        assert_eq!(Layout::Row.transposed(), Layout::Col);
        assert_eq!(Layout::Col.transposed(), Layout::Row);
    }

    #[test]
    fn volta_fragment_sizes_match_paper() {
        // §III-B1: A/B double-loaded → 16 f16 elements = 8 regs (two
        // LD.E.128 loads of 16 bytes each).
        assert_eq!(
            fragment_elements(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::F16, true),
            16
        );
        assert_eq!(
            fragment_regs(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::F16, true),
            8
        );
        // C: 8 elements per thread; 8 regs in FP32 mode, 4 in FP16 mode.
        assert_eq!(
            fragment_regs(FragmentKind::C, WmmaShape::M16N16K16, WmmaType::F32, true),
            8
        );
        assert_eq!(
            fragment_regs(FragmentKind::C, WmmaShape::M16N16K16, WmmaType::F16, true),
            4
        );
    }

    #[test]
    fn turing_fragment_sizes() {
        // Single-loaded: A/B f16 = 8 elements = 4 regs.
        assert_eq!(
            fragment_regs(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::F16, false),
            4
        );
        // 8-bit A: 8 elements = 2 regs.
        assert_eq!(
            fragment_regs(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::S8, false),
            2
        );
        // m32n8k16: A has 512 elements → 16/thread; B has 128 → 4/thread.
        assert_eq!(
            fragment_elements(FragmentKind::A, WmmaShape::M32N8K16, WmmaType::F16, false),
            16
        );
        assert_eq!(
            fragment_elements(FragmentKind::B, WmmaShape::M32N8K16, WmmaType::F16, false),
            4
        );
        // 4-bit mode: A 8×32 = 256 four-bit elements → 8/thread → 1 reg.
        assert_eq!(
            fragment_regs(FragmentKind::A, WmmaShape::M8N8K32, WmmaType::S4, false),
            1
        );
        // 4-bit accumulator: 8×8 = 64 s32 → 2/thread → 2 regs.
        assert_eq!(
            fragment_regs(FragmentKind::C, WmmaShape::M8N8K32, WmmaType::S32, false),
            2
        );
    }

    #[test]
    fn volta_supports_exactly_the_fp16_m16n16k16_modes() {
        let mk = |c, d| WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Row,
            ab_type: WmmaType::F16,
            c_type: c,
            d_type: d,
        };
        assert!(mk(WmmaType::F16, WmmaType::F16).is_valid(false));
        assert!(mk(WmmaType::F32, WmmaType::F32).is_valid(false));
        assert!(mk(WmmaType::F16, WmmaType::F32).is_valid(false));
        assert!(mk(WmmaType::F32, WmmaType::F16).is_valid(false));
        // Integer modes rejected on Volta.
        let int8 = WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::S8,
            c_type: WmmaType::S32,
            d_type: WmmaType::S32,
        };
        assert!(!int8.is_valid(false));
        assert!(int8.is_valid(true));
        // Turing shapes rejected on Volta.
        let t_shape = WmmaDirective::Mma {
            shape: WmmaShape::M32N8K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
        };
        assert!(!t_shape.is_valid(false));
        assert!(t_shape.is_valid(true));
    }

    #[test]
    fn four_bit_mode_requires_k32_shape() {
        let bad = WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::S4,
            c_type: WmmaType::S32,
            d_type: WmmaType::S32,
        };
        assert!(!bad.is_valid(true));
        let good = WmmaDirective::Mma {
            shape: WmmaShape::M8N8K32,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::U4,
            c_type: WmmaType::S32,
            d_type: WmmaType::S32,
        };
        assert!(good.is_valid(true));
    }

    #[test]
    fn volta_mode_count_is_32() {
        // §V-A: "all 32 possible configurations supported on the Titan V":
        // 2 A layouts × 2 B layouts × 2 C types × 2 D types × 2 store
        // layouts — count the mma-level combinations (16) times store
        // layout freedom.
        let mut n = 0;
        for al in [Layout::Row, Layout::Col] {
            for bl in [Layout::Row, Layout::Col] {
                for ct in [WmmaType::F16, WmmaType::F32] {
                    for dt in [WmmaType::F16, WmmaType::F32] {
                        let d = WmmaDirective::Mma {
                            shape: WmmaShape::M16N16K16,
                            a_layout: al,
                            b_layout: bl,
                            ab_type: WmmaType::F16,
                            c_type: ct,
                            d_type: dt,
                        };
                        if d.is_valid(false) {
                            n += 2; // × store layout (row/col)
                        }
                    }
                }
            }
        }
        assert_eq!(n, 32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(WmmaShape::M32N8K16.to_string(), "m32n8k16");
        assert_eq!(Layout::Row.to_string(), "row");
        assert_eq!(WmmaType::S4.to_string(), "s4");
        assert_eq!(FragmentKind::C.to_string(), "c");
        assert_eq!(WmmaType::from_qualifier("u8"), Some(WmmaType::U8));
        assert_eq!(WmmaType::BF16.to_string(), "bf16");
        assert_eq!(WmmaType::TF32.to_string(), "tf32");
        assert_eq!(WmmaShape::M16N8K16.to_string(), "m16n8k16");
        assert_eq!(TensorGen::Ampere.to_string(), "ampere");
        assert_eq!(TensorGen::from_qualifier("ampere"), Some(TensorGen::Ampere));
    }

    #[test]
    fn mma_sync_shape_qualifier_roundtrip() {
        for s in WmmaShape::MMA_SYNC {
            assert_eq!(WmmaShape::from_qualifier(&s.to_string()), Some(s));
            assert!(s.is_mma_sync());
        }
        for s in WmmaShape::ALL {
            assert!(!s.is_mma_sync());
        }
    }

    #[test]
    fn ampere_fragment_sizes_match_ptx_register_counts() {
        // PTX ISA mma.m16n8k16 f16: a = 4 regs (8 halves), b = 2 regs,
        // c/d f32 = 4 regs, c/d f16 = 2 regs.
        let k16 = WmmaShape::M16N8K16;
        assert_eq!(fragment_regs(FragmentKind::A, k16, WmmaType::F16, false), 4);
        assert_eq!(fragment_regs(FragmentKind::B, k16, WmmaType::F16, false), 2);
        assert_eq!(fragment_regs(FragmentKind::C, k16, WmmaType::F32, false), 4);
        assert_eq!(fragment_regs(FragmentKind::C, k16, WmmaType::F16, false), 2);
        // mma.m16n8k8 f16: a = 2 regs, b = 1 reg.
        let k8 = WmmaShape::M16N8K8;
        assert_eq!(fragment_regs(FragmentKind::A, k8, WmmaType::F16, false), 2);
        assert_eq!(fragment_regs(FragmentKind::B, k8, WmmaType::F16, false), 1);
        // mma.m16n8k8 tf32: a = 4 regs, b = 2 regs (one value per word).
        assert_eq!(fragment_regs(FragmentKind::A, k8, WmmaType::TF32, false), 4);
        assert_eq!(fragment_regs(FragmentKind::B, k8, WmmaType::TF32, false), 2);
        // bf16 sizes equal f16 sizes (same storage width).
        assert_eq!(
            fragment_regs(FragmentKind::A, k16, WmmaType::BF16, false),
            4
        );
        // The Volta double-load flag must not inflate mma.sync fragments.
        assert_eq!(
            fragment_elements(FragmentKind::A, k16, WmmaType::F16, true),
            fragment_elements(FragmentKind::A, k16, WmmaType::F16, false),
        );
        // Sparse A is stored at the compressed (k8) footprint.
        assert_eq!(mma_sync_a_shape(k16, true), k8);
        assert_eq!(mma_sync_a_shape(k16, false), k16);
        assert_eq!(mma_sync_a_shape(k8, false), k8);
    }

    #[test]
    fn mma_sync_validity_is_ampere_only() {
        let mk = |shape, ab, c, d, sparse| WmmaDirective::MmaSync {
            shape,
            ab_type: ab,
            c_type: c,
            d_type: d,
            sparse,
        };
        let f16 = mk(
            WmmaShape::M16N8K16,
            WmmaType::F16,
            WmmaType::F32,
            WmmaType::F32,
            false,
        );
        assert!(f16.is_valid_on(TensorGen::Ampere));
        assert!(!f16.is_valid_on(TensorGen::Turing));
        assert!(!f16.is_valid_on(TensorGen::Volta));
        assert!(
            !f16.is_valid(true),
            "is_valid covers only the paper generations"
        );
        // F16 allows f16 accumulate on both tiles.
        assert!(mk(
            WmmaShape::M16N8K8,
            WmmaType::F16,
            WmmaType::F16,
            WmmaType::F16,
            false
        )
        .is_valid_on(TensorGen::Ampere));
        // BF16 requires f32 accumulate.
        assert!(mk(
            WmmaShape::M16N8K16,
            WmmaType::BF16,
            WmmaType::F32,
            WmmaType::F32,
            false
        )
        .is_valid_on(TensorGen::Ampere));
        assert!(!mk(
            WmmaShape::M16N8K16,
            WmmaType::BF16,
            WmmaType::F16,
            WmmaType::F16,
            false
        )
        .is_valid_on(TensorGen::Ampere));
        // TF32 only on the k8 tile.
        assert!(mk(
            WmmaShape::M16N8K8,
            WmmaType::TF32,
            WmmaType::F32,
            WmmaType::F32,
            false
        )
        .is_valid_on(TensorGen::Ampere));
        assert!(!mk(
            WmmaShape::M16N8K16,
            WmmaType::TF32,
            WmmaType::F32,
            WmmaType::F32,
            false
        )
        .is_valid_on(TensorGen::Ampere));
        // Sparse only on the 16-bit k16 modes.
        assert!(mk(
            WmmaShape::M16N8K16,
            WmmaType::F16,
            WmmaType::F32,
            WmmaType::F32,
            true
        )
        .is_valid_on(TensorGen::Ampere));
        assert!(mk(
            WmmaShape::M16N8K16,
            WmmaType::BF16,
            WmmaType::F32,
            WmmaType::F32,
            true
        )
        .is_valid_on(TensorGen::Ampere));
        assert!(!mk(
            WmmaShape::M16N8K8,
            WmmaType::F16,
            WmmaType::F32,
            WmmaType::F32,
            true
        )
        .is_valid_on(TensorGen::Ampere));
        // Warp-scope shapes are rejected by the mma.sync directive, and
        // mma.sync tiles by the warp-scope directive.
        assert!(!mk(
            WmmaShape::M16N16K16,
            WmmaType::F16,
            WmmaType::F32,
            WmmaType::F32,
            false
        )
        .is_valid_on(TensorGen::Ampere));
        let warp_on_sync_tile = WmmaDirective::Mma {
            shape: WmmaShape::M16N8K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
        };
        assert!(!warp_on_sync_tile.is_valid_on(TensorGen::Ampere));
    }

    #[test]
    fn m16n8_loads_and_stores_are_ampere_only() {
        let load = |frag, shape, ty| WmmaDirective::Load {
            frag,
            shape,
            layout: Layout::Row,
            ty,
        };
        assert!(load(FragmentKind::A, WmmaShape::M16N8K16, WmmaType::BF16)
            .is_valid_on(TensorGen::Ampere));
        assert!(!load(FragmentKind::A, WmmaShape::M16N8K16, WmmaType::BF16)
            .is_valid_on(TensorGen::Turing));
        assert!(load(FragmentKind::B, WmmaShape::M16N8K8, WmmaType::TF32)
            .is_valid_on(TensorGen::Ampere));
        assert!(!load(FragmentKind::B, WmmaShape::M16N8K16, WmmaType::TF32)
            .is_valid_on(TensorGen::Ampere));
        assert!(load(FragmentKind::C, WmmaShape::M16N8K16, WmmaType::F32)
            .is_valid_on(TensorGen::Ampere));
        assert!(!load(FragmentKind::C, WmmaShape::M16N8K16, WmmaType::S32)
            .is_valid_on(TensorGen::Ampere));
        let store = WmmaDirective::Store {
            shape: WmmaShape::M16N8K8,
            layout: Layout::Row,
            ty: WmmaType::F32,
        };
        assert!(store.is_valid_on(TensorGen::Ampere));
        assert!(!store.is_valid_on(TensorGen::Turing));
        // BF16/TF32 are rejected everywhere on the warp-scope shapes.
        assert!(!load(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::BF16)
            .is_valid_on(TensorGen::Ampere));
    }

    #[test]
    fn turing_validity_unchanged_on_ampere() {
        // Ampere keeps the full Turing warp-WMMA matrix.
        let int8 = WmmaDirective::Mma {
            shape: WmmaShape::M32N8K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::S8,
            c_type: WmmaType::S32,
            d_type: WmmaType::S32,
        };
        assert_eq!(int8.is_valid(true), int8.is_valid_on(TensorGen::Ampere));
        assert!(int8.is_valid_on(TensorGen::Ampere));
    }
}
