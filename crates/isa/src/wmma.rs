//! WMMA instruction qualifiers: tile shapes, operand layouts, precisions,
//! and per-thread fragment sizes (Fig 2 and §II-C of the paper).

use std::fmt;

/// Number of threads in a warp on all modeled architectures.
pub const WARP_SIZE: usize = 32;

/// Matrix tile shapes supported by `wmma` instructions, written `MxNxK`
/// where A is `M×K`, B is `K×N` and C/D are `M×N`.
///
/// CUDA 9.0 supported only `m16n16k16`; Turing added `m32n8k16` and
/// `m8n32k16` for 8/16-bit modes and `m8n8k32` for the 4-bit mode
/// (§III-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WmmaShape {
    /// 16×16 output tile, K = 16.
    M16N16K16,
    /// 32×8 output tile, K = 16 (Turing).
    M32N8K16,
    /// 8×32 output tile, K = 16 (Turing).
    M8N32K16,
    /// 8×8 output tile, K = 32, 4-bit operands only (Turing).
    M8N8K32,
}

impl WmmaShape {
    /// Rows of A and of C/D.
    pub const fn m(self) -> usize {
        match self {
            WmmaShape::M16N16K16 => 16,
            WmmaShape::M32N8K16 => 32,
            WmmaShape::M8N32K16 | WmmaShape::M8N8K32 => 8,
        }
    }

    /// Columns of B and of C/D.
    pub const fn n(self) -> usize {
        match self {
            WmmaShape::M16N16K16 => 16,
            WmmaShape::M32N8K16 | WmmaShape::M8N8K32 => 8,
            WmmaShape::M8N32K16 => 32,
        }
    }

    /// Inner (reduction) dimension: columns of A, rows of B.
    pub const fn k(self) -> usize {
        match self {
            WmmaShape::M16N16K16 | WmmaShape::M32N8K16 | WmmaShape::M8N32K16 => 16,
            WmmaShape::M8N8K32 => 32,
        }
    }

    /// All shapes, in the order used by Table I of the paper.
    pub const ALL: [WmmaShape; 4] = [
        WmmaShape::M16N16K16,
        WmmaShape::M32N8K16,
        WmmaShape::M8N32K16,
        WmmaShape::M8N8K32,
    ];

    /// Parses the PTX `mMnNkK` spelling.
    pub fn from_qualifier(s: &str) -> Option<WmmaShape> {
        match s {
            "m16n16k16" => Some(WmmaShape::M16N16K16),
            "m32n8k16" => Some(WmmaShape::M32N8K16),
            "m8n32k16" => Some(WmmaShape::M8N32K16),
            "m8n8k32" => Some(WmmaShape::M8N8K32),
            _ => None,
        }
    }
}

impl fmt::Display for WmmaShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}n{}k{}", self.m(), self.n(), self.k())
    }
}

/// Memory layout of an operand matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Elements of a row are contiguous; `stride` is the row pitch.
    Row,
    /// Elements of a column are contiguous; `stride` is the column pitch.
    Col,
}

impl Layout {
    /// The opposite layout.
    pub const fn transposed(self) -> Layout {
        match self {
            Layout::Row => Layout::Col,
            Layout::Col => Layout::Row,
        }
    }

    /// Byte address of element `(row, col)` given the leading-dimension
    /// stride in *elements* and the element size in bytes.
    pub fn element_offset(self, row: usize, col: usize, stride: usize, elem_bytes: usize) -> u64 {
        let linear = match self {
            Layout::Row => row * stride + col,
            Layout::Col => col * stride + row,
        };
        (linear * elem_bytes) as u64
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layout::Row => "row",
            Layout::Col => "col",
        })
    }
}

/// Element precision of a WMMA operand matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WmmaType {
    /// IEEE binary16 (A/B on Volta and Turing; C/D FP16 mode).
    F16,
    /// IEEE binary32 (C/D in mixed-precision mode).
    F32,
    /// Signed 8-bit integer (Turing inference mode).
    S8,
    /// Unsigned 8-bit integer (Turing inference mode).
    U8,
    /// Signed 4-bit integer (Turing experimental mode).
    S4,
    /// Unsigned 4-bit integer (Turing experimental mode).
    U4,
    /// 32-bit signed accumulator for the integer modes.
    S32,
}

impl WmmaType {
    /// Element width in bits.
    pub const fn bits(self) -> usize {
        match self {
            WmmaType::S4 | WmmaType::U4 => 4,
            WmmaType::S8 | WmmaType::U8 => 8,
            WmmaType::F16 => 16,
            WmmaType::F32 | WmmaType::S32 => 32,
        }
    }

    /// Whether this is one of the integer operand/accumulator types.
    pub const fn is_integer(self) -> bool {
        matches!(
            self,
            WmmaType::S8 | WmmaType::U8 | WmmaType::S4 | WmmaType::U4 | WmmaType::S32
        )
    }

    /// Whether the type is signed (floating-point types are signed).
    pub const fn is_signed(self) -> bool {
        !matches!(self, WmmaType::U8 | WmmaType::U4)
    }

    /// Parses the PTX type qualifier.
    pub fn from_qualifier(s: &str) -> Option<WmmaType> {
        match s {
            "f16" => Some(WmmaType::F16),
            "f32" => Some(WmmaType::F32),
            "s8" => Some(WmmaType::S8),
            "u8" => Some(WmmaType::U8),
            "s4" => Some(WmmaType::S4),
            "u4" => Some(WmmaType::U4),
            "s32" => Some(WmmaType::S32),
            _ => None,
        }
    }
}

impl fmt::Display for WmmaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WmmaType::F16 => "f16",
            WmmaType::F32 => "f32",
            WmmaType::S8 => "s8",
            WmmaType::U8 => "u8",
            WmmaType::S4 => "s4",
            WmmaType::U4 => "u4",
            WmmaType::S32 => "s32",
        })
    }
}

/// Which operand matrix a fragment holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FragmentKind {
    /// Multiplicand A (`M×K`).
    A,
    /// Multiplicand B (`K×N`).
    B,
    /// Accumulator input C (`M×N`).
    C,
    /// Result D (`M×N`).
    D,
}

impl FragmentKind {
    /// (rows, cols) of this operand under `shape`.
    pub const fn dims(self, shape: WmmaShape) -> (usize, usize) {
        match self {
            FragmentKind::A => (shape.m(), shape.k()),
            FragmentKind::B => (shape.k(), shape.n()),
            FragmentKind::C | FragmentKind::D => (shape.m(), shape.n()),
        }
    }

    /// Total elements of this operand under `shape`.
    pub const fn elements(self, shape: WmmaShape) -> usize {
        let (r, c) = self.dims(shape);
        r * c
    }
}

impl fmt::Display for FragmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FragmentKind::A => "a",
            FragmentKind::B => "b",
            FragmentKind::C => "c",
            FragmentKind::D => "d",
        })
    }
}

/// A fully qualified WMMA operation, as encoded on the three PTX
/// instructions of Fig 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WmmaDirective {
    /// `wmma.load.{a,b,c}.sync.layout.shape.type rX, [addr], stride`
    Load {
        /// Which operand matrix is loaded (A, B or C).
        frag: FragmentKind,
        /// Tile shape qualifier.
        shape: WmmaShape,
        /// Memory layout of the operand matrix.
        layout: Layout,
        /// Element type.
        ty: WmmaType,
    },
    /// `wmma.mma.sync.alayout.blayout.shape.dtype.ctype rd, ra, rb, rc`
    Mma {
        /// Tile shape qualifier.
        shape: WmmaShape,
        /// Layout qualifier the A fragment was loaded with.
        a_layout: Layout,
        /// Layout qualifier the B fragment was loaded with.
        b_layout: Layout,
        /// Element type of the A/B multiplicands.
        ab_type: WmmaType,
        /// Element type of the D result.
        d_type: WmmaType,
        /// Element type of the C accumulator.
        c_type: WmmaType,
    },
    /// `wmma.store.d.sync.layout.shape.type [addr], rd, stride`
    Store {
        /// Tile shape qualifier.
        shape: WmmaShape,
        /// Memory layout of the destination matrix.
        layout: Layout,
        /// Element type.
        ty: WmmaType,
    },
}

impl WmmaDirective {
    /// The tile shape of the operation.
    pub fn shape(&self) -> WmmaShape {
        match *self {
            WmmaDirective::Load { shape, .. }
            | WmmaDirective::Mma { shape, .. }
            | WmmaDirective::Store { shape, .. } => shape,
        }
    }

    /// Checks the qualifier combination is one the given architecture
    /// supports (§II-C / §III-B2). Volta: only `m16n16k16` FP16 multiplies
    /// with FP16/FP32 accumulate. Turing adds the integer modes and shapes.
    pub fn is_valid(&self, turing: bool) -> bool {
        let valid_mma = |shape: WmmaShape, ab: WmmaType, c: WmmaType, d: WmmaType| -> bool {
            match ab {
                WmmaType::F16 => {
                    matches!(shape, WmmaShape::M16N16K16 | WmmaShape::M32N8K16 | WmmaShape::M8N32K16)
                        && matches!(c, WmmaType::F16 | WmmaType::F32)
                        && matches!(d, WmmaType::F16 | WmmaType::F32)
                        && (turing || shape == WmmaShape::M16N16K16)
                }
                WmmaType::S8 | WmmaType::U8 => {
                    turing
                        && matches!(
                            shape,
                            WmmaShape::M16N16K16 | WmmaShape::M32N8K16 | WmmaShape::M8N32K16
                        )
                        && c == WmmaType::S32
                        && d == WmmaType::S32
                }
                WmmaType::S4 | WmmaType::U4 => {
                    turing && shape == WmmaShape::M8N8K32 && c == WmmaType::S32 && d == WmmaType::S32
                }
                _ => false,
            }
        };
        match *self {
            WmmaDirective::Mma {
                shape,
                ab_type,
                c_type,
                d_type,
                ..
            } => valid_mma(shape, ab_type, c_type, d_type),
            WmmaDirective::Load { frag, shape, ty, .. } => match frag {
                FragmentKind::A | FragmentKind::B => valid_mma(
                    shape,
                    ty,
                    if ty == WmmaType::F16 { WmmaType::F32 } else { WmmaType::S32 },
                    if ty == WmmaType::F16 { WmmaType::F32 } else { WmmaType::S32 },
                ),
                FragmentKind::C | FragmentKind::D => {
                    matches!(ty, WmmaType::F16 | WmmaType::F32 | WmmaType::S32)
                        && (turing || shape == WmmaShape::M16N16K16)
                }
            },
            WmmaDirective::Store { shape, ty, .. } => {
                matches!(ty, WmmaType::F16 | WmmaType::F32 | WmmaType::S32)
                    && (turing || shape == WmmaShape::M16N16K16)
            }
        }
    }
}

/// Per-thread fragment sizing.
///
/// On Volta each element of A and B is held by **two** threads (one in each
/// of two threadgroups, §III-B1), so fragments are twice the naive
/// `elements / 32` size; on Turing each element is held once (§III-B2).
pub fn fragment_elements(
    frag: FragmentKind,
    shape: WmmaShape,
    ty: WmmaType,
    volta_double_load: bool,
) -> usize {
    let naive = frag.elements(shape) / WARP_SIZE;
    let _ = ty;
    match frag {
        FragmentKind::A | FragmentKind::B if volta_double_load => naive * 2,
        _ => naive,
    }
}

/// Number of consecutive 32-bit registers a fragment occupies per thread.
pub fn fragment_regs(
    frag: FragmentKind,
    shape: WmmaShape,
    ty: WmmaType,
    volta_double_load: bool,
) -> usize {
    let elems = fragment_elements(frag, shape, ty, volta_double_load);
    (elems * ty.bits()).div_ceil(32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_dimensions() {
        assert_eq!(
            (WmmaShape::M16N16K16.m(), WmmaShape::M16N16K16.n(), WmmaShape::M16N16K16.k()),
            (16, 16, 16)
        );
        assert_eq!(
            (WmmaShape::M32N8K16.m(), WmmaShape::M32N8K16.n(), WmmaShape::M32N8K16.k()),
            (32, 8, 16)
        );
        assert_eq!(
            (WmmaShape::M8N32K16.m(), WmmaShape::M8N32K16.n(), WmmaShape::M8N32K16.k()),
            (8, 32, 16)
        );
        assert_eq!(
            (WmmaShape::M8N8K32.m(), WmmaShape::M8N8K32.n(), WmmaShape::M8N8K32.k()),
            (8, 8, 32)
        );
    }

    #[test]
    fn shape_qualifier_roundtrip() {
        for s in WmmaShape::ALL {
            assert_eq!(WmmaShape::from_qualifier(&s.to_string()), Some(s));
        }
        assert_eq!(WmmaShape::from_qualifier("m1n1k1"), None);
    }

    #[test]
    fn layout_offsets() {
        // Row-major 16×16 f16 with stride 16: element (2, 3) at (2*16+3)*2.
        assert_eq!(Layout::Row.element_offset(2, 3, 16, 2), 70);
        assert_eq!(Layout::Col.element_offset(2, 3, 16, 2), (3 * 16 + 2) * 2);
        assert_eq!(Layout::Row.transposed(), Layout::Col);
        assert_eq!(Layout::Col.transposed(), Layout::Row);
    }

    #[test]
    fn volta_fragment_sizes_match_paper() {
        // §III-B1: A/B double-loaded → 16 f16 elements = 8 regs (two
        // LD.E.128 loads of 16 bytes each).
        assert_eq!(
            fragment_elements(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::F16, true),
            16
        );
        assert_eq!(
            fragment_regs(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::F16, true),
            8
        );
        // C: 8 elements per thread; 8 regs in FP32 mode, 4 in FP16 mode.
        assert_eq!(
            fragment_regs(FragmentKind::C, WmmaShape::M16N16K16, WmmaType::F32, true),
            8
        );
        assert_eq!(
            fragment_regs(FragmentKind::C, WmmaShape::M16N16K16, WmmaType::F16, true),
            4
        );
    }

    #[test]
    fn turing_fragment_sizes() {
        // Single-loaded: A/B f16 = 8 elements = 4 regs.
        assert_eq!(
            fragment_regs(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::F16, false),
            4
        );
        // 8-bit A: 8 elements = 2 regs.
        assert_eq!(
            fragment_regs(FragmentKind::A, WmmaShape::M16N16K16, WmmaType::S8, false),
            2
        );
        // m32n8k16: A has 512 elements → 16/thread; B has 128 → 4/thread.
        assert_eq!(
            fragment_elements(FragmentKind::A, WmmaShape::M32N8K16, WmmaType::F16, false),
            16
        );
        assert_eq!(
            fragment_elements(FragmentKind::B, WmmaShape::M32N8K16, WmmaType::F16, false),
            4
        );
        // 4-bit mode: A 8×32 = 256 four-bit elements → 8/thread → 1 reg.
        assert_eq!(
            fragment_regs(FragmentKind::A, WmmaShape::M8N8K32, WmmaType::S4, false),
            1
        );
        // 4-bit accumulator: 8×8 = 64 s32 → 2/thread → 2 regs.
        assert_eq!(
            fragment_regs(FragmentKind::C, WmmaShape::M8N8K32, WmmaType::S32, false),
            2
        );
    }

    #[test]
    fn volta_supports_exactly_the_fp16_m16n16k16_modes() {
        let mk = |c, d| WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Row,
            ab_type: WmmaType::F16,
            c_type: c,
            d_type: d,
        };
        assert!(mk(WmmaType::F16, WmmaType::F16).is_valid(false));
        assert!(mk(WmmaType::F32, WmmaType::F32).is_valid(false));
        assert!(mk(WmmaType::F16, WmmaType::F32).is_valid(false));
        assert!(mk(WmmaType::F32, WmmaType::F16).is_valid(false));
        // Integer modes rejected on Volta.
        let int8 = WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::S8,
            c_type: WmmaType::S32,
            d_type: WmmaType::S32,
        };
        assert!(!int8.is_valid(false));
        assert!(int8.is_valid(true));
        // Turing shapes rejected on Volta.
        let t_shape = WmmaDirective::Mma {
            shape: WmmaShape::M32N8K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
        };
        assert!(!t_shape.is_valid(false));
        assert!(t_shape.is_valid(true));
    }

    #[test]
    fn four_bit_mode_requires_k32_shape() {
        let bad = WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::S4,
            c_type: WmmaType::S32,
            d_type: WmmaType::S32,
        };
        assert!(!bad.is_valid(true));
        let good = WmmaDirective::Mma {
            shape: WmmaShape::M8N8K32,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::U4,
            c_type: WmmaType::S32,
            d_type: WmmaType::S32,
        };
        assert!(good.is_valid(true));
    }

    #[test]
    fn volta_mode_count_is_32() {
        // §V-A: "all 32 possible configurations supported on the Titan V":
        // 2 A layouts × 2 B layouts × 2 C types × 2 D types × 2 store
        // layouts — count the mma-level combinations (16) times store
        // layout freedom.
        let mut n = 0;
        for al in [Layout::Row, Layout::Col] {
            for bl in [Layout::Row, Layout::Col] {
                for ct in [WmmaType::F16, WmmaType::F32] {
                    for dt in [WmmaType::F16, WmmaType::F32] {
                        let d = WmmaDirective::Mma {
                            shape: WmmaShape::M16N16K16,
                            a_layout: al,
                            b_layout: bl,
                            ab_type: WmmaType::F16,
                            c_type: ct,
                            d_type: dt,
                        };
                        if d.is_valid(false) {
                            n += 2; // × store layout (row/col)
                        }
                    }
                }
            }
        }
        assert_eq!(n, 32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(WmmaShape::M32N8K16.to_string(), "m32n8k16");
        assert_eq!(Layout::Row.to_string(), "row");
        assert_eq!(WmmaType::S4.to_string(), "s4");
        assert_eq!(FragmentKind::C.to_string(), "c");
        assert_eq!(WmmaType::from_qualifier("u8"), Some(WmmaType::U8));
    }
}
