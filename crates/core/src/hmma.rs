//! HMMA decomposition: sets, steps, and the outer-product schedule
//! (§III-C/D/E, Table III, Fig 9/10/11).
//!
//! One `wmma.mma` PTX instruction becomes a group of HMMA SASS
//! instructions:
//!
//! * **Volta, mixed precision**: 4 sets × 4 steps = 16 HMMA. In set *s*,
//!   each octet computes the outer product of A's k-block *s* with B's
//!   k-block *s*; within the set, step 0/1 multiply the low/high two rows
//!   of each threadgroup's A subtile against the B subtile loaded by the
//!   octet's *low* threadgroup, steps 2/3 against the *high* threadgroup's
//!   B subtile (Table III).
//! * **Volta, FP16**: 4 sets × 2 steps = 8 HMMA; each step covers all four
//!   rows (Fig 10c).
//! * **Turing**: 4 HMMA for every mode except 4-bit (1 HMMA); the paper
//!   infers the per-set operand footprints of Fig 11 (steps, if any, are
//!   sequenced by a hardware state machine, §III-D2).
//!
//! [`execute_stepwise_volta`] runs the decomposed schedule and is verified (in
//! tests and property tests) to produce bit-identical results to the
//! atomic whole-tile semantics of [`mma_reference`].

use crate::fedp::{fedp_f32, fedp_f32_pre, fedp_i32};
use crate::mapping::{VOLTA_A_ROW_BASE, VOLTA_B_COL_BASE};
use crate::tile::Tile;
use tcsim_f16::F16;
use tcsim_isa::{WmmaShape, WmmaType};

/// Number of HMMA sets per `wmma.mma` (all modes except Turing 4-bit).
pub const SETS: usize = 4;

/// Arithmetic mode of an MMA, determining step counts and accumulator
/// precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MmaMode {
    /// FP16 multiplicands, FP32 result registers (mixed precision).
    MixedF32,
    /// FP16 multiplicands, FP16 result registers.
    Fp16,
    /// 8/4-bit integer multiplicands, INT32 accumulate (Turing).
    Integer,
}

impl MmaMode {
    /// Classifies from the `wmma.mma` / `mma.sync` type qualifiers. The
    /// Ampere BF16/TF32 multiplicands always accumulate in FP32, so they
    /// classify as mixed precision.
    pub fn from_types(ab: WmmaType, d: WmmaType) -> MmaMode {
        match (ab, d) {
            (WmmaType::F16 | WmmaType::BF16 | WmmaType::TF32, WmmaType::F32) => MmaMode::MixedF32,
            (WmmaType::F16, WmmaType::F16) => MmaMode::Fp16,
            (WmmaType::S8 | WmmaType::U8 | WmmaType::S4 | WmmaType::U4, WmmaType::S32) => {
                MmaMode::Integer
            }
            other => panic!("invalid mma type combination {other:?}"),
        }
    }

    /// HMMA steps per set on Volta (Fig 9): 4 in mixed precision, 2 in
    /// FP16 mode.
    pub fn volta_steps_per_set(self) -> usize {
        match self {
            MmaMode::MixedF32 => 4,
            MmaMode::Fp16 => 2,
            MmaMode::Integer => panic!("Volta tensor cores have no integer mode"),
        }
    }
}

/// Atomic (whole-tile) functional semantics of `wmma.mma`:
/// `D = A×B + C` with the FEDP numerics of [`crate::fedp`] — the
/// reduction is chained four elements at a time in ascending k order, and
/// FP16 results are rounded once per FEDP.
pub fn mma_reference(a: &Tile, b: &Tile, c: &Tile, d_type: WmmaType) -> Tile {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    assert_eq!(b.rows(), k, "A cols must equal B rows");
    assert_eq!((c.rows(), c.cols()), (m, n), "C must be M×N");
    let mut d = Tile::new(d_type, m, n);
    if a.ty().is_integer() {
        // Decode each operand element once (A row-major, B transposed to
        // column-major) instead of re-extracting k elements per output
        // cell; the dot product itself is unchanged.
        let av: Vec<i32> = (0..m)
            .flat_map(|r| (0..k).map(move |i| a.get_i32(r, i)))
            .collect();
        let bt: Vec<i32> = (0..n)
            .flat_map(|col| (0..k).map(move |i| b.get_i32(i, col)))
            .collect();
        for r in 0..m {
            for col in 0..n {
                let acc = crate::fedp::dot_i32(
                    &av[r * k..(r + 1) * k],
                    &bt[col * k..(col + 1) * k],
                    c.get_i32(r, col),
                );
                d.set_i32(r, col, acc);
            }
        }
    } else {
        // Same hoist for the floating modes. F16/BF16/TF32 → binary32 is
        // exact, so widening each multiplicand once up front leaves every
        // FEDP product bit-identical to converting inside the chain.
        let av: Vec<f32> = (0..m)
            .flat_map(|r| (0..k).map(move |i| a.widen_f32(r, i)))
            .collect();
        let bt: Vec<f32> = (0..n)
            .flat_map(|col| (0..k).map(move |i| b.widen_f32(i, col)))
            .collect();
        for r in 0..m {
            for col in 0..n {
                let mut acc = c.value(r, col) as f32;
                let row = &av[r * k..(r + 1) * k];
                let bcol = &bt[col * k..(col + 1) * k];
                for (qa, qb) in row.chunks_exact(4).zip(bcol.chunks_exact(4)) {
                    acc = fedp_f32_pre(qa, qb, acc);
                    if d_type == WmmaType::F16 {
                        acc = F16::from_f32(acc).to_f32();
                    }
                }
                if d_type == WmmaType::F16 {
                    d.set_f16(r, col, F16::from_f32(acc));
                } else {
                    d.set_f32(r, col, acc);
                }
            }
        }
    }
    d
}

/// Number of dense `k` indices covered by one 2:4 sparsity metadata group.
pub const SPARSE_GROUP_K: usize = 4;
/// Bits of metadata per kept element index.
pub const SPARSE_INDEX_BITS: u32 = 2;

/// Packs one row's 2:4 sparsity metadata word: `groups[j] = (i0, i1)` are
/// the dense-k indices (0–3, `i0 < i1`) of the two elements kept from
/// dense k-group `j`. Group `j` occupies bits `4j..4j+4` (index 0 in the
/// low two bits).
pub fn pack_sparse_row_meta(groups: [(u8, u8); 4]) -> u16 {
    let mut meta = 0u16;
    for (j, &(i0, i1)) in groups.iter().enumerate() {
        assert!(
            i0 < 4 && i1 < 4 && i0 < i1,
            "2:4 indices must be ascending and in 0..4"
        );
        meta |= ((i0 as u16) | ((i1 as u16) << SPARSE_INDEX_BITS)) << (4 * j);
    }
    meta
}

/// Expands a 2:4-compressed `mma.sp.sync` A operand to its dense tile.
///
/// `a` is the 16×8 compressed operand (every row stores only the kept
/// elements, two per dense k-group, in ascending k order) and
/// `row_meta[r]` the metadata word of row `r` in the
/// [`pack_sparse_row_meta`] encoding. The result is the 16×16 dense tile
/// with the dropped elements as +0 — multiplying it with
/// [`mma_reference`] defines the sparse-GEMM semantics (the hardware
/// skips the zero products; the FEDP chain still sees four addends per
/// quad, so numerics match the dense unit with zeros in place).
///
/// Works for any 16-bit multiplicand type (F16/BF16): elements move at
/// the bit level.
pub fn expand_sparse_a(a: &Tile, row_meta: &[u16]) -> Tile {
    assert_eq!(a.cols() * 2, a.rows(), "compressed A must be 16x8");
    assert_eq!(row_meta.len(), a.rows(), "one metadata word per row");
    let mut dense = Tile::new(a.ty(), a.rows(), a.cols() * 2);
    for (r, &meta) in row_meta.iter().enumerate() {
        for j in 0..a.cols() / 2 {
            let nibble = (meta >> (4 * j)) & 0xF;
            let i0 = (nibble & 0x3) as usize;
            let i1 = ((nibble >> SPARSE_INDEX_BITS) & 0x3) as usize;
            dense.set_bits(r, SPARSE_GROUP_K * j + i0, a.get_bits(r, 2 * j));
            dense.set_bits(r, SPARSE_GROUP_K * j + i1, a.get_bits(r, 2 * j + 1));
        }
    }
    dense
}

/// One HMMA instruction's operand footprint for one threadgroup:
/// `A[a_rows] × B[·, b_cols]` over reduction block `k_range`, accumulated
/// into `D[a_rows, b_cols]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepCompute {
    /// Set index (0-based).
    pub set: usize,
    /// Step index within the set (0-based).
    pub step: usize,
    /// Threadgroup performing this piece.
    pub threadgroup: usize,
    /// Output (and A) rows.
    pub a_rows: Vec<usize>,
    /// Reduction indices (columns of A = rows of B).
    pub k_range: Vec<usize>,
    /// Output (and B) columns.
    pub b_cols: Vec<usize>,
}

/// The full Volta HMMA schedule: for each of the 16 (or 8) HMMA
/// instructions, the per-threadgroup computations it performs, in issue
/// order (Table III expanded to all four octets).
pub fn volta_schedule(mode: MmaMode) -> Vec<Vec<StepCompute>> {
    let steps_per_set = mode.volta_steps_per_set();
    let mut out = Vec::new();
    for set in 0..SETS {
        for step in 0..steps_per_set {
            let mut pieces = Vec::new();
            for octet in 0..4 {
                let (tg_lo, tg_hi) = (octet, octet + 4);
                // Which B-column block this step multiplies against: the
                // low threadgroup's columns first, then the high's.
                let (row_sel, b_src) = match mode {
                    MmaMode::MixedF32 => (step % 2, step / 2),
                    MmaMode::Fp16 => (usize::MAX, step), // all rows
                    MmaMode::Integer => unreachable!(),
                };
                let b_base = VOLTA_B_COL_BASE[if b_src == 0 { tg_lo } else { tg_hi }];
                let b_cols: Vec<usize> = (b_base..b_base + 4).collect();
                let k_range: Vec<usize> = (4 * set..4 * set + 4).collect();
                for tg in [tg_lo, tg_hi] {
                    let a_base = VOLTA_A_ROW_BASE[tg];
                    let a_rows: Vec<usize> = if row_sel == usize::MAX {
                        (a_base..a_base + 4).collect()
                    } else {
                        (a_base + 2 * row_sel..a_base + 2 * row_sel + 2).collect()
                    };
                    pieces.push(StepCompute {
                        set,
                        step,
                        threadgroup: tg,
                        a_rows,
                        k_range: k_range.clone(),
                        b_cols: b_cols.clone(),
                    });
                }
            }
            out.push(pieces);
        }
    }
    out
}

/// Table III in the paper's notation: the outer-product pieces of octet 0
/// in mixed-precision mode, as `(set, step, "a[0:1]×A", "e[0:1]×A")`.
pub fn table3_rows() -> Vec<(usize, usize, String, String)> {
    let a_letters = ['a', 'b', 'c', 'd']; // TG X's A k-blocks
    let e_letters = ['e', 'f', 'g', 'h']; // TG X+4's A k-blocks
    let b_low = ['A', 'B', 'C', 'D']; // B k-blocks in TG X's columns
    let b_high = ['E', 'F', 'G', 'H']; // B k-blocks in TG X+4's columns
    let mut rows = Vec::new();
    for set in 0..SETS {
        for step in 0..4 {
            let rowpart = if step % 2 == 0 { "[0:1]" } else { "[2:3]" };
            let b = if step / 2 == 0 {
                b_low[set]
            } else {
                b_high[set]
            };
            rows.push((
                set + 1,
                step,
                format!("{}{}×{}", a_letters[set], rowpart, b),
                format!("{}{}×{}", e_letters[set], rowpart, b),
            ));
        }
    }
    rows
}

/// One Turing HMMA ("set") footprint: the sub-products of Fig 11.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetCompute {
    /// Set index (0-based).
    pub set: usize,
    /// Output rows `[start, end)`.
    pub m: (usize, usize),
    /// Reduction block `[start, end)`.
    pub k: (usize, usize),
    /// Output columns `[start, end)`.
    pub n: (usize, usize),
}

/// The per-set operand footprints on Turing (Fig 11). Every (m, k, n)
/// product term is covered by exactly one set; sets are ordered so that
/// each output element sees its k blocks in ascending order.
pub fn turing_sets(shape: WmmaShape, mode: MmaMode) -> Vec<SetCompute> {
    let (m, n, k) = (shape.m(), shape.n(), shape.k());
    let mk = |set, mr: (usize, usize), kr, nr| SetCompute {
        set,
        m: mr,
        k: kr,
        n: nr,
    };
    match (shape, mode) {
        // 4-bit: a single HMMA covers the whole tile (§III-D2).
        (WmmaShape::M8N8K32, MmaMode::Integer) => vec![mk(0, (0, m), (0, k), (0, n))],
        // FP16/mixed 16×16×16: 16×8 of A times 8×8 of B per set (Fig 11a).
        (WmmaShape::M16N16K16, MmaMode::Fp16 | MmaMode::MixedF32) => vec![
            mk(0, (0, 16), (0, 8), (0, 8)),
            mk(1, (0, 16), (8, 16), (0, 8)),
            mk(2, (0, 16), (0, 8), (8, 16)),
            mk(3, (0, 16), (8, 16), (8, 16)),
        ],
        // 8-bit 16×16×16: 8×16 of A times 16×8 of B per set (Fig 11b).
        (WmmaShape::M16N16K16, MmaMode::Integer) => vec![
            mk(0, (0, 8), (0, 16), (0, 8)),
            mk(1, (8, 16), (0, 16), (0, 8)),
            mk(2, (0, 8), (0, 16), (8, 16)),
            mk(3, (8, 16), (0, 16), (8, 16)),
        ],
        // FP16/mixed 32×8×16: 16×8 of A times 8×8 of B (Fig 11d).
        (WmmaShape::M32N8K16, MmaMode::Fp16 | MmaMode::MixedF32) => vec![
            mk(0, (0, 16), (0, 8), (0, 8)),
            mk(1, (0, 16), (8, 16), (0, 8)),
            mk(2, (16, 32), (0, 8), (0, 8)),
            mk(3, (16, 32), (8, 16), (0, 8)),
        ],
        // 8-bit 32×8×16: 8×16 of A times the whole 16×8 B (Fig 11e).
        (WmmaShape::M32N8K16, MmaMode::Integer) => vec![
            mk(0, (0, 8), (0, 16), (0, 8)),
            mk(1, (8, 16), (0, 16), (0, 8)),
            mk(2, (16, 24), (0, 16), (0, 8)),
            mk(3, (24, 32), (0, 16), (0, 8)),
        ],
        // FP16/mixed 8×32×16: 8×8 of A times 8×16 of B (Fig 11f).
        (WmmaShape::M8N32K16, MmaMode::Fp16 | MmaMode::MixedF32) => vec![
            mk(0, (0, 8), (0, 8), (0, 16)),
            mk(1, (0, 8), (8, 16), (0, 16)),
            mk(2, (0, 8), (0, 8), (16, 32)),
            mk(3, (0, 8), (8, 16), (16, 32)),
        ],
        // 8-bit 8×32×16: the whole 8×16 A times 16×8 of B (Fig 11c).
        (WmmaShape::M8N32K16, MmaMode::Integer) => vec![
            mk(0, (0, 8), (0, 16), (0, 8)),
            mk(1, (0, 8), (0, 16), (8, 16)),
            mk(2, (0, 8), (0, 16), (16, 24)),
            mk(3, (0, 8), (0, 16), (24, 32)),
        ],
        other => panic!("unsupported Turing shape/mode combination {other:?}"),
    }
}

/// Accumulator matrix used by the stepwise executors: FP32 (with optional
/// per-FEDP FP16 rounding) or INT32.
enum Acc {
    Float { vals: Vec<f32>, round_f16: bool },
    Int(Vec<i32>),
}

impl Acc {
    fn init(c: &Tile, d_type: WmmaType) -> Acc {
        if d_type == WmmaType::S32 {
            Acc::Int(
                (0..c.rows())
                    .flat_map(|r| (0..c.cols()).map(move |cc| (r, cc)))
                    .map(|(r, cc)| c.get_i32(r, cc))
                    .collect(),
            )
        } else {
            Acc::Float {
                vals: (0..c.rows())
                    .flat_map(|r| (0..c.cols()).map(move |cc| (r, cc)))
                    .map(|(r, cc)| c.value(r, cc) as f32)
                    .collect(),
                round_f16: d_type == WmmaType::F16,
            }
        }
    }

    fn fedp(&mut self, idx: usize, a: [F16; 4], b: [F16; 4]) {
        let Acc::Float { vals, round_f16 } = self else {
            panic!("float fedp on int acc")
        };
        let mut v = fedp_f32(a, b, vals[idx]);
        if *round_f16 {
            v = F16::from_f32(v).to_f32();
        }
        vals[idx] = v;
    }

    fn fedp_int(&mut self, idx: usize, a: [i32; 4], b: [i32; 4]) {
        let Acc::Int(vals) = self else {
            panic!("int fedp on float acc")
        };
        vals[idx] = fedp_i32(a, b, vals[idx]);
    }

    fn into_tile(self, d_type: WmmaType, rows: usize, cols: usize) -> Tile {
        let mut d = Tile::new(d_type, rows, cols);
        match self {
            Acc::Float { vals, round_f16 } => {
                for r in 0..rows {
                    for c in 0..cols {
                        let v = vals[r * cols + c];
                        if round_f16 {
                            d.set_f16(r, c, F16::from_f32(v));
                        } else {
                            d.set_f32(r, c, v);
                        }
                    }
                }
            }
            Acc::Int(vals) => {
                for r in 0..rows {
                    for c in 0..cols {
                        d.set_i32(r, c, vals[r * cols + c]);
                    }
                }
            }
        }
        d
    }
}

/// Executes the Volta HMMA schedule piece by piece (16 or 8 HMMA
/// instructions, each as its per-threadgroup outer-product fragments) and
/// returns D. Bit-identical to [`mma_reference`].
pub fn execute_stepwise_volta(a: &Tile, b: &Tile, c: &Tile, d_type: WmmaType) -> Tile {
    let mode = MmaMode::from_types(a.ty(), d_type);
    let n = b.cols();
    let mut acc = Acc::init(c, d_type);
    for hmma in volta_schedule(mode) {
        for piece in hmma {
            for &r in &piece.a_rows {
                for &col in &piece.b_cols {
                    let qa: Vec<F16> = piece.k_range.iter().map(|&i| a.get_f16(r, i)).collect();
                    let qb: Vec<F16> = piece.k_range.iter().map(|&i| b.get_f16(i, col)).collect();
                    acc.fedp(
                        r * n + col,
                        [qa[0], qa[1], qa[2], qa[3]],
                        [qb[0], qb[1], qb[2], qb[3]],
                    );
                }
            }
        }
    }
    acc.into_tile(d_type, a.rows(), n)
}

/// Executes the Turing per-set schedule (Fig 11) and returns D.
/// Bit-identical to [`mma_reference`].
pub fn execute_setwise_turing(
    a: &Tile,
    b: &Tile,
    c: &Tile,
    d_type: WmmaType,
    shape: WmmaShape,
) -> Tile {
    let mode = MmaMode::from_types(a.ty(), d_type);
    let n = b.cols();
    let mut acc = Acc::init(c, d_type);
    for set in turing_sets(shape, mode) {
        for r in set.m.0..set.m.1 {
            for col in set.n.0..set.n.1 {
                let ks: Vec<usize> = (set.k.0..set.k.1).collect();
                for quad in ks.chunks_exact(4) {
                    if mode == MmaMode::Integer {
                        let qa: Vec<i32> = quad.iter().map(|&i| a.get_i32(r, i)).collect();
                        let qb: Vec<i32> = quad.iter().map(|&i| b.get_i32(i, col)).collect();
                        acc.fedp_int(
                            r * n + col,
                            [qa[0], qa[1], qa[2], qa[3]],
                            [qb[0], qb[1], qb[2], qb[3]],
                        );
                    } else {
                        let qa: Vec<F16> = quad.iter().map(|&i| a.get_f16(r, i)).collect();
                        let qb: Vec<F16> = quad.iter().map(|&i| b.get_f16(i, col)).collect();
                        acc.fedp(
                            r * n + col,
                            [qa[0], qa[1], qa[2], qa[3]],
                            [qb[0], qb[1], qb[2], qb[3]],
                        );
                    }
                }
            }
        }
    }
    acc.into_tile(d_type, a.rows(), n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_isa::FragmentKind;

    fn filled(frag: FragmentKind, shape: WmmaShape, ty: WmmaType, seed: u32) -> Tile {
        let mut t = Tile::for_fragment(frag, shape, ty);
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                match ty {
                    WmmaType::F16 => {
                        let v = ((state >> 8) % 64) as f32 / 8.0 - 4.0;
                        t.set_f16(r, c, F16::from_f32(v));
                    }
                    WmmaType::BF16 => {
                        let v = ((state >> 8) % 64) as f32 / 8.0 - 4.0;
                        t.set_bf16(r, c, tcsim_f16::Bf16::from_f32(v));
                    }
                    WmmaType::TF32 => {
                        let v = ((state >> 8) % 64) as f32 / 8.0 - 4.0;
                        t.set_tf32(r, c, tcsim_f16::Tf32::from_f32(v));
                    }
                    WmmaType::F32 => {
                        let v = ((state >> 8) % 256) as f32 / 16.0 - 8.0;
                        t.set_f32(r, c, v);
                    }
                    _ => t.set_i32(r, c, (state >> 8) as i32),
                }
            }
        }
        t
    }

    #[test]
    fn volta_schedule_has_16_hmma_in_mixed_and_8_in_fp16() {
        assert_eq!(volta_schedule(MmaMode::MixedF32).len(), 16);
        assert_eq!(volta_schedule(MmaMode::Fp16).len(), 8);
    }

    #[test]
    fn each_mixed_step_is_2x4_per_threadgroup() {
        // Fig 10b: each step multiplies a 2×4 sub-tile of A with 4×4 of B.
        for hmma in volta_schedule(MmaMode::MixedF32) {
            assert_eq!(hmma.len(), 8, "8 threadgroup pieces per HMMA");
            for piece in hmma {
                assert_eq!(piece.a_rows.len(), 2);
                assert_eq!(piece.k_range.len(), 4);
                assert_eq!(piece.b_cols.len(), 4);
            }
        }
    }

    #[test]
    fn each_fp16_step_is_4x4_per_threadgroup() {
        // Fig 10c: each FP16 step multiplies 4×4 with 4×4.
        for hmma in volta_schedule(MmaMode::Fp16) {
            for piece in hmma {
                assert_eq!(piece.a_rows.len(), 4);
                assert_eq!(piece.b_cols.len(), 4);
            }
        }
    }

    #[test]
    fn set_k_covers_columns_4s_to_4s_plus_4() {
        // Fig 10a: set s multiplies A's k-block s with B's k-block s.
        for (i, hmma) in volta_schedule(MmaMode::MixedF32).iter().enumerate() {
            let set = i / 4;
            for piece in hmma {
                assert_eq!(piece.k_range, (4 * set..4 * set + 4).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn mixed_schedule_covers_every_product_term_exactly_once() {
        // Union over all pieces of (row × k × col) must cover the 16×16×16
        // product space exactly once.
        let mut count = vec![0u8; 16 * 16 * 16];
        for hmma in volta_schedule(MmaMode::MixedF32) {
            for piece in hmma {
                for &r in &piece.a_rows {
                    for &k in &piece.k_range {
                        for &c in &piece.b_cols {
                            count[(r * 16 + k) * 16 + c] += 1;
                        }
                    }
                }
            }
        }
        assert!(count.iter().all(|&n| n == 1));
    }

    #[test]
    fn fp16_schedule_covers_every_product_term_exactly_once() {
        let mut count = vec![0u8; 16 * 16 * 16];
        for hmma in volta_schedule(MmaMode::Fp16) {
            for piece in hmma {
                for &r in &piece.a_rows {
                    for &k in &piece.k_range {
                        for &c in &piece.b_cols {
                            count[(r * 16 + k) * 16 + c] += 1;
                        }
                    }
                }
            }
        }
        assert!(count.iter().all(|&n| n == 1));
    }

    #[test]
    fn table3_matches_paper_rows() {
        let rows = table3_rows();
        assert_eq!(rows.len(), 16);
        // SET 1: a[0:1]×A / e[0:1]×A; then a[2:3]×A; then a[0:1]×E …
        assert_eq!(rows[0], (1, 0, "a[0:1]×A".into(), "e[0:1]×A".into()));
        assert_eq!(rows[1], (1, 1, "a[2:3]×A".into(), "e[2:3]×A".into()));
        assert_eq!(rows[2], (1, 2, "a[0:1]×E".into(), "e[0:1]×E".into()));
        assert_eq!(rows[3], (1, 3, "a[2:3]×E".into(), "e[2:3]×E".into()));
        // SET 4 ends with d[2:3]×H / h[2:3]×H.
        assert_eq!(rows[15], (4, 3, "d[2:3]×H".into(), "h[2:3]×H".into()));
    }

    #[test]
    fn stepwise_volta_equals_reference_all_float_modes() {
        let shape = WmmaShape::M16N16K16;
        for (cty, dty) in [
            (WmmaType::F32, WmmaType::F32),
            (WmmaType::F16, WmmaType::F16),
            (WmmaType::F16, WmmaType::F32),
            (WmmaType::F32, WmmaType::F16),
        ] {
            let a = filled(FragmentKind::A, shape, WmmaType::F16, 1);
            let b = filled(FragmentKind::B, shape, WmmaType::F16, 2);
            let c = filled(FragmentKind::C, shape, cty, 3);
            let want = mma_reference(&a, &b, &c, dty);
            let got = execute_stepwise_volta(&a, &b, &c, dty);
            assert_eq!(got, want, "c={cty} d={dty}");
        }
    }

    #[test]
    fn setwise_turing_equals_reference_all_modes() {
        let cases = [
            (
                WmmaShape::M16N16K16,
                WmmaType::F16,
                WmmaType::F32,
                WmmaType::F32,
            ),
            (
                WmmaShape::M16N16K16,
                WmmaType::F16,
                WmmaType::F16,
                WmmaType::F16,
            ),
            (
                WmmaShape::M16N16K16,
                WmmaType::S8,
                WmmaType::S32,
                WmmaType::S32,
            ),
            (
                WmmaShape::M32N8K16,
                WmmaType::F16,
                WmmaType::F32,
                WmmaType::F32,
            ),
            (
                WmmaShape::M32N8K16,
                WmmaType::U8,
                WmmaType::S32,
                WmmaType::S32,
            ),
            (
                WmmaShape::M8N32K16,
                WmmaType::F16,
                WmmaType::F16,
                WmmaType::F16,
            ),
            (
                WmmaShape::M8N32K16,
                WmmaType::S8,
                WmmaType::S32,
                WmmaType::S32,
            ),
            (
                WmmaShape::M8N8K32,
                WmmaType::S4,
                WmmaType::S32,
                WmmaType::S32,
            ),
            (
                WmmaShape::M8N8K32,
                WmmaType::U4,
                WmmaType::S32,
                WmmaType::S32,
            ),
        ];
        for (shape, abty, cty, dty) in cases {
            let a = filled(FragmentKind::A, shape, abty, 7);
            let b = filled(FragmentKind::B, shape, abty, 11);
            let c = filled(FragmentKind::C, shape, cty, 13);
            let want = mma_reference(&a, &b, &c, dty);
            let got = execute_setwise_turing(&a, &b, &c, dty, shape);
            assert_eq!(got, want, "{shape} {abty}");
        }
    }

    #[test]
    fn turing_sets_cover_product_space_once() {
        for (shape, mode) in [
            (WmmaShape::M16N16K16, MmaMode::MixedF32),
            (WmmaShape::M16N16K16, MmaMode::Integer),
            (WmmaShape::M32N8K16, MmaMode::Fp16),
            (WmmaShape::M32N8K16, MmaMode::Integer),
            (WmmaShape::M8N32K16, MmaMode::MixedF32),
            (WmmaShape::M8N32K16, MmaMode::Integer),
            (WmmaShape::M8N8K32, MmaMode::Integer),
        ] {
            let (m, n, k) = (shape.m(), shape.n(), shape.k());
            let mut count = vec![0u8; m * n * k];
            for s in turing_sets(shape, mode) {
                for r in s.m.0..s.m.1 {
                    for kk in s.k.0..s.k.1 {
                        for c in s.n.0..s.n.1 {
                            count[(r * k + kk) * n + c] += 1;
                        }
                    }
                }
            }
            assert!(count.iter().all(|&x| x == 1), "{shape} {mode:?}");
        }
    }

    #[test]
    fn turing_4bit_is_single_hmma() {
        assert_eq!(turing_sets(WmmaShape::M8N8K32, MmaMode::Integer).len(), 1);
        assert_eq!(turing_sets(WmmaShape::M16N16K16, MmaMode::Fp16).len(), 4);
    }

    #[test]
    fn turing_sets_see_k_blocks_in_ascending_order() {
        // For each output element, the sets touching it must come in
        // ascending k order (so rounding in FP16 mode matches the atomic
        // chained-FEDP semantics).
        for (shape, mode) in [
            (WmmaShape::M16N16K16, MmaMode::Fp16),
            (WmmaShape::M32N8K16, MmaMode::Fp16),
            (WmmaShape::M8N32K16, MmaMode::Fp16),
        ] {
            let (m, n) = (shape.m(), shape.n());
            let mut last_k = vec![0usize; m * n];
            for s in turing_sets(shape, mode) {
                for r in s.m.0..s.m.1 {
                    for c in s.n.0..s.n.1 {
                        assert!(s.k.0 >= last_k[r * n + c], "{shape} set {}", s.set);
                        last_k[r * n + c] = s.k.1;
                    }
                }
            }
        }
    }

    #[test]
    fn mma_reference_handles_bf16_and_tf32_multiplicands() {
        // m16n8k16 BF16 and m16n8k8 TF32 against a plain f64 matmul: the
        // filled() values are small integer multiples of 1/8, so every
        // product and partial sum is exact in f32 and the FEDP chain must
        // equal the naive sum.
        for (shape, abty) in [
            (WmmaShape::M16N8K16, WmmaType::BF16),
            (WmmaShape::M16N8K8, WmmaType::TF32),
        ] {
            let a = filled(FragmentKind::A, shape, abty, 21);
            let b = filled(FragmentKind::B, shape, abty, 22);
            let c = filled(FragmentKind::C, shape, WmmaType::F32, 23);
            let d = mma_reference(&a, &b, &c, WmmaType::F32);
            for r in 0..shape.m() {
                for col in 0..shape.n() {
                    let mut want = c.value(r, col);
                    for k in 0..shape.k() {
                        want += a.value(r, k) * b.value(k, col);
                    }
                    assert_eq!(d.value(r, col), want, "{shape} {abty} ({r},{col})");
                }
            }
        }
    }

    #[test]
    fn pack_sparse_row_meta_encodes_two_bit_indices() {
        // Keep (0,1) in group 0, (2,3) in group 1, (0,3) in group 2,
        // (1,2) in group 3.
        let meta = pack_sparse_row_meta([(0, 1), (2, 3), (0, 3), (1, 2)]);
        assert_eq!(meta, 0x9CE4, "{meta:#06x}");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn pack_sparse_row_meta_rejects_descending_indices() {
        pack_sparse_row_meta([(1, 0), (0, 1), (0, 1), (0, 1)]);
    }

    #[test]
    fn expand_sparse_a_places_kept_elements_and_zeros() {
        let mut a = Tile::new(WmmaType::F16, 16, 8);
        for r in 0..16 {
            for c in 0..8 {
                a.set_f16(r, c, F16::from_f32((r * 8 + c + 1) as f32));
            }
        }
        // Same pattern on every row: keep (1,3) in every group.
        let meta = vec![pack_sparse_row_meta([(1, 3); 4]); 16];
        let dense = expand_sparse_a(&a, &meta);
        assert_eq!((dense.rows(), dense.cols()), (16, 16));
        for r in 0..16 {
            for j in 0..4 {
                assert_eq!(dense.value(r, 4 * j), 0.0, "dropped slot");
                assert_eq!(dense.value(r, 4 * j + 1), a.value(r, 2 * j));
                assert_eq!(dense.value(r, 4 * j + 2), 0.0, "dropped slot");
                assert_eq!(dense.value(r, 4 * j + 3), a.value(r, 2 * j + 1));
            }
        }
    }

    #[test]
    fn sparse_reference_equals_dense_reference_on_expanded_operand() {
        // The sparse semantics are *defined* as dense mma_reference over
        // the expanded operand; check a mixed-pattern expansion end to end
        // against a hand matmul that skips the dropped products.
        let a = filled(FragmentKind::A, WmmaShape::M16N8K8, WmmaType::BF16, 31);
        let b = filled(FragmentKind::B, WmmaShape::M16N8K16, WmmaType::BF16, 32);
        let c = filled(FragmentKind::C, WmmaShape::M16N8K16, WmmaType::F32, 33);
        let meta: Vec<u16> = (0..16)
            .map(|r| {
                let pick = [(0u8, 1u8), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
                pack_sparse_row_meta([
                    pick[r % 6],
                    pick[(r + 1) % 6],
                    pick[(r + 2) % 6],
                    pick[(r + 3) % 6],
                ])
            })
            .collect();
        let dense_a = expand_sparse_a(&a, &meta);
        let d = mma_reference(&dense_a, &b, &c, WmmaType::F32);
        for (r, &row_meta) in meta.iter().enumerate() {
            for col in 0..8 {
                let mut want = c.value(r, col);
                for j in 0..4 {
                    let nibble = (row_meta >> (4 * j)) & 0xF;
                    let (i0, i1) = ((nibble & 3) as usize, ((nibble >> 2) & 3) as usize);
                    want += a.value(r, 2 * j) * b.value(4 * j + i0, col);
                    want += a.value(r, 2 * j + 1) * b.value(4 * j + i1, col);
                }
                assert_eq!(d.value(r, col), want, "({r},{col})");
            }
        }
    }

    #[test]
    fn mixed_reference_differs_from_fp16_reference_when_precision_matters() {
        // Sanity: the mode distinction is observable.
        let shape = WmmaShape::M16N16K16;
        let mut a = Tile::for_fragment(FragmentKind::A, shape, WmmaType::F16);
        let mut b = Tile::for_fragment(FragmentKind::B, shape, WmmaType::F16);
        // Row 0 of A: [2048, 1, 0...]; col 0 of B: [1, 1, 0...].
        a.set_f16(0, 0, F16::from_f32(2048.0));
        a.set_f16(0, 4, F16::from_f32(1.0));
        b.set_f16(0, 0, F16::from_f32(1.0));
        b.set_f16(4, 0, F16::from_f32(1.0));
        let c16 = Tile::for_fragment(FragmentKind::C, shape, WmmaType::F16);
        let c32 = Tile::for_fragment(FragmentKind::C, shape, WmmaType::F32);
        let d32 = mma_reference(&a, &b, &c32, WmmaType::F32);
        let d16 = mma_reference(&a, &b, &c16, WmmaType::F16);
        assert_eq!(d32.get_f32(0, 0), 2049.0);
        assert_eq!(d16.get_f16(0, 0).to_f32(), 2048.0);
    }
}
