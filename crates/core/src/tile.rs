//! Whole operand-matrix tiles in WMMA element types, used by the
//! functional model and the HMMA decomposition.

use tcsim_f16::{Bf16, Tf32, F16};
use tcsim_isa::{FragmentKind, WmmaShape, WmmaType};

/// A dense `rows × cols` tile of WMMA elements, stored as raw bits.
///
/// Sub-word types store one element per slot (sign information preserved
/// by the typed accessors), so indexing is uniform across precisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tile {
    ty: WmmaType,
    rows: usize,
    cols: usize,
    bits: Vec<u32>,
}

impl Tile {
    /// Creates a zeroed tile.
    pub fn new(ty: WmmaType, rows: usize, cols: usize) -> Tile {
        Tile {
            ty,
            rows,
            cols,
            bits: vec![0; rows * cols],
        }
    }

    /// Creates the tile for `frag` under `shape`.
    pub fn for_fragment(frag: FragmentKind, shape: WmmaShape, ty: WmmaType) -> Tile {
        let (r, c) = frag.dims(shape);
        Tile::new(ty, r, c)
    }

    /// Element type.
    pub fn ty(&self) -> WmmaType {
        self.ty
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn idx(&self, r: usize, c: usize) -> usize {
        assert!(
            r < self.rows && c < self.cols,
            "tile index ({r},{c}) out of range"
        );
        r * self.cols + c
    }

    /// Raw bits of element `(r, c)` (low `ty.bits()` bits significant).
    pub fn get_bits(&self, r: usize, c: usize) -> u32 {
        self.bits[self.idx(r, c)]
    }

    /// Stores raw bits for element `(r, c)`, masked to the element width.
    pub fn set_bits(&mut self, r: usize, c: usize, v: u32) {
        let mask = if self.ty.bits() >= 32 {
            u32::MAX
        } else {
            (1u32 << self.ty.bits()) - 1
        };
        let i = self.idx(r, c);
        self.bits[i] = v & mask;
    }

    /// Element as binary16 (only for `F16` tiles).
    pub fn get_f16(&self, r: usize, c: usize) -> F16 {
        assert_eq!(self.ty, WmmaType::F16);
        F16::from_bits(self.get_bits(r, c) as u16)
    }

    /// Stores a binary16 element.
    pub fn set_f16(&mut self, r: usize, c: usize, v: F16) {
        assert_eq!(self.ty, WmmaType::F16);
        self.set_bits(r, c, v.to_bits() as u32);
    }

    /// Element as binary32 (only for `F32` tiles).
    pub fn get_f32(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.ty, WmmaType::F32);
        f32::from_bits(self.get_bits(r, c))
    }

    /// Stores a binary32 element.
    pub fn set_f32(&mut self, r: usize, c: usize, v: f32) {
        assert_eq!(self.ty, WmmaType::F32);
        self.set_bits(r, c, v.to_bits());
    }

    /// Element as bfloat16 (only for `BF16` tiles).
    pub fn get_bf16(&self, r: usize, c: usize) -> Bf16 {
        assert_eq!(self.ty, WmmaType::BF16);
        Bf16::from_bits(self.get_bits(r, c) as u16)
    }

    /// Stores a bfloat16 element.
    pub fn set_bf16(&mut self, r: usize, c: usize, v: Bf16) {
        assert_eq!(self.ty, WmmaType::BF16);
        self.set_bits(r, c, v.to_bits() as u32);
    }

    /// Element as TF32 (only for `TF32` tiles).
    pub fn get_tf32(&self, r: usize, c: usize) -> Tf32 {
        assert_eq!(self.ty, WmmaType::TF32);
        Tf32::from_bits(self.get_bits(r, c))
    }

    /// Stores a TF32 element.
    pub fn set_tf32(&mut self, r: usize, c: usize, v: Tf32) {
        assert_eq!(self.ty, WmmaType::TF32);
        self.set_bits(r, c, v.to_bits());
    }

    /// Multiplicand element widened to binary32 — exact for every tensor-
    /// core multiplicand format (F16, BF16 and TF32 all embed in binary32).
    pub fn widen_f32(&self, r: usize, c: usize) -> f32 {
        match self.ty {
            WmmaType::F16 => self.get_f16(r, c).to_f32(),
            WmmaType::BF16 => self.get_bf16(r, c).to_f32(),
            WmmaType::TF32 => self.get_tf32(r, c).to_f32(),
            other => panic!("widen_f32 on {other} tile"),
        }
    }

    /// Element as a sign/zero-extended integer (integer tiles only).
    pub fn get_i32(&self, r: usize, c: usize) -> i32 {
        let raw = self.get_bits(r, c);
        match self.ty {
            WmmaType::S8 => raw as u8 as i8 as i32,
            WmmaType::U8 => raw as u8 as i32,
            WmmaType::S4 => {
                let v = (raw & 0xF) as i32;
                if v >= 8 {
                    v - 16
                } else {
                    v
                }
            }
            WmmaType::U4 => (raw & 0xF) as i32,
            WmmaType::S32 => raw as i32,
            other => panic!("get_i32 on {other} tile"),
        }
    }

    /// Stores an integer element (truncated to the element width).
    pub fn set_i32(&mut self, r: usize, c: usize, v: i32) {
        self.set_bits(r, c, v as u32);
    }

    /// Numeric value of the element as f64 (for comparisons in tests).
    pub fn value(&self, r: usize, c: usize) -> f64 {
        match self.ty {
            WmmaType::F16 => self.get_f16(r, c).to_f64(),
            WmmaType::BF16 => self.get_bf16(r, c).to_f64(),
            WmmaType::TF32 => self.get_tf32(r, c).to_f64(),
            WmmaType::F32 => self.get_f32(r, c) as f64,
            _ => self.get_i32(r, c) as f64,
        }
    }

    /// Fills an F16 tile from row-major f32 data (rounding each element).
    pub fn fill_f32(&mut self, data: &[f32]) {
        assert_eq!(data.len(), self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = data[r * self.cols + c];
                match self.ty {
                    WmmaType::F16 => self.set_f16(r, c, F16::from_f32(v)),
                    WmmaType::BF16 => self.set_bf16(r, c, Bf16::from_f32(v)),
                    WmmaType::TF32 => self.set_tf32(r, c, Tf32::from_f32(v)),
                    WmmaType::F32 => self.set_f32(r, c, v),
                    _ => self.set_i32(r, c, v as i32),
                }
            }
        }
    }

    /// Row-major dump of all element values as f64.
    pub fn values(&self) -> Vec<f64> {
        (0..self.rows)
            .flat_map(|r| (0..self.cols).map(move |c| (r, c)))
            .map(|(r, c)| self.value(r, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_tile_roundtrip() {
        let mut t = Tile::new(WmmaType::F16, 4, 4);
        t.set_f16(1, 2, F16::from_f32(1.5));
        assert_eq!(t.get_f16(1, 2).to_f32(), 1.5);
        assert_eq!(t.get_f16(0, 0).to_f32(), 0.0);
        assert_eq!(t.value(1, 2), 1.5);
    }

    #[test]
    fn f32_tile_roundtrip() {
        let mut t = Tile::new(WmmaType::F32, 2, 3);
        t.set_f32(1, 1, -2.25);
        assert_eq!(t.get_f32(1, 1), -2.25);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    fn bf16_tile_roundtrip() {
        let mut t = Tile::new(WmmaType::BF16, 2, 2);
        t.set_bf16(0, 1, Bf16::from_f32(-2.5));
        assert_eq!(t.get_bf16(0, 1).to_f32(), -2.5);
        assert_eq!(t.value(0, 1), -2.5);
        assert_eq!(t.widen_f32(0, 1), -2.5);
    }

    #[test]
    fn tf32_tile_truncates_to_canonical_patterns() {
        let mut t = Tile::new(WmmaType::TF32, 1, 2);
        t.set_tf32(0, 0, Tf32::from_f32(3.0));
        assert_eq!(t.get_tf32(0, 0).to_f32(), 3.0);
        // Raw bits below the TF32 precision cut are ignored by the typed
        // read: the datapath consumes only sign, exponent and the top 10
        // mantissa bits.
        t.set_bits(0, 1, 1.0f32.to_bits() | 0x1FFF);
        assert_eq!(t.get_tf32(0, 1).to_f32(), 1.0);
        assert_eq!(t.widen_f32(0, 1), 1.0);
    }

    #[test]
    fn signed_sub_word_extension() {
        let mut t = Tile::new(WmmaType::S8, 1, 2);
        t.set_i32(0, 0, -5);
        assert_eq!(t.get_i32(0, 0), -5);
        t.set_i32(0, 1, 200); // truncates to 8 bits: 200 as i8 = -56
        assert_eq!(t.get_i32(0, 1), -56);

        let mut t4 = Tile::new(WmmaType::S4, 1, 2);
        t4.set_i32(0, 0, -3);
        assert_eq!(t4.get_i32(0, 0), -3);
        t4.set_i32(0, 1, 7);
        assert_eq!(t4.get_i32(0, 1), 7);

        let mut u4 = Tile::new(WmmaType::U4, 1, 1);
        u4.set_i32(0, 0, 15);
        assert_eq!(u4.get_i32(0, 0), 15);
    }

    #[test]
    fn for_fragment_uses_shape_dims() {
        let a = Tile::for_fragment(FragmentKind::A, WmmaShape::M32N8K16, WmmaType::F16);
        assert_eq!((a.rows(), a.cols()), (32, 16));
        let b = Tile::for_fragment(FragmentKind::B, WmmaShape::M32N8K16, WmmaType::F16);
        assert_eq!((b.rows(), b.cols()), (16, 8));
        let c = Tile::for_fragment(FragmentKind::C, WmmaShape::M32N8K16, WmmaType::F32);
        assert_eq!((c.rows(), c.cols()), (32, 8));
    }

    #[test]
    fn fill_and_values_roundtrip() {
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut t = Tile::new(WmmaType::F16, 4, 4);
        t.fill_f32(&data);
        assert_eq!(t.values(), (0..16).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let t = Tile::new(WmmaType::F16, 2, 2);
        let _ = t.get_bits(2, 0);
    }
}
