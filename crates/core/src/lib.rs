#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Tensor core functional and timing model — the primary contribution of
//! *Modeling Deep Learning Accelerator Enabled GPUs* (Raihan, Goli,
//! Aamodt; ISPASS 2019) rebuilt in Rust.
//!
//! The paper reverse-engineers NVIDIA's Volta (Titan V) and Turing
//! (RTX 2080) tensor cores with microbenchmarks and proposes a
//! microarchitecture consistent with the observations; its GPGPU-Sim
//! implementation achieves 99.6% IPC correlation against real hardware.
//! This crate contains the corresponding model components:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`mapping`] | operand element ↔ thread mappings (Fig 7, Fig 8) |
//! | [`octet`] | threadgroups, octets and their footprints (Table II, Fig 12a) |
//! | [`hmma`] | HMMA sets/steps and outer-product schedule (Table III, Fig 10/11) |
//! | [`fedp`] | four-element dot product pipeline (Fig 13) |
//! | [`timing`] | HMMA latency schedules (Fig 9, Table I) |
//! | [`functional`] | `wmma.{load,mma,store}` execution (§V-A) |
//!
//! # Example: one warp-level MMA
//!
//! ```
//! use tcsim_core::{mma_reference, Tile};
//! use tcsim_isa::{FragmentKind, WmmaShape, WmmaType};
//! use tcsim_f16::F16;
//!
//! let shape = WmmaShape::M16N16K16;
//! let mut a = Tile::for_fragment(FragmentKind::A, shape, WmmaType::F16);
//! let mut b = Tile::for_fragment(FragmentKind::B, shape, WmmaType::F16);
//! let c = Tile::for_fragment(FragmentKind::C, shape, WmmaType::F32);
//! a.set_f16(0, 0, F16::from_f32(2.0));
//! b.set_f16(0, 0, F16::from_f32(3.0));
//! let d = mma_reference(&a, &b, &c, WmmaType::F32);
//! assert_eq!(d.get_f32(0, 0), 6.0);
//! ```

pub mod fedp;
pub mod functional;
pub mod hmma;
pub mod mapping;
pub mod octet;
pub mod pipe;
pub mod tile;
pub mod timing;
pub mod trace;

pub use fedp::{
    dot_f16, dot_f32, dot_i32, fedp_f16, fedp_f32, fedp_f32_pre, fedp_i32, FEDPS_PER_TENSOR_CORE,
    FEDP_STAGES,
};
pub use functional::{gather_tile, read_sparse_meta, scatter_tile, TensorCoreModel};
pub use hmma::{
    execute_setwise_turing, execute_stepwise_volta, expand_sparse_a, mma_reference,
    pack_sparse_row_meta, table3_rows, turing_sets, volta_schedule, MmaMode, SetCompute,
    StepCompute, SETS, SPARSE_GROUP_K, SPARSE_INDEX_BITS,
};
pub use mapping::{threadgroup_of_lane, FragmentMap, THREADGROUPS_PER_WARP, THREADGROUP_SIZE};
pub use octet::{
    octet_footprints, octet_of_lane, threadgroups_of_octet, OctetFootprint, SubTile,
    OCTETS_PER_WARP,
};
pub use pipe::{HmmaEvent, TensorCorePipe};
pub use tile::Tile;
pub use timing::{
    mma_timing, turing_set_completions, turing_step_schedule, volta_step_schedule, HmmaStepTiming,
    MmaTiming, TuringMode, VoltaTimingParams, VOLTA_FP16_CUMULATIVE, VOLTA_MIXED_CUMULATIVE,
};
pub use trace::{mma_step_schedule, trace_mma};
