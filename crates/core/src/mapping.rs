//! Operand-matrix element ↔ thread mapping (Fig 7 and Fig 8 of the paper).
//!
//! A WMMA operand matrix is distributed across the 32 threads of a warp as
//! per-thread *fragments*: spans of consecutive registers. NVIDIA leaves
//! the mapping unspecified at the API level; the paper reverse-engineered
//! it with the microbenchmark of Fig 4. This module encodes the recovered
//! mappings:
//!
//! * **Volta** (Titan V, Fig 7): each *threadgroup* (4 consecutive
//!   threads) loads a 4×16 segment of A (16×4 of B), and **every A/B
//!   element is loaded by two different threadgroups**, enabling octets to
//!   work independently (§III-E). The C accumulator is split into 4×8
//!   segments, one per threadgroup, with an FP32/FP16-dependent
//!   distribution inside the threadgroup.
//! * **Turing** (RTX 2080, Fig 8): every element is loaded once; each row
//!   (or column) is loaded by one threadgroup and consecutive threadgroups
//!   load consecutive rows/columns, for all modes and tile sizes.
//!
//! Where the paper's figures do not pin down the exact order of elements
//! *within* a thread, this module picks the order implied by the observed
//! load decomposition (§III-C: two `LD.E.128` for the contiguous-major
//! layouts, four strided `LD.E.64` for the transposed layouts, 32-bit
//! loads for C); all consumers (load, store, MMA, HMMA set/step
//! decomposition) share the one mapping, so the model is self-consistent
//! by construction.

use tcsim_isa::{FragmentKind, Layout, WmmaShape, WmmaType, WARP_SIZE};

/// Number of threads in a threadgroup (§III: Jia et al.'s "thread group").
pub const THREADGROUP_SIZE: usize = 4;
/// Number of threadgroups in a warp.
pub const THREADGROUPS_PER_WARP: usize = WARP_SIZE / THREADGROUP_SIZE;

/// The threadgroup id of a lane: ⌊lane / 4⌋.
pub const fn threadgroup_of_lane(lane: usize) -> usize {
    lane / THREADGROUP_SIZE
}

/// Row block (of four rows) of operand A loaded by each Volta threadgroup
/// (Fig 7a: rows 0–3 → TGs 0,2; rows 4–7 → TGs 4,6; rows 8–11 → TGs 1,3;
/// rows 12–15 → TGs 5,7).
pub const VOLTA_A_ROW_BASE: [usize; 8] = [0, 8, 0, 8, 4, 12, 4, 12];

/// Column block (of four columns) of operand B loaded by each Volta
/// threadgroup (Fig 7a: cols 0–3 → TGs 0,1; cols 4–7 → TGs 4,5;
/// cols 8–11 → TGs 2,3; cols 12–15 → TGs 6,7).
pub const VOLTA_B_COL_BASE: [usize; 8] = [0, 0, 8, 8, 4, 4, 12, 12];

/// Row base of each Volta threadgroup's 4×8 segment of operand C (Fig 7b).
pub const VOLTA_C_ROW_BASE: [usize; 8] = VOLTA_A_ROW_BASE;

/// Column base of each Volta threadgroup's 4×8 segment of operand C
/// (Fig 7b: TGs 0,4,1,5 own columns 0–7; TGs 2,6,3,7 own columns 8–15).
pub const VOLTA_C_COL_BASE: [usize; 8] = [0, 0, 8, 8, 0, 0, 8, 8];

/// One fragment element's tile coordinates.
pub type RowCol = (u8, u8);

/// The complete element↔thread mapping of one operand matrix fragment.
///
/// `elems[lane][e]` is the tile coordinate held in fragment slot `e` of
/// `lane`; slot order equals register-packing order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragmentMap {
    frag: FragmentKind,
    shape: WmmaShape,
    ty: WmmaType,
    layout: Layout,
    volta: bool,
    elems: Vec<Vec<RowCol>>,
}

impl FragmentMap {
    /// Builds the Volta (Titan V) mapping of Fig 7. Only `m16n16k16` exists
    /// on Volta.
    ///
    /// # Panics
    ///
    /// Panics on a qualifier combination Volta does not support.
    pub fn volta(frag: FragmentKind, ty: WmmaType, layout: Layout) -> FragmentMap {
        let shape = WmmaShape::M16N16K16;
        let mut elems = vec![Vec::new(); WARP_SIZE];
        match frag {
            FragmentKind::A | FragmentKind::B => {
                assert_eq!(ty, WmmaType::F16, "Volta A/B operands are FP16");
                for (lane, out) in elems.iter_mut().enumerate() {
                    let tg = threadgroup_of_lane(lane);
                    let t = lane % THREADGROUP_SIZE;
                    // "Contiguous" = the layout in which a thread's 16
                    // elements are consecutive in memory (two LD.E.128):
                    // row-major for A, column-major for B (Fig 7a ②).
                    let contiguous = matches!(
                        (frag, layout),
                        (FragmentKind::A, Layout::Row) | (FragmentKind::B, Layout::Col)
                    );
                    if contiguous {
                        for x in 0..16u8 {
                            let line = match frag {
                                FragmentKind::A => VOLTA_A_ROW_BASE[tg] + t,
                                _ => VOLTA_B_COL_BASE[tg] + t,
                            } as u8;
                            out.push(match frag {
                                FragmentKind::A => (line, x),
                                _ => (x, line),
                            });
                        }
                    } else {
                        // Transposed layout: four LD.E.64 blocks of four
                        // consecutive elements, 64-element stride (Fig 7a ③).
                        for j in 0..4u8 {
                            for i in 0..4u8 {
                                let base = match frag {
                                    FragmentKind::A => VOLTA_A_ROW_BASE[tg],
                                    _ => VOLTA_B_COL_BASE[tg],
                                } as u8;
                                let line = base + i;
                                let x = t as u8 + 4 * j;
                                out.push(match frag {
                                    FragmentKind::A => (line, x),
                                    _ => (x, line),
                                });
                            }
                        }
                    }
                }
            }
            FragmentKind::C | FragmentKind::D => {
                assert!(
                    matches!(ty, WmmaType::F16 | WmmaType::F32),
                    "Volta accumulators are FP16 or FP32"
                );
                for (lane, out) in elems.iter_mut().enumerate() {
                    let tg = threadgroup_of_lane(lane);
                    let t = lane % THREADGROUP_SIZE;
                    let r0 = VOLTA_C_ROW_BASE[tg] as u8;
                    let c0 = VOLTA_C_COL_BASE[tg] as u8;
                    if ty == WmmaType::F16 {
                        // FP16: thread t holds row r0+t of the 4×8 segment
                        // (8 consecutive halves, four 32-bit loads).
                        for c in 0..8u8 {
                            out.push((r0 + t as u8, c0 + c));
                        }
                    } else {
                        // FP32: thread t holds column pair (2t, 2t+1) over
                        // the segment's four rows (eight 32-bit loads).
                        for r in 0..4u8 {
                            for b in 0..2u8 {
                                out.push((r0 + r, c0 + 2 * t as u8 + b));
                            }
                        }
                    }
                }
            }
        }
        FragmentMap {
            frag,
            shape,
            ty,
            layout,
            volta: true,
            elems,
        }
    }

    /// Builds the Turing (RTX 2080) mapping of Fig 8: each line (row of A/C,
    /// column of B) belongs to one threadgroup, consecutive threadgroups
    /// take consecutive lines (wrapping every 8), and each thread holds an
    /// equal contiguous chunk of each of its threadgroup's lines.
    ///
    /// # Panics
    ///
    /// Panics on a qualifier combination Turing does not support.
    pub fn turing(
        frag: FragmentKind,
        shape: WmmaShape,
        ty: WmmaType,
        layout: Layout,
    ) -> FragmentMap {
        if matches!(ty, WmmaType::S4 | WmmaType::U4) {
            assert_eq!(shape, WmmaShape::M8N8K32, "4-bit mode uses the 8x8x32 tile");
        }
        let (rows, cols) = frag.dims(shape);
        // Lines: rows for A and C/D, columns for B.
        let (num_lines, line_len, line_is_row) = match frag {
            FragmentKind::A => (rows, cols, true),
            FragmentKind::B => (cols, rows, false),
            FragmentKind::C | FragmentKind::D => (rows, cols, true),
        };
        assert!(num_lines.is_multiple_of(THREADGROUPS_PER_WARP) || num_lines == 8);
        let lines_per_tg = num_lines / THREADGROUPS_PER_WARP;
        let chunk = line_len / THREADGROUP_SIZE;
        let mut elems = vec![Vec::new(); WARP_SIZE];
        for (lane, out) in elems.iter_mut().enumerate() {
            let tg = threadgroup_of_lane(lane);
            let t = lane % THREADGROUP_SIZE;
            for j in 0..lines_per_tg {
                let line = tg + THREADGROUPS_PER_WARP * j;
                for o in 0..chunk {
                    let pos = t * chunk + o;
                    out.push(if line_is_row {
                        (line as u8, pos as u8)
                    } else {
                        (pos as u8, line as u8)
                    });
                }
            }
        }
        FragmentMap {
            frag,
            shape,
            ty,
            layout,
            volta: false,
            elems,
        }
    }

    /// Builds the Ampere per-instruction `mma.sync` mapping for the
    /// `m16n8kN` tiles.
    ///
    /// Unlike the warp-scope WMMA mappings the paper reverse-engineered,
    /// these fragment layouts are *architecturally specified* by the PTX
    /// ISA (the `mma.m16n8k8` / `mma.m16n8k16` fragment figures): with
    /// groupID `g = lane / 4` and threadID `t = lane % 4`,
    ///
    /// * 16-bit A (`m16n8k16`, 8 elems): rows `g`/`g+8` × column pairs
    ///   `2t`,`2t+1` then `2t+8`,`2t+9`, register-packed low-half-first;
    /// * 16-bit A (`m16n8k8`, 4 elems): rows `g`/`g+8` × columns `2t`,`2t+1`;
    /// * TF32 A (`m16n8k8`, 4 elems): rows `g`/`g+8` × columns `t`, `t+4`
    ///   (one 32-bit register per element);
    /// * B mirrors A with rows and columns swapped;
    /// * C/D (4 elems): rows `g`/`g+8` × columns `2t`,`2t+1` — which
    ///   coincides with the generic Turing line distribution.
    ///
    /// Every element has exactly one owner (no Volta-style double
    /// loading). The mapping is independent of `layout`; the layout only
    /// selects the memory walk for loads/stores of these fragments.
    ///
    /// # Panics
    ///
    /// Panics on a shape that is not an `mma.sync` tile or a type/shape
    /// combination `mma.sync` does not support.
    pub fn ampere(
        frag: FragmentKind,
        shape: WmmaShape,
        ty: WmmaType,
        layout: Layout,
    ) -> FragmentMap {
        assert!(
            shape.is_mma_sync(),
            "Ampere mapping is for mma.sync tiles only"
        );
        let mut elems = vec![Vec::new(); WARP_SIZE];
        for (lane, out) in elems.iter_mut().enumerate() {
            let g = (lane / THREADGROUP_SIZE) as u8;
            let t = (lane % THREADGROUP_SIZE) as u8;
            match (frag, ty) {
                (FragmentKind::A, WmmaType::TF32) => {
                    assert_eq!(shape, WmmaShape::M16N8K8, "TF32 mma.sync is m16n8k8 only");
                    for ko in [0u8, 4] {
                        out.push((g, t + ko));
                        out.push((g + 8, t + ko));
                    }
                }
                (FragmentKind::B, WmmaType::TF32) => {
                    assert_eq!(shape, WmmaShape::M16N8K8, "TF32 mma.sync is m16n8k8 only");
                    out.push((t, g));
                    out.push((t + 4, g));
                }
                (FragmentKind::A, WmmaType::F16 | WmmaType::BF16) => {
                    let kos: &[u8] = if shape == WmmaShape::M16N8K16 {
                        &[0, 8]
                    } else {
                        &[0]
                    };
                    for &ko in kos {
                        for r in [0u8, 8] {
                            out.push((g + r, 2 * t + ko));
                            out.push((g + r, 2 * t + ko + 1));
                        }
                    }
                }
                (FragmentKind::B, WmmaType::F16 | WmmaType::BF16) => {
                    let kos: &[u8] = if shape == WmmaShape::M16N8K16 {
                        &[0, 8]
                    } else {
                        &[0]
                    };
                    for &ko in kos {
                        out.push((2 * t + ko, g));
                        out.push((2 * t + ko + 1, g));
                    }
                }
                (FragmentKind::C | FragmentKind::D, WmmaType::F16 | WmmaType::F32) => {
                    for r in [0u8, 8] {
                        out.push((g + r, 2 * t));
                        out.push((g + r, 2 * t + 1));
                    }
                }
                other => panic!("unsupported mma.sync fragment/type combination {other:?}"),
            }
        }
        FragmentMap {
            frag,
            shape,
            ty,
            layout,
            volta: false,
            elems,
        }
    }

    /// Builds the mapping for either architecture. The `mma.sync` tile
    /// shapes identify the Ampere per-instruction mappings and are routed
    /// to [`FragmentMap::ampere`] (they never exist on Volta).
    pub fn for_arch(
        volta: bool,
        frag: FragmentKind,
        shape: WmmaShape,
        ty: WmmaType,
        layout: Layout,
    ) -> FragmentMap {
        if shape.is_mma_sync() {
            assert!(!volta, "mma.sync tiles are Ampere-only");
            FragmentMap::ampere(frag, shape, ty, layout)
        } else if volta {
            assert_eq!(shape, WmmaShape::M16N16K16, "Volta supports only m16n16k16");
            FragmentMap::volta(frag, ty, layout)
        } else {
            FragmentMap::turing(frag, shape, ty, layout)
        }
    }

    /// Which operand matrix this fragment holds.
    pub fn frag(&self) -> FragmentKind {
        self.frag
    }

    /// The tile shape.
    pub fn shape(&self) -> WmmaShape {
        self.shape
    }

    /// The element type.
    pub fn ty(&self) -> WmmaType {
        self.ty
    }

    /// The memory layout the fragment is loaded/stored with.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Whether this is the Volta (double-loading) mapping.
    pub fn is_volta(&self) -> bool {
        self.volta
    }

    /// Elements held by `lane`, in register-packing order.
    pub fn lane_elems(&self, lane: usize) -> &[RowCol] {
        &self.elems[lane]
    }

    /// Number of elements per thread.
    pub fn elems_per_thread(&self) -> usize {
        self.elems[0].len()
    }

    /// All (lane, slot) pairs that hold tile element `(row, col)`.
    ///
    /// On Volta this returns two owners from different threadgroups for A/B
    /// elements (§III-B1) and one owner otherwise.
    pub fn owners(&self, row: u8, col: u8) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (lane, elems) in self.elems.iter().enumerate() {
            for (slot, &rc) in elems.iter().enumerate() {
                if rc == (row, col) {
                    out.push((lane, slot));
                }
            }
        }
        out
    }

    /// The canonical owner of `(row, col)`: the lowest-lane holder.
    pub fn owner(&self, row: u8, col: u8) -> (usize, usize) {
        self.owners(row, col)
            .into_iter()
            .next()
            .expect("element not covered by mapping")
    }

    /// Byte offset of element `(row, col)` from the tile base address, given
    /// the leading-dimension `stride` in elements.
    ///
    /// # Panics
    ///
    /// Panics for sub-byte types when `(linear index) * bits` is not
    /// byte-aligned (callers use [`FragmentMap::lane_accesses`], which only
    /// produces aligned runs).
    pub fn element_byte_offset(&self, row: u8, col: u8, stride: usize) -> u64 {
        let linear = match self.layout {
            Layout::Row => row as usize * stride + col as usize,
            Layout::Col => col as usize * stride + row as usize,
        };
        let bits = linear * self.ty.bits();
        assert!(bits.is_multiple_of(8), "sub-byte element not byte aligned");
        (bits / 8) as u64
    }

    /// The memory accesses `lane` performs to load/store its fragment,
    /// as `(byte_offset_from_base, bytes)` runs.
    ///
    /// Contiguous element runs are merged up to the SASS access widths the
    /// paper observed (§III-C): 16-byte (`LD.E.128`) / 8-byte (`LD.E.64`)
    /// vectors for A and B, and 32-bit accesses for the C/D accumulator
    /// (`LD.E.SYS`/`ST.E.SYS`).
    pub fn lane_accesses(&self, lane: usize, stride: usize) -> Vec<(u64, u8)> {
        let cap: usize = match self.frag {
            FragmentKind::A | FragmentKind::B => 16,
            FragmentKind::C | FragmentKind::D => 4,
        };
        let bits = self.ty.bits();
        let mut runs: Vec<(u64, u8)> = Vec::new();
        let mut i = 0;
        let elems = &self.elems[lane];
        while i < elems.len() {
            // Start a run at element i; extend while contiguous in memory.
            let (r, c) = elems[i];
            let linear0 = match self.layout {
                Layout::Row => r as usize * stride + c as usize,
                Layout::Col => c as usize * stride + r as usize,
            };
            let mut n = 1;
            while i + n < elems.len() {
                let (r2, c2) = elems[i + n];
                let linear = match self.layout {
                    Layout::Row => r2 as usize * stride + c2 as usize,
                    Layout::Col => c2 as usize * stride + r2 as usize,
                };
                if linear != linear0 + n || (n + 1) * bits > cap * 8 {
                    break;
                }
                n += 1;
            }
            let byte0 = linear0 * bits / 8;
            let nbytes = (n * bits).div_ceil(8);
            assert!(
                (linear0 * bits).is_multiple_of(8),
                "fragment run not byte aligned (sub-byte layout violation)"
            );
            runs.push((byte0 as u64, nbytes as u8));
            i += n;
        }
        runs
    }

    /// Checks the structural invariants the paper documents and panics on
    /// violation; returns the number of owners per element (2 for Volta
    /// A/B, 1 otherwise).
    pub fn validate(&self) -> usize {
        let (rows, cols) = self.frag.dims(self.shape);
        let expect_owners = if self.volta && matches!(self.frag, FragmentKind::A | FragmentKind::B)
        {
            2
        } else {
            1
        };
        for r in 0..rows as u8 {
            for c in 0..cols as u8 {
                let owners = self.owners(r, c);
                assert_eq!(
                    owners.len(),
                    expect_owners,
                    "element ({r},{c}) of {:?} has owners {owners:?}",
                    self.frag
                );
                if expect_owners == 2 {
                    let tg0 = threadgroup_of_lane(owners[0].0);
                    let tg1 = threadgroup_of_lane(owners[1].0);
                    assert_ne!(tg0, tg1, "double-loaded element must span threadgroups");
                }
            }
        }
        // Every lane holds the same number of elements and covers the tile.
        let per = self.elems_per_thread();
        assert!(self.elems.iter().all(|e| e.len() == per));
        assert_eq!(per * WARP_SIZE, rows * cols * expect_owners);
        expect_owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_a_b_elements_loaded_by_exactly_two_threadgroups() {
        for layout in [Layout::Row, Layout::Col] {
            for frag in [FragmentKind::A, FragmentKind::B] {
                let m = FragmentMap::volta(frag, WmmaType::F16, layout);
                assert_eq!(m.validate(), 2, "{frag:?} {layout}");
                assert_eq!(m.elems_per_thread(), 16);
            }
        }
    }

    #[test]
    fn volta_c_elements_loaded_once() {
        for ty in [WmmaType::F16, WmmaType::F32] {
            for layout in [Layout::Row, Layout::Col] {
                let m = FragmentMap::volta(FragmentKind::C, ty, layout);
                assert_eq!(m.validate(), 1);
                assert_eq!(m.elems_per_thread(), 8);
            }
        }
    }

    #[test]
    fn volta_first_four_rows_of_a_belong_to_threadgroups_0_and_2() {
        // §III-B1: "the first four consecutive rows of operand matrix A are
        // loaded by threadgroup 0 and 2".
        let m = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row);
        for r in 0..4u8 {
            for c in 0..16u8 {
                let tgs: Vec<usize> = m
                    .owners(r, c)
                    .iter()
                    .map(|&(lane, _)| threadgroup_of_lane(lane))
                    .collect();
                assert_eq!(tgs, vec![0, 2], "element ({r},{c})");
            }
        }
        // Rows 4–7 → TGs 4 and 6.
        let tgs: Vec<usize> = m
            .owners(5, 0)
            .iter()
            .map(|&(l, _)| threadgroup_of_lane(l))
            .collect();
        assert_eq!(tgs, vec![4, 6]);
    }

    #[test]
    fn volta_b_column_blocks_match_fig7a() {
        let m = FragmentMap::volta(FragmentKind::B, WmmaType::F16, Layout::Col);
        let tg_of = |c: u8| -> Vec<usize> {
            m.owners(0, c)
                .iter()
                .map(|&(l, _)| threadgroup_of_lane(l))
                .collect()
        };
        assert_eq!(tg_of(0), vec![0, 1]);
        assert_eq!(tg_of(4), vec![4, 5]);
        assert_eq!(tg_of(8), vec![2, 3]);
        assert_eq!(tg_of(12), vec![6, 7]);
    }

    #[test]
    fn volta_c_segments_match_fig7b() {
        let m = FragmentMap::volta(FragmentKind::C, WmmaType::F32, Layout::Row);
        // TG0 owns rows 0–3 × cols 0–7.
        let (lane, _) = m.owner(0, 0);
        assert_eq!(threadgroup_of_lane(lane), 0);
        let (lane, _) = m.owner(0, 8);
        assert_eq!(threadgroup_of_lane(lane), 2);
        let (lane, _) = m.owner(4, 0);
        assert_eq!(threadgroup_of_lane(lane), 4);
        let (lane, _) = m.owner(8, 0);
        assert_eq!(threadgroup_of_lane(lane), 1);
        let (lane, _) = m.owner(12, 8);
        assert_eq!(threadgroup_of_lane(lane), 7);
    }

    #[test]
    fn volta_a_row_major_loads_are_two_128_bit_vectors() {
        // §III-B1: row-major A → each thread issues two coalesced 128-bit
        // loads of 16 consecutive elements.
        let m = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row);
        for lane in 0..WARP_SIZE {
            let acc = m.lane_accesses(lane, 16);
            assert_eq!(acc.len(), 2, "lane {lane}: {acc:?}");
            assert!(acc.iter().all(|&(_, b)| b == 16));
            assert_eq!(acc[0].0 + 16, acc[1].0);
        }
    }

    #[test]
    fn volta_a_col_major_loads_are_four_64_bit_vectors_with_64_element_stride() {
        let m = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Col);
        for lane in 0..WARP_SIZE {
            let acc = m.lane_accesses(lane, 16);
            assert_eq!(acc.len(), 4, "lane {lane}");
            assert!(acc.iter().all(|&(_, b)| b == 8));
            // 64-element stride = 128 bytes between block starts.
            for w in acc.windows(2) {
                assert_eq!(w[1].0 - w[0].0, 128);
            }
        }
    }

    #[test]
    fn volta_c_loads_are_32_bit() {
        for ty in [WmmaType::F16, WmmaType::F32] {
            let m = FragmentMap::volta(FragmentKind::C, ty, Layout::Row);
            let expected = if ty == WmmaType::F32 { 8 } else { 4 };
            for lane in 0..WARP_SIZE {
                let acc = m.lane_accesses(lane, 16);
                assert_eq!(acc.len(), expected, "lane {lane} {ty}");
                assert!(acc.iter().all(|&(_, b)| b == 4));
            }
        }
    }

    #[test]
    fn volta_b_mirrors_a_under_layout_transposition() {
        // §III-B1: distribution of A in row-major equals B in column-major
        // with rows and columns swapped.
        let a = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row);
        let b = FragmentMap::volta(FragmentKind::B, WmmaType::F16, Layout::Col);
        for lane in 0..WARP_SIZE {
            let at: Vec<RowCol> = a.lane_elems(lane).iter().map(|&(r, c)| (c, r)).collect();
            // B's threadgroup→column assignment differs from A's
            // threadgroup→row assignment (Fig 7a ①), so compare the
            // *shape* of the per-thread access: transposing B's elements
            // must give one full row of 16 consecutive elements.
            let bt = b.lane_elems(lane);
            assert_eq!(at.len(), bt.len());
            let cols: Vec<u8> = bt.iter().map(|&(r, _)| r).collect();
            assert_eq!(cols, (0..16).collect::<Vec<u8>>());
            assert!(bt.iter().all(|&(_, c)| c == bt[0].1));
        }
    }

    #[test]
    fn turing_all_modes_validate_with_single_owner() {
        let cases = [
            (WmmaShape::M16N16K16, WmmaType::F16, WmmaType::F32),
            (WmmaShape::M16N16K16, WmmaType::S8, WmmaType::S32),
            (WmmaShape::M32N8K16, WmmaType::F16, WmmaType::F16),
            (WmmaShape::M32N8K16, WmmaType::U8, WmmaType::S32),
            (WmmaShape::M8N32K16, WmmaType::F16, WmmaType::F32),
            (WmmaShape::M8N32K16, WmmaType::S8, WmmaType::S32),
            (WmmaShape::M8N8K32, WmmaType::S4, WmmaType::S32),
        ];
        for (shape, abty, cty) in cases {
            for frag in [FragmentKind::A, FragmentKind::B] {
                let m = FragmentMap::turing(frag, shape, abty, Layout::Row);
                assert_eq!(m.validate(), 1, "{frag:?} {shape} {abty}");
            }
            let m = FragmentMap::turing(FragmentKind::C, shape, cty, Layout::Row);
            assert_eq!(m.validate(), 1, "C {shape} {cty}");
        }
    }

    #[test]
    fn turing_consecutive_threadgroups_load_consecutive_rows() {
        // §III-B2: each row is loaded by a threadgroup and consecutive
        // threadgroups load consecutive rows.
        let m = FragmentMap::turing(
            FragmentKind::A,
            WmmaShape::M16N16K16,
            WmmaType::F16,
            Layout::Row,
        );
        for r in 0..16u8 {
            let owners = m.owners(r, 0);
            assert_eq!(owners.len(), 1);
            assert_eq!(
                threadgroup_of_lane(owners[0].0),
                (r as usize) % 8,
                "row {r}"
            );
        }
    }

    #[test]
    fn turing_b_columns_per_threadgroup() {
        let m = FragmentMap::turing(
            FragmentKind::B,
            WmmaShape::M32N8K16,
            WmmaType::F16,
            Layout::Col,
        );
        // 8 columns, one per threadgroup.
        for c in 0..8u8 {
            for r in 0..16u8 {
                let owners = m.owners(r, c);
                assert_eq!(threadgroup_of_lane(owners[0].0), c as usize);
            }
        }
        // Each thread holds 4 consecutive rows of its column.
        assert_eq!(m.elems_per_thread(), 4);
    }

    #[test]
    fn turing_elements_per_thread_match_fragment_sizes() {
        use tcsim_isa::fragment_elements;
        for (frag, shape, ty) in [
            (FragmentKind::A, WmmaShape::M32N8K16, WmmaType::F16),
            (FragmentKind::B, WmmaShape::M32N8K16, WmmaType::F16),
            (FragmentKind::C, WmmaShape::M8N32K16, WmmaType::F32),
            (FragmentKind::A, WmmaShape::M8N8K32, WmmaType::S4),
        ] {
            let m = FragmentMap::turing(frag, shape, ty, Layout::Row);
            assert_eq!(
                m.elems_per_thread(),
                fragment_elements(frag, shape, ty, false)
            );
        }
    }

    #[test]
    fn four_bit_accesses_are_byte_aligned() {
        let m = FragmentMap::turing(
            FragmentKind::A,
            WmmaShape::M8N8K32,
            WmmaType::S4,
            Layout::Row,
        );
        for lane in 0..WARP_SIZE {
            let acc = m.lane_accesses(lane, 32);
            // 8 nibbles = 4 contiguous bytes in one run.
            assert_eq!(acc.len(), 1, "lane {lane}");
            assert_eq!(acc[0].1, 4);
        }
    }

    #[test]
    fn accesses_cover_every_element_exactly_owner_times() {
        // Byte-coverage check: summing access bytes over all lanes gives
        // tile bytes × owners.
        for (maker, owners) in [
            (
                FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row),
                2usize,
            ),
            (
                FragmentMap::volta(FragmentKind::C, WmmaType::F32, Layout::Col),
                1,
            ),
            (
                FragmentMap::turing(
                    FragmentKind::B,
                    WmmaShape::M16N16K16,
                    WmmaType::S8,
                    Layout::Row,
                ),
                1,
            ),
        ] {
            let m = maker;
            let (r, c) = m.frag().dims(m.shape());
            let tile_bytes = r * c * m.ty().bits() / 8;
            let total: usize = (0..WARP_SIZE)
                .flat_map(|l| m.lane_accesses(l, if m.layout() == Layout::Row { c } else { r }))
                .map(|(_, b)| b as usize)
                .sum();
            assert_eq!(total, tile_bytes * owners);
        }
    }

    #[test]
    fn element_byte_offset_respects_layout() {
        let m = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row);
        assert_eq!(m.element_byte_offset(2, 3, 16), (2 * 16 + 3) * 2);
        let m = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Col);
        assert_eq!(m.element_byte_offset(2, 3, 16), (3 * 16 + 2) * 2);
    }

    #[test]
    fn owner_returns_lowest_lane() {
        let m = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row);
        let (lane, _) = m.owner(0, 0);
        assert_eq!(lane, 0);
    }

    #[test]
    fn ampere_all_mma_sync_fragments_validate_with_single_owner() {
        let cases = [
            (FragmentKind::A, WmmaShape::M16N8K16, WmmaType::F16),
            (FragmentKind::A, WmmaShape::M16N8K16, WmmaType::BF16),
            (FragmentKind::A, WmmaShape::M16N8K8, WmmaType::F16),
            (FragmentKind::A, WmmaShape::M16N8K8, WmmaType::TF32),
            (FragmentKind::B, WmmaShape::M16N8K16, WmmaType::BF16),
            (FragmentKind::B, WmmaShape::M16N8K8, WmmaType::TF32),
            (FragmentKind::C, WmmaShape::M16N8K16, WmmaType::F32),
            (FragmentKind::C, WmmaShape::M16N8K8, WmmaType::F16),
            (FragmentKind::D, WmmaShape::M16N8K16, WmmaType::F32),
        ];
        for (frag, shape, ty) in cases {
            let m = FragmentMap::ampere(frag, shape, ty, Layout::Row);
            assert_eq!(m.validate(), 1, "{frag:?} {shape} {ty}");
        }
    }

    #[test]
    fn ampere_elements_per_thread_match_ptx_fragment_sizes() {
        use tcsim_isa::fragment_elements;
        for (frag, shape, ty) in [
            (FragmentKind::A, WmmaShape::M16N8K16, WmmaType::F16),
            (FragmentKind::A, WmmaShape::M16N8K8, WmmaType::TF32),
            (FragmentKind::B, WmmaShape::M16N8K16, WmmaType::BF16),
            (FragmentKind::B, WmmaShape::M16N8K8, WmmaType::F16),
            (FragmentKind::C, WmmaShape::M16N8K16, WmmaType::F32),
            (FragmentKind::D, WmmaShape::M16N8K8, WmmaType::F16),
        ] {
            let m = FragmentMap::ampere(frag, shape, ty, Layout::Row);
            assert_eq!(
                m.elems_per_thread(),
                fragment_elements(frag, shape, ty, false),
                "{frag:?} {shape} {ty}"
            );
        }
    }

    #[test]
    fn ampere_a_fragment_matches_ptx_figure() {
        // PTX mma.m16n8k16 row-major A fragment: lane L = 4g + t holds
        // a0..a7 = (g,2t) (g,2t+1) (g+8,2t) (g+8,2t+1) then the k+8
        // columns in the same order.
        let m = FragmentMap::ampere(
            FragmentKind::A,
            WmmaShape::M16N8K16,
            WmmaType::F16,
            Layout::Row,
        );
        for lane in 0..WARP_SIZE {
            let (g, t) = ((lane / 4) as u8, (lane % 4) as u8);
            assert_eq!(
                m.lane_elems(lane),
                &[
                    (g, 2 * t),
                    (g, 2 * t + 1),
                    (g + 8, 2 * t),
                    (g + 8, 2 * t + 1),
                    (g, 2 * t + 8),
                    (g, 2 * t + 9),
                    (g + 8, 2 * t + 8),
                    (g + 8, 2 * t + 9),
                ],
                "lane {lane}"
            );
        }
        // TF32 m16n8k8 A: a0..a3 = (g,t) (g+8,t) (g,t+4) (g+8,t+4).
        let m = FragmentMap::ampere(
            FragmentKind::A,
            WmmaShape::M16N8K8,
            WmmaType::TF32,
            Layout::Row,
        );
        for lane in 0..WARP_SIZE {
            let (g, t) = ((lane / 4) as u8, (lane % 4) as u8);
            assert_eq!(
                m.lane_elems(lane),
                &[(g, t), (g + 8, t), (g, t + 4), (g + 8, t + 4)],
                "lane {lane}"
            );
        }
    }

    #[test]
    fn ampere_accumulator_coincides_with_turing_distribution() {
        // The m16n8 C/D fragment (g, 2t)… order equals the generic Turing
        // line distribution, so both constructions must agree.
        for ty in [WmmaType::F16, WmmaType::F32] {
            for shape in [WmmaShape::M16N8K8, WmmaShape::M16N8K16] {
                let amp = FragmentMap::ampere(FragmentKind::C, shape, ty, Layout::Row);
                let tur = FragmentMap::turing(FragmentKind::C, shape, ty, Layout::Row);
                for lane in 0..WARP_SIZE {
                    assert_eq!(
                        amp.lane_elems(lane),
                        tur.lane_elems(lane),
                        "{shape} {ty} {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn for_arch_routes_mma_sync_shapes_to_ampere() {
        let via_arch = FragmentMap::for_arch(
            false,
            FragmentKind::B,
            WmmaShape::M16N8K16,
            WmmaType::F16,
            Layout::Col,
        );
        let direct = FragmentMap::ampere(
            FragmentKind::B,
            WmmaShape::M16N8K16,
            WmmaType::F16,
            Layout::Col,
        );
        assert_eq!(via_arch, direct);
    }
}
