//! Tensor-core timing model: HMMA latency schedules and unit occupancy
//! (Fig 9, Table I, §IV).
//!
//! The paper measured cumulative clock cycles after each HMMA instruction
//! of one `wmma.mma` (microbenchmark of Fig 6):
//!
//! * **Volta mixed precision** (Fig 9a): steps within a set complete 2
//!   cycles apart (initiation interval 2, matching the 2-cycle operand
//!   fetch cadence of §IV), the fourth step of a set takes 4 cycles
//!   (accumulator/source buffer turnaround), sets start every 10 cycles,
//!   and the final step drains the 4-stage FEDP pipeline and write-back
//!   (+6): `10,12,14,18, 20,22,24,28, 30,32,34,38, 40,42,44,54`.
//! * **Volta FP16** (Fig 9b): two steps per set, 9 cycles apart (each FP16
//!   step performs a full 4×4×4 per threadgroup — twice the mixed-mode
//!   work — plus FP16 write-back conversion), sets start every 13 cycles,
//!   final drain +4: `12,21, 25,34, 38,47, 51,64`.
//! * **Turing** (Table I): four HMMA per `wmma.mma` (one in 4-bit mode)
//!   with measured per-set cumulative cycles; the "step" annotation is
//!   gone and steps are sequenced by an internal state machine (§III-D2).
//!
//! The generators below derive the Volta sequences from those pipeline
//! parameters and reproduce the paper's numbers exactly (asserted in
//! tests); the measured tables themselves (Fig 9 cumulative sequences,
//! Table I per-set cycles, and the Ampere `mma.sync` latency pairs) live
//! in [`tcsim_hw::hmma_tables`] — the hardware-surrogate crate — and this
//! module derives schedules from them.

use crate::hmma::MmaMode;
use tcsim_hw::hmma_tables as hw_tables;
use tcsim_isa::{WmmaDirective, WmmaShape, WmmaType};

pub use hw_tables::{VOLTA_FP16_CUMULATIVE, VOLTA_MIXED_CUMULATIVE};

/// Volta pipeline parameters behind the Fig 9 sequences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VoltaTimingParams {
    /// Cycles from HMMA issue to the first step's completion (decode,
    /// operand-bus transfer into the A/B buffers of Fig 13, and the
    /// 4-stage FEDP pipeline).
    pub first_completion: u32,
    /// Initiation interval between steps within a set.
    pub step_interval: u32,
    /// Extra cycles on the last step of a set (accumulator buffer
    /// turnaround before the next set's operands can be fetched).
    pub last_step_extra: u32,
    /// Interval between consecutive set starts.
    pub set_pitch: u32,
    /// Extra cycles after the last set: pipeline drain and register
    /// write-back of the full result fragment.
    pub final_drain: u32,
    /// Steps per set (4 mixed, 2 FP16).
    pub steps_per_set: u32,
}

impl VoltaTimingParams {
    /// Parameters for mixed-precision mode (Fig 9a).
    pub const MIXED: VoltaTimingParams = VoltaTimingParams {
        first_completion: 10,
        step_interval: 2,
        last_step_extra: 2,
        set_pitch: 10,
        final_drain: 6,
        steps_per_set: 4,
    };

    /// Parameters for FP16 mode (Fig 9b).
    pub const FP16: VoltaTimingParams = VoltaTimingParams {
        first_completion: 12,
        step_interval: 9,
        last_step_extra: 0,
        set_pitch: 13,
        final_drain: 4,
        steps_per_set: 2,
    };

    /// Parameters for `mode`.
    pub fn for_mode(mode: MmaMode) -> VoltaTimingParams {
        match mode {
            MmaMode::MixedF32 => VoltaTimingParams::MIXED,
            MmaMode::Fp16 => VoltaTimingParams::FP16,
            MmaMode::Integer => panic!("Volta tensor cores have no integer mode"),
        }
    }

    /// Cumulative completion cycle of every HMMA step, in issue order.
    pub fn completions(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for set in 0..crate::hmma::SETS as u32 {
            let set_start = self.first_completion + set * self.set_pitch;
            for step in 0..self.steps_per_set {
                let mut c = set_start + step * self.step_interval;
                if step == self.steps_per_set - 1 {
                    c += self.last_step_extra;
                    if set == crate::hmma::SETS as u32 - 1 {
                        c += self.final_drain;
                    }
                }
                out.push(c);
            }
        }
        out
    }

    /// Total `wmma.mma` latency: completion of the last HMMA step.
    pub fn latency(&self) -> u32 {
        *self.completions().last().expect("non-empty schedule")
    }

    /// Initiation interval between back-to-back `wmma.mma` instructions on
    /// the same tensor-core pair: the next instruction's first set can
    /// start once all four sets have been issued.
    pub fn issue_interval(&self) -> u32 {
        self.set_pitch * crate::hmma::SETS as u32
    }
}

/// Issue/complete timing of one HMMA step relative to `wmma.mma` start.
///
/// This is the per-step view of the Fig 9 / Table I schedules shared by
/// the [`TensorCorePipe`](crate::pipe::TensorCorePipe) sequencer and the
/// trace subsystem's HMMA event emission — both must agree on when each
/// set/step issues and completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HmmaStepTiming {
    /// Set number, 1-based (paper notation).
    pub set: u8,
    /// Step within the set, 0-based; always 0 on Turing.
    pub step: u8,
    /// Issue offset from the instruction's start cycle.
    pub issue: u32,
    /// Completion offset from the instruction's start cycle.
    pub complete: u32,
}

/// Per-step schedule of one Volta `wmma.mma` (Fig 9a/9b): each step's
/// issue offset (set pitch + step interval) and measured completion.
pub fn volta_step_schedule(mode: MmaMode) -> Vec<HmmaStepTiming> {
    let p = VoltaTimingParams::for_mode(mode);
    let steps = p.steps_per_set;
    p.completions()
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let set = i as u32 / steps;
            let step = i as u32 % steps;
            HmmaStepTiming {
                set: (set + 1) as u8,
                step: step as u8,
                issue: set * p.set_pitch + step * p.step_interval,
                complete: c,
            }
        })
        .collect()
}

/// Per-step schedule of one Turing `wmma.mma` (Table I): one "step" per
/// set, issued one derived set-pitch apart. `None` when the shape/mode
/// combination is not in Table I.
pub fn turing_step_schedule(shape: WmmaShape, mode: TuringMode) -> Option<Vec<HmmaStepTiming>> {
    let completions = turing_set_completions(shape, mode)?;
    let n = completions.len() as u32;
    let first = completions[0];
    let last = *completions.last().expect("non-empty");
    let pitch = if n > 1 {
        (last - first).div_ceil(n - 1)
    } else {
        last
    };
    Some(
        completions
            .iter()
            .enumerate()
            .map(|(i, &c)| HmmaStepTiming {
                set: (i + 1) as u8,
                step: 0,
                issue: i as u32 * pitch,
                complete: c,
            })
            .collect(),
    )
}

/// Turing precision modes as rows of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TuringMode {
    /// 16-bit multiplicands with FP32 accumulation.
    F16AccF32,
    /// 16-bit multiplicands with FP16 accumulation.
    F16AccF16,
    /// 8-bit integer mode.
    Int8,
    /// 4-bit integer mode (single HMMA).
    Int4,
}

impl TuringMode {
    /// Classifies from the `wmma.mma` type qualifiers.
    pub fn from_types(ab: WmmaType, d: WmmaType) -> TuringMode {
        match (ab, d) {
            (WmmaType::F16, WmmaType::F32) => TuringMode::F16AccF32,
            (WmmaType::F16, WmmaType::F16) => TuringMode::F16AccF16,
            (WmmaType::S8 | WmmaType::U8, WmmaType::S32) => TuringMode::Int8,
            (WmmaType::S4 | WmmaType::U4, WmmaType::S32) => TuringMode::Int4,
            other => panic!("invalid Turing mma types {other:?}"),
        }
    }

    /// The ISA-agnostic precision class keying the `tcsim-hw` table.
    pub fn class(self) -> hw_tables::HmmaClass {
        match self {
            TuringMode::F16AccF32 => hw_tables::HmmaClass::HalfAccF32,
            TuringMode::F16AccF16 => hw_tables::HmmaClass::HalfAccF16,
            TuringMode::Int8 => hw_tables::HmmaClass::Int8,
            TuringMode::Int4 => hw_tables::HmmaClass::Int4,
        }
    }
}

/// Table I: average cumulative cycles to execute all HMMA instructions up
/// to each SET on Turing (RTX 2080). `None` for unsupported combinations.
/// The measured values live in [`tcsim_hw::hmma_tables`].
pub fn turing_set_completions(shape: WmmaShape, mode: TuringMode) -> Option<Vec<u32>> {
    hw_tables::turing_set_completions(shape, mode.class()).map(|v| v.to_vec())
}

/// Timing summary of one `wmma.mma` used by the SM's tensor-core unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmaTiming {
    /// Issue-to-writeback latency in core cycles.
    pub latency: u32,
    /// Cycles the warp's tensor-core pair stays busy (minimum spacing of
    /// back-to-back `wmma.mma` from the same scheduler slot).
    pub initiation_interval: u32,
}

/// Computes the timing of a `wmma.mma` or `mma.sync` directive.
///
/// `wmma.mma` is timed on Volta or Turing according to `volta`;
/// `mma.sync` always uses the Ampere single-instruction table (Ampere SMs
/// are never `volta`, which the caller's configuration guarantees).
///
/// # Panics
///
/// Panics if the directive is not a valid multiply for the architecture.
pub fn mma_timing(volta: bool, dir: &WmmaDirective) -> MmaTiming {
    let (shape, ab_type, d_type) = match *dir {
        WmmaDirective::Mma {
            shape,
            ab_type,
            d_type,
            ..
        } => (shape, ab_type, d_type),
        WmmaDirective::MmaSync {
            shape,
            ab_type,
            sparse,
            ..
        } => {
            assert!(!volta, "mma.sync requires an Ampere-generation tensor core");
            let t = hw_tables::ampere_mma_sync(shape, ab_type, sparse).unwrap_or_else(|| {
                panic!("unsupported mma.sync mode {shape} {ab_type} sparse={sparse}")
            });
            return MmaTiming {
                latency: t.latency,
                initiation_interval: t.initiation_interval,
            };
        }
        _ => panic!("mma_timing requires a matrix-multiply directive"),
    };
    if volta {
        let mode = MmaMode::from_types(ab_type, d_type);
        let p = VoltaTimingParams::for_mode(mode);
        MmaTiming {
            latency: p.latency(),
            initiation_interval: p.issue_interval(),
        }
    } else {
        let mode = TuringMode::from_types(ab_type, d_type);
        let completions = turing_set_completions(shape, mode)
            .unwrap_or_else(|| panic!("unsupported Turing combination {shape} {mode:?}"));
        let latency = *completions.last().expect("non-empty");
        let first = completions[0];
        // Sets are pipelined: a following wmma.mma can begin once the last
        // set has been issued, one set-pitch after the previous set.
        let pitch = if completions.len() > 1 {
            (latency - first).div_ceil(completions.len() as u32 - 1)
        } else {
            latency
        };
        MmaTiming {
            latency,
            initiation_interval: pitch * completions.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_isa::Layout;

    #[test]
    fn volta_mixed_schedule_reproduces_fig9a() {
        assert_eq!(
            VoltaTimingParams::MIXED.completions(),
            VOLTA_MIXED_CUMULATIVE.to_vec()
        );
        assert_eq!(VoltaTimingParams::MIXED.latency(), 54);
    }

    #[test]
    fn volta_fp16_schedule_reproduces_fig9b() {
        assert_eq!(
            VoltaTimingParams::FP16.completions(),
            VOLTA_FP16_CUMULATIVE.to_vec()
        );
        assert_eq!(VoltaTimingParams::FP16.latency(), 64);
    }

    #[test]
    fn mixed_precision_is_ten_cycles_faster_than_fp16() {
        // §III-C1: "The latency of wmma.mma API in mixed precision mode is
        // ten cycles lower than in FP16 mode."
        assert_eq!(
            VoltaTimingParams::FP16.latency() - VoltaTimingParams::MIXED.latency(),
            10
        );
    }

    #[test]
    fn table1_values_match_paper() {
        assert_eq!(
            turing_set_completions(WmmaShape::M16N16K16, TuringMode::F16AccF32).unwrap(),
            vec![42, 56, 78, 99]
        );
        assert_eq!(
            turing_set_completions(WmmaShape::M32N8K16, TuringMode::F16AccF32).unwrap(),
            vec![48, 60, 81, 104]
        );
        assert_eq!(
            turing_set_completions(WmmaShape::M8N32K16, TuringMode::Int8).unwrap(),
            vec![38, 42, 46, 56]
        );
        assert_eq!(
            turing_set_completions(WmmaShape::M8N8K32, TuringMode::Int4).unwrap(),
            vec![230]
        );
        assert!(turing_set_completions(WmmaShape::M8N8K32, TuringMode::Int8).is_none());
    }

    #[test]
    fn turing_16x16x16_mixed_is_slower_than_volta() {
        // §III-C2: 99 cycles on Turing vs 54 on Volta for the same tile.
        let volta = VoltaTimingParams::MIXED.latency();
        let turing = *turing_set_completions(WmmaShape::M16N16K16, TuringMode::F16AccF32)
            .unwrap()
            .last()
            .unwrap();
        assert!(turing > volta);
        assert_eq!(turing, 99);
        assert_eq!(volta, 54);
    }

    #[test]
    fn turing_mixed_slower_than_fp16_and_int8_fastest() {
        // §III-C2 orderings for 16×16×16.
        let f32acc = turing_set_completions(WmmaShape::M16N16K16, TuringMode::F16AccF32).unwrap();
        let f16acc = turing_set_completions(WmmaShape::M16N16K16, TuringMode::F16AccF16).unwrap();
        let int8 = turing_set_completions(WmmaShape::M16N16K16, TuringMode::Int8).unwrap();
        assert!(f32acc.last() > f16acc.last());
        assert!(f16acc.last() > int8.last());
        // 4-bit has the highest latency (experimental feature).
        let int4 = turing_set_completions(WmmaShape::M8N8K32, TuringMode::Int4).unwrap();
        assert!(int4.last() > f32acc.last());
    }

    #[test]
    fn mma_timing_volta() {
        let dir = WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
        };
        let t = mma_timing(true, &dir);
        assert_eq!(t.latency, 54);
        assert_eq!(t.initiation_interval, 40); // 4 sets × 10-cycle pitch
        assert!(t.initiation_interval < t.latency);
    }

    #[test]
    fn mma_timing_turing() {
        let dir = WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::S8,
            c_type: WmmaType::S32,
            d_type: WmmaType::S32,
        };
        let t = mma_timing(false, &dir);
        assert_eq!(t.latency, 59);
        assert!(t.initiation_interval > 0);
    }

    #[test]
    fn schedules_are_strictly_increasing() {
        for p in [VoltaTimingParams::MIXED, VoltaTimingParams::FP16] {
            let c = p.completions();
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        for shape in WmmaShape::ALL {
            for mode in [
                TuringMode::F16AccF32,
                TuringMode::F16AccF16,
                TuringMode::Int8,
                TuringMode::Int4,
            ] {
                if let Some(c) = turing_set_completions(shape, mode) {
                    assert!(c.windows(2).all(|w| w[0] < w[1]), "{shape} {mode:?}");
                }
            }
        }
    }

    #[test]
    fn volta_step_schedule_matches_completions_and_cadence() {
        let sched = volta_step_schedule(MmaMode::MixedF32);
        assert_eq!(sched.len(), 16);
        let completes: Vec<u32> = sched.iter().map(|s| s.complete).collect();
        assert_eq!(completes, VOLTA_MIXED_CUMULATIVE.to_vec());
        // Issue cadence: sets every 10, steps every 2 within a set.
        assert_eq!(sched[0].issue, 0);
        assert_eq!(sched[1].issue, 2);
        assert_eq!(sched[4].issue, 10);
        assert_eq!(sched[15].issue, 36);
        assert_eq!((sched[15].set, sched[15].step), (4, 3));
        // FP16: two steps per set, 9 apart, sets every 13.
        let fp16 = volta_step_schedule(MmaMode::Fp16);
        assert_eq!(fp16.len(), 8);
        assert_eq!(fp16[1].issue, 9);
        assert_eq!(fp16[2].issue, 13);
        // Every step issues before it completes.
        for s in sched.iter().chain(fp16.iter()) {
            assert!(s.issue < s.complete, "{s:?}");
        }
    }

    #[test]
    fn turing_step_schedule_derives_pitch() {
        let sched = turing_step_schedule(WmmaShape::M16N16K16, TuringMode::Int8).unwrap();
        assert_eq!(sched.len(), 4);
        // pitch = ceil((59-40)/3) = 7.
        let issues: Vec<u32> = sched.iter().map(|s| s.issue).collect();
        assert_eq!(issues, vec![0, 7, 14, 21]);
        assert!(sched.iter().all(|s| s.step == 0));
        let int4 = turing_step_schedule(WmmaShape::M8N8K32, TuringMode::Int4).unwrap();
        assert_eq!(int4.len(), 1);
        assert_eq!(int4[0].issue, 0);
        assert!(turing_step_schedule(WmmaShape::M8N8K32, TuringMode::Int8).is_none());
    }

    #[test]
    fn mma_timing_ampere_mma_sync() {
        let mk = |shape, ab_type, sparse| WmmaDirective::MmaSync {
            shape,
            ab_type,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
            sparse,
        };
        let k8 = mma_timing(false, &mk(WmmaShape::M16N8K8, WmmaType::F16, false));
        assert_eq!((k8.latency, k8.initiation_interval), (16, 4));
        let k16 = mma_timing(false, &mk(WmmaShape::M16N8K16, WmmaType::BF16, false));
        assert_eq!((k16.latency, k16.initiation_interval), (24, 8));
        let tf32 = mma_timing(false, &mk(WmmaShape::M16N8K8, WmmaType::TF32, false));
        assert_eq!((tf32.latency, tf32.initiation_interval), (24, 8));
        let sparse = mma_timing(false, &mk(WmmaShape::M16N8K16, WmmaType::F16, true));
        assert_eq!((sparse.latency, sparse.initiation_interval), (20, 4));
        // Sparse halves the dense-k16 issue interval and shaves latency.
        assert!(sparse.latency < k16.latency);
        assert_eq!(sparse.initiation_interval, k8.initiation_interval);
    }

    #[test]
    #[should_panic(expected = "Ampere-generation")]
    fn mma_timing_rejects_mma_sync_on_volta() {
        let dir = WmmaDirective::MmaSync {
            shape: WmmaShape::M16N8K8,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
            sparse: false,
        };
        let _ = mma_timing(true, &dir);
    }

    #[test]
    fn mode_classification() {
        assert_eq!(
            TuringMode::from_types(WmmaType::F16, WmmaType::F32),
            TuringMode::F16AccF32
        );
        assert_eq!(
            TuringMode::from_types(WmmaType::U8, WmmaType::S32),
            TuringMode::Int8
        );
        assert_eq!(
            TuringMode::from_types(WmmaType::S4, WmmaType::S32),
            TuringMode::Int4
        );
    }
}
