//! Threadgroup and octet structure (§III-E, Table II, Fig 12a).
//!
//! The paper's key organizational finding on Volta: threadgroups work in
//! **pairs** called *octets* to compute 8×8 subtiles of the result. Octet
//! X = threadgroup X ∪ threadgroup X+4 (X ∈ 0..4). Because every A/B
//! element is loaded by two threadgroups, the four octets of a warp can
//! execute independently — each octet privately holds the 8×16 subtile of
//! A, the 16×8 subtile of B and the 8×8 subtile of C it needs.

use crate::mapping::{threadgroup_of_lane, FragmentMap, THREADGROUPS_PER_WARP};
use std::fmt;
use tcsim_isa::{FragmentKind, Layout, WmmaType, WARP_SIZE};

/// Number of octets in a warp.
pub const OCTETS_PER_WARP: usize = THREADGROUPS_PER_WARP / 2;

/// The octet a lane belongs to (octet X = threadgroups X and X+4).
pub const fn octet_of_lane(lane: usize) -> usize {
    threadgroup_of_lane(lane) % OCTETS_PER_WARP
}

/// The two threadgroups constituting an octet (Table II).
pub const fn threadgroups_of_octet(octet: usize) -> (usize, usize) {
    (octet, octet + 4)
}

/// An inclusive subtile range `[row_start..=row_end, col_start..=col_end]`
/// in the paper's Table II notation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubTile {
    /// First row.
    pub row_start: usize,
    /// Last row (inclusive).
    pub row_end: usize,
    /// First column.
    pub col_start: usize,
    /// Last column (inclusive).
    pub col_end: usize,
}

impl SubTile {
    /// Creates the subtile `[r0:r1, c0:c1]` (inclusive bounds).
    pub const fn new(r0: usize, r1: usize, c0: usize, c1: usize) -> SubTile {
        SubTile {
            row_start: r0,
            row_end: r1,
            col_start: c0,
            col_end: c1,
        }
    }

    /// Number of rows covered.
    pub const fn rows(&self) -> usize {
        self.row_end - self.row_start + 1
    }

    /// Number of columns covered.
    pub const fn cols(&self) -> usize {
        self.col_end - self.col_start + 1
    }

    /// Whether `(row, col)` lies inside the subtile.
    pub const fn contains(&self, row: usize, col: usize) -> bool {
        row >= self.row_start && row <= self.row_end && col >= self.col_start && col <= self.col_end
    }
}

impl fmt::Display for SubTile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}:{},{}:{}]",
            self.row_start, self.row_end, self.col_start, self.col_end
        )
    }
}

/// The operand footprint of one octet (one row of Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OctetFootprint {
    /// The octet index (0..4).
    pub octet: usize,
    /// Its two threadgroups.
    pub threadgroups: (usize, usize),
    /// Subtile of operand A the octet's threads hold.
    pub a: SubTile,
    /// Subtile of operand B the octet's threads hold.
    pub b: SubTile,
    /// Subtile of C/D the octet computes.
    pub c: SubTile,
}

/// Table II of the paper: the elements of A and B accessed by each octet on
/// Volta (m16n16k16).
pub fn octet_footprints() -> [OctetFootprint; OCTETS_PER_WARP] {
    [
        OctetFootprint {
            octet: 0,
            threadgroups: (0, 4),
            a: SubTile::new(0, 7, 0, 15),
            b: SubTile::new(0, 15, 0, 7),
            c: SubTile::new(0, 7, 0, 7),
        },
        OctetFootprint {
            octet: 1,
            threadgroups: (1, 5),
            a: SubTile::new(8, 15, 0, 15),
            b: SubTile::new(0, 15, 0, 7),
            c: SubTile::new(8, 15, 0, 7),
        },
        OctetFootprint {
            octet: 2,
            threadgroups: (2, 6),
            a: SubTile::new(0, 7, 0, 15),
            b: SubTile::new(0, 15, 8, 15),
            c: SubTile::new(0, 7, 8, 15),
        },
        OctetFootprint {
            octet: 3,
            threadgroups: (3, 7),
            a: SubTile::new(8, 15, 0, 15),
            b: SubTile::new(0, 15, 8, 15),
            c: SubTile::new(8, 15, 8, 15),
        },
    ]
}

/// Derives an octet's operand-A footprint from the Volta mapping (used to
/// cross-check Table II against the Fig 7 mapping).
pub fn derive_footprint(frag: FragmentKind, octet: usize) -> SubTile {
    let ty = if frag == FragmentKind::C {
        WmmaType::F32
    } else {
        WmmaType::F16
    };
    let map = FragmentMap::volta(frag, ty, Layout::Row);
    let (tg_a, tg_b) = threadgroups_of_octet(octet);
    let mut rmin = usize::MAX;
    let mut rmax = 0;
    let mut cmin = usize::MAX;
    let mut cmax = 0;
    for lane in 0..WARP_SIZE {
        let tg = threadgroup_of_lane(lane);
        if tg != tg_a && tg != tg_b {
            continue;
        }
        for &(r, c) in map.lane_elems(lane) {
            rmin = rmin.min(r as usize);
            rmax = rmax.max(r as usize);
            cmin = cmin.min(c as usize);
            cmax = cmax.max(c as usize);
        }
    }
    SubTile::new(rmin, rmax, cmin, cmax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_of_lane_pairs_threadgroups_x_and_x_plus_4() {
        assert_eq!(octet_of_lane(0), 0); // TG0
        assert_eq!(octet_of_lane(16), 0); // TG4
        assert_eq!(octet_of_lane(4), 1); // TG1
        assert_eq!(octet_of_lane(20), 1); // TG5
        assert_eq!(octet_of_lane(12), 3); // TG3
        assert_eq!(octet_of_lane(28), 3); // TG7
        assert_eq!(threadgroups_of_octet(2), (2, 6));
    }

    #[test]
    fn table2_footprints_match_paper() {
        let fp = octet_footprints();
        assert_eq!(fp[0].a, SubTile::new(0, 7, 0, 15));
        assert_eq!(fp[0].b, SubTile::new(0, 15, 0, 7));
        assert_eq!(fp[1].a, SubTile::new(8, 15, 0, 15));
        assert_eq!(fp[2].b, SubTile::new(0, 15, 8, 15));
        assert_eq!(fp[3].a, SubTile::new(8, 15, 0, 15));
        assert_eq!(fp[3].b, SubTile::new(0, 15, 8, 15));
    }

    #[test]
    fn table2_is_consistent_with_fig7_mapping() {
        // The A/B/C footprints derived from the Fig 7 mapping must equal
        // Table II exactly.
        for fp in octet_footprints() {
            assert_eq!(
                derive_footprint(FragmentKind::A, fp.octet),
                fp.a,
                "A octet {}",
                fp.octet
            );
            assert_eq!(
                derive_footprint(FragmentKind::B, fp.octet),
                fp.b,
                "B octet {}",
                fp.octet
            );
            assert_eq!(
                derive_footprint(FragmentKind::C, fp.octet),
                fp.c,
                "C octet {}",
                fp.octet
            );
        }
    }

    #[test]
    fn octet_c_tiles_partition_the_result() {
        // The four octets' 8×8 C subtiles tile the 16×16 result exactly.
        let fps = octet_footprints();
        for r in 0..16 {
            for c in 0..16 {
                let n = fps.iter().filter(|fp| fp.c.contains(r, c)).count();
                assert_eq!(n, 1, "({r},{c})");
            }
        }
    }

    #[test]
    fn octet_works_independently() {
        // Independence (§III-E): the octet's held A and B subtiles suffice
        // to compute its C subtile: C[r,c] needs row r of A and col c of B.
        for fp in octet_footprints() {
            for r in fp.c.row_start..=fp.c.row_end {
                assert!(fp.a.row_start <= r && r <= fp.a.row_end);
            }
            for c in fp.c.col_start..=fp.c.col_end {
                assert!(fp.b.col_start <= c && c <= fp.b.col_end);
            }
            // Full reduction dimension held.
            assert_eq!(fp.a.cols(), 16);
            assert_eq!(fp.b.rows(), 16);
        }
    }

    #[test]
    fn subtile_geometry() {
        let s = SubTile::new(8, 15, 0, 7);
        assert_eq!(s.rows(), 8);
        assert_eq!(s.cols(), 8);
        assert!(s.contains(8, 0));
        assert!(!s.contains(7, 0));
        assert_eq!(s.to_string(), "[8:15,0:7]");
    }
}
