//! A cycle-accurate tensor-core pipe: processes a stream of `wmma.mma`
//! operations as their individual HMMA instructions and emits a
//! per-HMMA event trace (§IV's microarchitecture animated).
//!
//! The [`timing`](crate::timing) module provides the *schedule* of one
//! `wmma.mma` (Fig 9 / Table I); this module sequences many of them
//! through the warp's tensor-core pair, enforcing the structural rules
//! the paper's measurements imply:
//!
//! * HMMA sets issue one set-pitch apart (operand-buffer turnaround of
//!   Fig 13);
//! * a following `wmma.mma` from the same warp may begin its SET 1 as
//!   soon as the previous instruction's SET 4 has issued — so back-to-back
//!   MMAs sustain one instruction per initiation interval, while a
//!   dependent consumer still waits for the full latency;
//! * the FEDP pipeline depth separates a step's issue from its
//!   completion.
//!
//! The trace regenerates Fig 9 exactly for a single instruction and
//! exposes the steady-state initiation interval the SM timing model uses.

use crate::hmma::MmaMode;
use crate::timing::{turing_step_schedule, volta_step_schedule, TuringMode, VoltaTimingParams};

/// One HMMA instruction's lifetime in the pipe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HmmaEvent {
    /// Index of the `wmma.mma` this HMMA belongs to (enqueue order).
    pub mma_index: usize,
    /// Set number, 1-based (paper notation).
    pub set: usize,
    /// Step within the set, 0-based; always 0 on Turing (steps are
    /// sequenced by an internal state machine, §III-D2).
    pub step: usize,
    /// Cycle the HMMA issues into the FEDP arrays.
    pub issue: u64,
    /// Cycle its results are architecturally complete.
    pub complete: u64,
}

/// A warp's tensor-core pair, sequencing HMMA streams.
#[derive(Clone, Debug)]
pub struct TensorCorePipe {
    volta: bool,
    /// Cycle at which the next SET may begin (operand-buffer turnaround).
    next_set_slot: u64,
    mmas_enqueued: usize,
    events: Vec<HmmaEvent>,
}

impl TensorCorePipe {
    /// A Volta (Titan V) pipe.
    pub fn volta() -> TensorCorePipe {
        TensorCorePipe {
            volta: true,
            next_set_slot: 0,
            mmas_enqueued: 0,
            events: Vec::new(),
        }
    }

    /// A Turing (RTX 2080) pipe.
    pub fn turing() -> TensorCorePipe {
        TensorCorePipe {
            volta: false,
            next_set_slot: 0,
            mmas_enqueued: 0,
            events: Vec::new(),
        }
    }

    /// Enqueues one Volta `wmma.mma` at cycle `at` (its operands are
    /// assumed collected). Returns the HMMA events it generated.
    ///
    /// # Panics
    ///
    /// Panics if the pipe is a Turing pipe.
    pub fn enqueue_volta(&mut self, mode: MmaMode, at: u64) -> Vec<HmmaEvent> {
        assert!(self.volta, "Volta enqueue on a Turing pipe");
        let start = at.max(self.next_set_slot);
        let mma_index = self.mmas_enqueued;
        self.mmas_enqueued += 1;
        let sched = volta_step_schedule(mode);
        let out: Vec<HmmaEvent> = sched
            .iter()
            .map(|s| HmmaEvent {
                mma_index,
                set: s.set as usize,
                step: s.step as usize,
                issue: start + s.issue as u64,
                complete: start + s.complete as u64,
            })
            .collect();
        // The next instruction's SET 1 may start one pitch after this
        // instruction's SET 4 started.
        self.next_set_slot = start + VoltaTimingParams::for_mode(mode).issue_interval() as u64;
        self.events.extend(out.iter().copied());
        out
    }

    /// Enqueues one Turing `wmma.mma` at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if the pipe is a Volta pipe or the combination is not in
    /// Table I.
    pub fn enqueue_turing(
        &mut self,
        shape: tcsim_isa::WmmaShape,
        mode: TuringMode,
        at: u64,
    ) -> Vec<HmmaEvent> {
        assert!(!self.volta, "Turing enqueue on a Volta pipe");
        let sched = turing_step_schedule(shape, mode)
            .unwrap_or_else(|| panic!("unsupported Turing combination {shape} {mode:?}"));
        let start = at.max(self.next_set_slot);
        let n = sched.len() as u64;
        // Pitch between set issues; for a single-HMMA mode (4-bit) the
        // pipe is busy for the instruction's whole latency.
        let pitch = if n > 1 {
            (sched[1].issue - sched[0].issue) as u64
        } else {
            sched[0].complete as u64
        };
        let mma_index = self.mmas_enqueued;
        self.mmas_enqueued += 1;
        let out: Vec<HmmaEvent> = sched
            .iter()
            .map(|s| HmmaEvent {
                mma_index,
                set: s.set as usize,
                step: s.step as usize,
                issue: start + s.issue as u64,
                complete: start + s.complete as u64,
            })
            .collect();
        self.next_set_slot = start + pitch * n;
        self.events.extend(out.iter().copied());
        out
    }

    /// All events observed so far, in issue order.
    pub fn events(&self) -> &[HmmaEvent] {
        &self.events
    }

    /// Cycle at which the next enqueued instruction could start.
    pub fn next_free(&self) -> u64 {
        self.next_set_slot
    }

    /// Completion cycle of the last enqueued instruction (0 if none).
    pub fn last_completion(&self) -> u64 {
        self.events.iter().map(|e| e.complete).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{VOLTA_FP16_CUMULATIVE, VOLTA_MIXED_CUMULATIVE};
    use tcsim_isa::WmmaShape;

    #[test]
    fn single_mixed_mma_reproduces_fig9a() {
        let mut pipe = TensorCorePipe::volta();
        let ev = pipe.enqueue_volta(MmaMode::MixedF32, 0);
        assert_eq!(ev.len(), 16);
        let completes: Vec<u64> = ev.iter().map(|e| e.complete).collect();
        assert_eq!(completes, VOLTA_MIXED_CUMULATIVE.map(u64::from).to_vec());
        // Sets are labeled 1..=4, four steps each.
        assert_eq!(ev[0].set, 1);
        assert_eq!(ev[15].set, 4);
        assert_eq!(ev[15].step, 3);
    }

    #[test]
    fn single_fp16_mma_reproduces_fig9b() {
        let mut pipe = TensorCorePipe::volta();
        let ev = pipe.enqueue_volta(MmaMode::Fp16, 10);
        let completes: Vec<u64> = ev.iter().map(|e| e.complete - 10).collect();
        assert_eq!(completes, VOLTA_FP16_CUMULATIVE.map(u64::from).to_vec());
    }

    #[test]
    fn issues_precede_completions_and_are_monotone() {
        let mut pipe = TensorCorePipe::volta();
        for i in 0..4 {
            pipe.enqueue_volta(MmaMode::MixedF32, i * 5);
        }
        let evs = pipe.events();
        for e in evs {
            assert!(e.issue < e.complete, "{e:?}");
        }
        for w in evs.windows(2) {
            assert!(w[0].issue <= w[1].issue, "issue order: {w:?}");
        }
    }

    #[test]
    fn back_to_back_mmas_sustain_the_initiation_interval() {
        let mut pipe = TensorCorePipe::volta();
        let n = 8;
        for _ in 0..n {
            pipe.enqueue_volta(MmaMode::MixedF32, 0);
        }
        let ii = VoltaTimingParams::MIXED.issue_interval() as u64;
        // k-th instruction's first set issues at k·II.
        for k in 0..n {
            let first = pipe
                .events()
                .iter()
                .find(|e| e.mma_index == k && e.set == 1 && e.step == 0)
                .expect("event exists");
            assert_eq!(first.issue, k as u64 * ii);
        }
        // Steady-state throughput: one mma per II, far below the 54-cycle
        // latency times n.
        assert_eq!(pipe.next_free(), n as u64 * ii);
        assert!(pipe.last_completion() < n as u64 * 54);
    }

    #[test]
    fn idle_gaps_are_respected() {
        let mut pipe = TensorCorePipe::volta();
        pipe.enqueue_volta(MmaMode::MixedF32, 0);
        // Enqueue long after the pipe drained: starts at the requested time.
        let ev = pipe.enqueue_volta(MmaMode::MixedF32, 1000);
        assert_eq!(ev[0].complete, 1010);
    }

    #[test]
    fn no_two_sets_issue_in_the_same_slot() {
        let mut pipe = TensorCorePipe::volta();
        for _ in 0..4 {
            pipe.enqueue_volta(MmaMode::Fp16, 0);
        }
        let mut set_issues: Vec<u64> = pipe
            .events()
            .iter()
            .filter(|e| e.step == 0)
            .map(|e| e.issue)
            .collect();
        let before = set_issues.len();
        set_issues.sort_unstable();
        set_issues.dedup();
        assert_eq!(set_issues.len(), before, "set issue slots must be unique");
    }

    #[test]
    fn turing_sets_match_table1() {
        let mut pipe = TensorCorePipe::turing();
        let ev = pipe.enqueue_turing(WmmaShape::M16N16K16, TuringMode::Int8, 0);
        let completes: Vec<u64> = ev.iter().map(|e| e.complete).collect();
        assert_eq!(completes, vec![40, 44, 47, 59]);
        // 4-bit mode: a single HMMA.
        let mut pipe = TensorCorePipe::turing();
        let ev = pipe.enqueue_turing(WmmaShape::M8N8K32, TuringMode::Int4, 0);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].complete, 230);
    }

    #[test]
    #[should_panic(expected = "Turing enqueue on a Volta pipe")]
    fn arch_mismatch_panics() {
        let mut pipe = TensorCorePipe::volta();
        let _ = pipe.enqueue_turing(WmmaShape::M16N16K16, TuringMode::Int8, 0);
    }
}
