//! Functional model of the `wmma.{load,mma,store}` PTX instructions
//! (§V-A): the [`WmmaHandler`] implementation plugged into the warp
//! executor of `tcsim-isa`.
//!
//! * `wmma.load` distributes operand-matrix elements to per-thread
//!   fragment registers following the Fig 7 (Volta) / Fig 8 (Turing)
//!   mapping, and reports the same decomposed memory accesses the paper
//!   observed at the SASS level (§III-C).
//! * `wmma.mma` gathers the A/B/C tiles from the fragments, performs the
//!   matrix-multiply-accumulate with FEDP numerics, and scatters D back.
//! * `wmma.store` writes the D fragment to memory.
//!
//! All 32 Volta configurations (2 A layouts × 2 B layouts × 2 C types ×
//! 2 D types × 2 store layouts) and the Turing integer modes/tile shapes
//! are supported.

use crate::hmma::{expand_sparse_a, mma_reference};
use crate::mapping::FragmentMap;
use crate::tile::Tile;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use tcsim_isa::exec::{MemAccess, WmmaHandler};
use tcsim_isa::{
    mma_sync_a_shape, ByteMemory, FragmentKind, Layout, Reg, WarpRegisters, WmmaDirective,
    WmmaShape, WmmaType, WARP_SIZE,
};

type MapKey = (bool, FragmentKind, WmmaShape, WmmaType, Layout);
type LaneRuns = Vec<Vec<(u64, u8)>>;

// Thread-safety invariant (parallel sweep engine): these caches are
// `thread_local!`, so each sweep worker thread builds and consults its own
// private copy. Both caches memoize *pure* functions of their keys — a
// `FragmentMap` depends only on (arch, fragment, shape, type, layout) and
// the access runs additionally only on the stride — so per-worker copies
// are always mutually consistent and simulation results cannot depend on
// which thread executed a launch. The `Rc` values never cross threads
// (the cache and every handle into it live and die on one worker), which
// is what keeps this sound without `Arc`.
thread_local! {
    /// Fragment mappings are pure functions of their qualifiers and are
    /// consulted on every executed wmma instruction; memoize them.
    static MAP_CACHE: RefCell<HashMap<MapKey, Rc<FragmentMap>>> =
        RefCell::new(HashMap::new());
    /// Per-lane access runs additionally depend on the leading-dimension
    /// stride (one or two distinct strides per kernel); memoize those too.
    static ACCESS_CACHE: RefCell<HashMap<(MapKey, usize), Rc<LaneRuns>>> =
        RefCell::new(HashMap::new());
}

fn cached_accesses(volta: bool, map: &FragmentMap, stride: usize) -> Rc<LaneRuns> {
    ACCESS_CACHE.with(|c| {
        Rc::clone(
            c.borrow_mut()
                .entry((
                    (volta, map.frag(), map.shape(), map.ty(), map.layout()),
                    stride,
                ))
                .or_insert_with(|| {
                    Rc::new(
                        (0..WARP_SIZE)
                            .map(|lane| map.lane_accesses(lane, stride))
                            .collect(),
                    )
                }),
        )
    })
}

fn cached_map(
    volta: bool,
    frag: FragmentKind,
    shape: WmmaShape,
    ty: WmmaType,
    layout: Layout,
) -> Rc<FragmentMap> {
    MAP_CACHE.with(|c| {
        Rc::clone(
            c.borrow_mut()
                .entry((volta, frag, shape, ty, layout))
                .or_insert_with(|| Rc::new(FragmentMap::for_arch(volta, frag, shape, ty, layout))),
        )
    })
}

/// The tensor-core functional model for one architecture generation.
///
/// # Example
///
/// ```
/// use tcsim_core::TensorCoreModel;
///
/// let volta = TensorCoreModel::volta();
/// assert!(volta.is_volta());
/// let turing = TensorCoreModel::turing();
/// assert!(!turing.is_volta());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TensorCoreModel {
    volta: bool,
}

impl TensorCoreModel {
    /// The Volta (Titan V) model: double-loaded A/B fragments, m16n16k16
    /// FP16/mixed modes only.
    pub const fn volta() -> TensorCoreModel {
        TensorCoreModel { volta: true }
    }

    /// The Turing (RTX 2080) model: single-loaded fragments, integer modes
    /// and the additional tile shapes.
    pub const fn turing() -> TensorCoreModel {
        TensorCoreModel { volta: false }
    }

    /// The Ampere (A100-class) model: identical fragment handling to
    /// Turing for the warp-scope WMMA modes, plus the per-instruction
    /// `mma.sync` tiles — the `m16n8kN` shapes route to the Ampere PTX
    /// fragment mappings automatically.
    pub const fn ampere() -> TensorCoreModel {
        TensorCoreModel { volta: false }
    }

    /// Whether this is the Volta model.
    pub const fn is_volta(&self) -> bool {
        self.volta
    }
}

/// Reads the 2:4 sparsity metadata for all 16 A rows out of the warp's
/// registers.
///
/// Following the PTX sparse-operand convention, thread 0 of each quad
/// (lane `4g`) contributes its 32-bit metadata register: the low half
/// selects for row `g`, the high half for row `g + 8`. The other lanes'
/// metadata registers are ignored (hardware requires them to replicate
/// the quad leader's value).
pub fn read_sparse_meta(regs: &dyn WarpRegisters, mreg: Reg) -> [u16; 16] {
    let mut row_meta = [0u16; 16];
    for g in 0..8 {
        let word = regs.read(4 * g, mreg);
        row_meta[g] = word as u16;
        row_meta[g + 8] = (word >> 16) as u16;
    }
    row_meta
}

/// Reads fragment slot `slot` of `lane` (element width `bits` ≤ 32).
pub fn read_frag_elem(
    regs: &dyn WarpRegisters,
    lane: usize,
    base: Reg,
    slot: usize,
    bits: usize,
) -> u32 {
    let bitpos = slot * bits;
    let reg = Reg(base.0 + (bitpos / 32) as u16);
    let off = bitpos % 32;
    let mask = if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    (regs.read(lane, reg) >> off) & mask
}

/// Writes fragment slot `slot` of `lane`.
pub fn write_frag_elem(
    regs: &mut dyn WarpRegisters,
    lane: usize,
    base: Reg,
    slot: usize,
    bits: usize,
    value: u32,
) {
    let bitpos = slot * bits;
    let reg = Reg(base.0 + (bitpos / 32) as u16);
    let off = bitpos % 32;
    let mask = if bits >= 32 {
        u32::MAX
    } else {
        ((1u32 << bits) - 1) << off
    };
    let old = regs.read(lane, reg);
    regs.write(lane, reg, (old & !mask) | ((value << off) & mask));
}

/// Reads tile element `(row, col)` from memory given the tile `base`
/// address, `stride` (leading dimension in elements) and `layout`.
fn read_mem_elem(
    mem: &dyn ByteMemory,
    base: u64,
    row: usize,
    col: usize,
    stride: usize,
    layout: Layout,
    ty: WmmaType,
) -> u32 {
    let linear = match layout {
        Layout::Row => row * stride + col,
        Layout::Col => col * stride + row,
    };
    match ty.bits() {
        4 => {
            let byte = mem.read_u8(base + (linear / 2) as u64);
            if linear % 2 == 0 {
                (byte & 0xF) as u32
            } else {
                (byte >> 4) as u32
            }
        }
        8 => mem.read_u8(base + linear as u64) as u32,
        16 => mem.read_u16(base + (linear * 2) as u64) as u32,
        _ => mem.read_u32(base + (linear * 4) as u64),
    }
}

/// Writes tile element `(row, col)` to memory.
#[allow(clippy::too_many_arguments)]
fn write_mem_elem(
    mem: &mut dyn ByteMemory,
    base: u64,
    row: usize,
    col: usize,
    stride: usize,
    layout: Layout,
    ty: WmmaType,
    value: u32,
) {
    let linear = match layout {
        Layout::Row => row * stride + col,
        Layout::Col => col * stride + row,
    };
    match ty.bits() {
        4 => {
            let addr = base + (linear / 2) as u64;
            let old = mem.read_u8(addr);
            let new = if linear % 2 == 0 {
                (old & 0xF0) | (value as u8 & 0x0F)
            } else {
                (old & 0x0F) | ((value as u8 & 0x0F) << 4)
            };
            mem.write_u8(addr, new);
        }
        8 => mem.write_u8(base + linear as u64, value as u8),
        16 => mem.write_u16(base + (linear * 2) as u64, value as u16),
        _ => mem.write_u32(base + (linear * 4) as u64, value),
    }
}

/// Gathers a whole tile from a warp's fragment registers using the
/// element mapping (inverse of `scatter_tile`).
pub fn gather_tile(
    model: &TensorCoreModel,
    map: &FragmentMap,
    base: Reg,
    regs: &dyn WarpRegisters,
) -> Tile {
    let _ = model;
    let (rows, cols) = map.frag().dims(map.shape());
    let mut t = Tile::new(map.ty(), rows, cols);
    let bits = map.ty().bits();
    let mask = elem_mask(bits);
    for lane in 0..WARP_SIZE {
        let elems = map.lane_elems(lane);
        if let Some(words) = whole_words(elems.len(), bits) {
            // Hot path: the fragment tiles its registers exactly, so one
            // read per register replaces one virtual read per element.
            let mut buf = [0u32; MAX_FRAG_WORDS];
            for (w, slot) in buf.iter_mut().take(words).enumerate() {
                *slot = regs.read(lane, Reg(base.0 + w as u16));
            }
            for (slot, &(r, c)) in elems.iter().enumerate() {
                let bitpos = slot * bits;
                // On Volta, A/B elements appear twice; both copies hold
                // the same value, so later writes are idempotent.
                t.set_bits(
                    r as usize,
                    c as usize,
                    (buf[bitpos / 32] >> (bitpos % 32)) & mask,
                );
            }
        } else {
            for (slot, &(r, c)) in elems.iter().enumerate() {
                let v = read_frag_elem(regs, lane, base, slot, bits);
                t.set_bits(r as usize, c as usize, v);
            }
        }
    }
    t
}

/// Upper bound on fragment registers per thread (C/D in FP32: 8 elements
/// × 32 bits).
const MAX_FRAG_WORDS: usize = 16;

/// Number of whole registers a fragment of `n` elements × `bits` covers,
/// or `None` when the fragment does not tile its registers exactly (the
/// per-element fallback handles that).
#[inline]
fn whole_words(n: usize, bits: usize) -> Option<usize> {
    let total = n * bits;
    if total > 0 && total.is_multiple_of(32) && total / 32 <= MAX_FRAG_WORDS {
        Some(total / 32)
    } else {
        None
    }
}

#[inline]
fn elem_mask(bits: usize) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

/// Scatters a whole tile into a warp's fragment registers.
pub fn scatter_tile(map: &FragmentMap, base: Reg, tile: &Tile, regs: &mut dyn WarpRegisters) {
    let bits = map.ty().bits();
    let mask = elem_mask(bits);
    for lane in 0..WARP_SIZE {
        let elems = map.lane_elems(lane);
        if let Some(words) = whole_words(elems.len(), bits) {
            // The slots tile the registers exactly, so composing them in
            // a buffer and writing each register once produces the same
            // final bits as the per-element read-modify-write chain.
            let mut buf = [0u32; MAX_FRAG_WORDS];
            for (slot, &(r, c)) in elems.iter().enumerate() {
                let bitpos = slot * bits;
                buf[bitpos / 32] |= (tile.get_bits(r as usize, c as usize) & mask) << (bitpos % 32);
            }
            for (w, &word) in buf.iter().take(words).enumerate() {
                regs.write(lane, Reg(base.0 + w as u16), word);
            }
        } else {
            for (slot, &(r, c)) in elems.iter().enumerate() {
                write_frag_elem(
                    regs,
                    lane,
                    base,
                    slot,
                    bits,
                    tile.get_bits(r as usize, c as usize),
                );
            }
        }
    }
}

impl WmmaHandler for TensorCoreModel {
    fn wmma_load(
        &self,
        dir: &WmmaDirective,
        dst: Reg,
        base: u64,
        stride: usize,
        mem: &dyn ByteMemory,
        regs: &mut dyn WarpRegisters,
    ) -> Vec<MemAccess> {
        let WmmaDirective::Load {
            frag,
            shape,
            layout,
            ty,
        } = *dir
        else {
            panic!("wmma_load requires a Load directive")
        };
        let map = cached_map(self.volta, frag, shape, ty, layout);
        let runs = cached_accesses(self.volta, &map, stride);
        let bits = ty.bits();
        let mask = elem_mask(bits);
        let mut accesses = Vec::new();
        for lane in 0..WARP_SIZE {
            let elems = map.lane_elems(lane);
            if let Some(words) = whole_words(elems.len(), bits) {
                let mut buf = [0u32; MAX_FRAG_WORDS];
                for (slot, &(r, c)) in elems.iter().enumerate() {
                    let v = read_mem_elem(mem, base, r as usize, c as usize, stride, layout, ty);
                    let bitpos = slot * bits;
                    buf[bitpos / 32] |= (v & mask) << (bitpos % 32);
                }
                for (w, &word) in buf.iter().take(words).enumerate() {
                    regs.write(lane, Reg(dst.0 + w as u16), word);
                }
            } else {
                for (slot, &(r, c)) in elems.iter().enumerate() {
                    let v = read_mem_elem(mem, base, r as usize, c as usize, stride, layout, ty);
                    write_frag_elem(regs, lane, dst, slot, bits, v);
                }
            }
            for &(off, bytes) in &runs[lane] {
                accesses.push(MemAccess {
                    lane: lane as u8,
                    addr: base + off,
                    bytes,
                });
            }
        }
        accesses
    }

    fn wmma_mma(
        &self,
        dir: &WmmaDirective,
        d: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
        regs: &mut dyn WarpRegisters,
    ) {
        let WmmaDirective::Mma {
            shape,
            a_layout,
            b_layout,
            ab_type,
            d_type,
            c_type,
        } = *dir
        else {
            panic!("wmma_mma requires an Mma directive")
        };
        let amap = cached_map(self.volta, FragmentKind::A, shape, ab_type, a_layout);
        let bmap = cached_map(self.volta, FragmentKind::B, shape, ab_type, b_layout);
        // The accumulator distribution is layout-independent (§III-B1).
        let cmap = cached_map(self.volta, FragmentKind::C, shape, c_type, Layout::Row);
        let dmap = cached_map(self.volta, FragmentKind::D, shape, d_type, Layout::Row);
        let at = gather_tile(self, &amap, a, regs);
        let bt = gather_tile(self, &bmap, b, regs);
        let ct = gather_tile(self, &cmap, c, regs);
        let dt = mma_reference(&at, &bt, &ct, d_type);
        scatter_tile(&dmap, d, &dt, regs);
    }

    fn mma_sync(
        &self,
        dir: &WmmaDirective,
        d: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
        meta: Option<Reg>,
        regs: &mut dyn WarpRegisters,
    ) {
        let WmmaDirective::MmaSync {
            shape,
            ab_type,
            c_type,
            d_type,
            sparse,
        } = *dir
        else {
            panic!("mma_sync requires an MmaSync directive")
        };
        assert!(
            !self.volta,
            "mma.sync requires an Ampere-generation tensor core"
        );
        // mma.sync operand layouts are fixed (A row-major, B col-major);
        // the stored layout qualifier does not change the mapping.
        let a_shape = mma_sync_a_shape(shape, sparse);
        let amap = cached_map(self.volta, FragmentKind::A, a_shape, ab_type, Layout::Row);
        let bmap = cached_map(self.volta, FragmentKind::B, shape, ab_type, Layout::Col);
        let cmap = cached_map(self.volta, FragmentKind::C, shape, c_type, Layout::Row);
        let dmap = cached_map(self.volta, FragmentKind::D, shape, d_type, Layout::Row);
        let at = gather_tile(self, &amap, a, regs);
        let bt = gather_tile(self, &bmap, b, regs);
        let ct = gather_tile(self, &cmap, c, regs);
        let at = if sparse {
            let mreg = meta.expect("sparse mma.sync requires a metadata register");
            expand_sparse_a(&at, &read_sparse_meta(regs, mreg))
        } else {
            at
        };
        let dt = mma_reference(&at, &bt, &ct, d_type);
        scatter_tile(&dmap, d, &dt, regs);
    }

    fn wmma_store(
        &self,
        dir: &WmmaDirective,
        src: Reg,
        base: u64,
        stride: usize,
        mem: &mut dyn ByteMemory,
        regs: &dyn WarpRegisters,
    ) -> Vec<MemAccess> {
        let WmmaDirective::Store { shape, layout, ty } = *dir else {
            panic!("wmma_store requires a Store directive")
        };
        let map = cached_map(self.volta, FragmentKind::D, shape, ty, layout);
        let runs = cached_accesses(self.volta, &map, stride);
        let bits = ty.bits();
        let mask = elem_mask(bits);
        let mut accesses = Vec::new();
        for lane in 0..WARP_SIZE {
            let elems = map.lane_elems(lane);
            if let Some(words) = whole_words(elems.len(), bits) {
                let mut buf = [0u32; MAX_FRAG_WORDS];
                for (w, slot) in buf.iter_mut().take(words).enumerate() {
                    *slot = regs.read(lane, Reg(src.0 + w as u16));
                }
                for (slot, &(r, c)) in elems.iter().enumerate() {
                    let bitpos = slot * bits;
                    let v = (buf[bitpos / 32] >> (bitpos % 32)) & mask;
                    write_mem_elem(mem, base, r as usize, c as usize, stride, layout, ty, v);
                }
            } else {
                for (slot, &(r, c)) in elems.iter().enumerate() {
                    let v = read_frag_elem(regs, lane, src, slot, bits);
                    write_mem_elem(mem, base, r as usize, c as usize, stride, layout, ty, v);
                }
            }
            for &(off, bytes) in &runs[lane] {
                accesses.push(MemAccess {
                    lane: lane as u8,
                    addr: base + off,
                    bytes,
                });
            }
        }
        accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_f16::F16;
    use tcsim_isa::{VecMemory, WarpRegFile, WmmaShape};

    /// Writes a row-major f16 16×16 matrix with value(r,c) = r*16+c.
    fn seed_f16_matrix(mem: &mut VecMemory, base: u64, rows: usize, cols: usize, layout: Layout) {
        for r in 0..rows {
            for c in 0..cols {
                let v = F16::from_f32((r * cols + c) as f32 % 512.0);
                let linear = match layout {
                    Layout::Row => r * cols + c,
                    Layout::Col => c * rows + r,
                };
                mem.write_u16(base + (linear * 2) as u64, v.to_bits());
            }
        }
    }

    #[test]
    fn load_then_gather_reconstructs_matrix_all_layouts() {
        for volta in [true, false] {
            for layout in [Layout::Row, Layout::Col] {
                let model = if volta {
                    TensorCoreModel::volta()
                } else {
                    TensorCoreModel::turing()
                };
                let dir = WmmaDirective::Load {
                    frag: FragmentKind::A,
                    shape: WmmaShape::M16N16K16,
                    layout,
                    ty: WmmaType::F16,
                };
                let mut mem = VecMemory::new();
                seed_f16_matrix(&mut mem, 64, 16, 16, layout);
                let mut regs = WarpRegFile::new(16);
                let acc = model.wmma_load(&dir, Reg(0), 64, 16, &mem, &mut regs);
                assert!(!acc.is_empty());
                let map = FragmentMap::for_arch(
                    volta,
                    FragmentKind::A,
                    WmmaShape::M16N16K16,
                    WmmaType::F16,
                    layout,
                );
                let tile = gather_tile(&model, &map, Reg(0), &regs);
                for r in 0..16 {
                    for c in 0..16 {
                        assert_eq!(
                            tile.get_f16(r, c).to_f32(),
                            (r * 16 + c) as f32,
                            "volta={volta} {layout} ({r},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn volta_load_access_counts_match_sass_decomposition() {
        let model = TensorCoreModel::volta();
        let mut mem = VecMemory::new();
        seed_f16_matrix(&mut mem, 0, 16, 16, Layout::Row);
        let mut regs = WarpRegFile::new(16);
        // Row-major A: 2 × LD.E.128 per thread = 64 accesses.
        let acc = model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::A,
                shape: WmmaShape::M16N16K16,
                layout: Layout::Row,
                ty: WmmaType::F16,
            },
            Reg(0),
            0,
            16,
            &mem,
            &mut regs,
        );
        assert_eq!(acc.len(), 64);
        assert!(acc.iter().all(|a| a.bytes == 16));
        // Column-major A: 4 × LD.E.64 per thread = 128 accesses.
        let acc = model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::A,
                shape: WmmaShape::M16N16K16,
                layout: Layout::Col,
                ty: WmmaType::F16,
            },
            Reg(0),
            0,
            16,
            &mem,
            &mut regs,
        );
        assert_eq!(acc.len(), 128);
        assert!(acc.iter().all(|a| a.bytes == 8));
        // C in FP32: 8 × 32-bit per thread = 256 accesses.
        let acc = model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::C,
                shape: WmmaShape::M16N16K16,
                layout: Layout::Row,
                ty: WmmaType::F32,
            },
            Reg(8),
            0,
            16,
            &mem,
            &mut regs,
        );
        assert_eq!(acc.len(), 256);
        assert!(acc.iter().all(|a| a.bytes == 4));
    }

    #[test]
    fn full_mma_pipeline_matches_cpu_reference() {
        // load A, B, C → mma → store D, compare against a plain matmul.
        for volta in [true, false] {
            let model = if volta {
                TensorCoreModel::volta()
            } else {
                TensorCoreModel::turing()
            };
            let shape = WmmaShape::M16N16K16;
            let mut mem = VecMemory::new();
            let (a_base, b_base, c_base, d_base) = (0u64, 0x1000u64, 0x2000u64, 0x3000u64);
            // A(r,c) = (r+2c) % 9 - 4 ; B = (3r+c) % 7 - 3 ; C = r - c.
            for r in 0..16usize {
                for c in 0..16usize {
                    let av = F16::from_f32(((r + 2 * c) % 9) as f32 - 4.0);
                    let bv = F16::from_f32(((3 * r + c) % 7) as f32 - 3.0);
                    mem.write_u16(a_base + (r * 16 + c) as u64 * 2, av.to_bits());
                    mem.write_u16(b_base + (r * 16 + c) as u64 * 2, bv.to_bits());
                    mem.write_u32(
                        c_base + (r * 16 + c) as u64 * 4,
                        ((r as f32) - (c as f32)).to_bits(),
                    );
                }
            }
            let mut regs = WarpRegFile::new(64);
            let (ra, rb, rc, rd) = (Reg(0), Reg(8), Reg(16), Reg(24));
            model.wmma_load(
                &WmmaDirective::Load {
                    frag: FragmentKind::A,
                    shape,
                    layout: Layout::Row,
                    ty: WmmaType::F16,
                },
                ra,
                a_base,
                16,
                &mem,
                &mut regs,
            );
            model.wmma_load(
                &WmmaDirective::Load {
                    frag: FragmentKind::B,
                    shape,
                    layout: Layout::Row,
                    ty: WmmaType::F16,
                },
                rb,
                b_base,
                16,
                &mem,
                &mut regs,
            );
            model.wmma_load(
                &WmmaDirective::Load {
                    frag: FragmentKind::C,
                    shape,
                    layout: Layout::Row,
                    ty: WmmaType::F32,
                },
                rc,
                c_base,
                16,
                &mem,
                &mut regs,
            );
            model.wmma_mma(
                &WmmaDirective::Mma {
                    shape,
                    a_layout: Layout::Row,
                    b_layout: Layout::Row,
                    ab_type: WmmaType::F16,
                    c_type: WmmaType::F32,
                    d_type: WmmaType::F32,
                },
                rd,
                ra,
                rb,
                rc,
                &mut regs,
            );
            model.wmma_store(
                &WmmaDirective::Store {
                    shape,
                    layout: Layout::Row,
                    ty: WmmaType::F32,
                },
                rd,
                d_base,
                16,
                &mut mem,
                &regs,
            );
            for r in 0..16usize {
                for c in 0..16usize {
                    let mut expect = (r as f32) - (c as f32);
                    for k in 0..16usize {
                        let av = ((r + 2 * k) % 9) as f32 - 4.0;
                        let bv = ((3 * k + c) % 7) as f32 - 3.0;
                        expect += av * bv;
                    }
                    let got = f32::from_bits(mem.read_u32(d_base + (r * 16 + c) as u64 * 4));
                    assert_eq!(got, expect, "volta={volta} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn mixed_layout_mma_handles_transposed_operands() {
        // A column-major, B column-major: fragment contents differ but the
        // mathematical result must be identical.
        let model = TensorCoreModel::volta();
        let shape = WmmaShape::M16N16K16;
        let mut mem = VecMemory::new();
        seed_f16_matrix(&mut mem, 0, 16, 16, Layout::Col); // A col-major
        seed_f16_matrix(&mut mem, 0x1000, 16, 16, Layout::Col); // B col-major
        let mut regs = WarpRegFile::new(64);
        model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::A,
                shape,
                layout: Layout::Col,
                ty: WmmaType::F16,
            },
            Reg(0),
            0,
            16,
            &mem,
            &mut regs,
        );
        model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::B,
                shape,
                layout: Layout::Col,
                ty: WmmaType::F16,
            },
            Reg(8),
            0x1000,
            16,
            &mem,
            &mut regs,
        );
        model.wmma_mma(
            &WmmaDirective::Mma {
                shape,
                a_layout: Layout::Col,
                b_layout: Layout::Col,
                ab_type: WmmaType::F16,
                c_type: WmmaType::F32,
                d_type: WmmaType::F32,
            },
            Reg(24),
            Reg(0),
            Reg(8),
            Reg(16),
            &mut regs,
        );
        model.wmma_store(
            &WmmaDirective::Store {
                shape,
                layout: Layout::Row,
                ty: WmmaType::F32,
            },
            Reg(24),
            0x2000,
            16,
            &mut mem,
            &regs,
        );
        // D(0,0) = Σ_k A(0,k)·B(k,0) = Σ_k k·(k·16 % 512) won't overflow f32;
        // compute the reference directly.
        let mut expect = 0f32;
        for k in 0..16 {
            let av = (k as f32) % 512.0; // A(0,k) = 0*16+k
            let bv = ((k * 16) as f32) % 512.0; // B(k,0) = k*16+0
            expect += av * bv;
        }
        let got = f32::from_bits(mem.read_u32(0x2000));
        assert_eq!(got, expect);
    }

    #[test]
    fn turing_int8_mma_through_fragments() {
        let model = TensorCoreModel::turing();
        let shape = WmmaShape::M16N16K16;
        let mut mem = VecMemory::new();
        for r in 0..16usize {
            for c in 0..16usize {
                mem.write_u8((r * 16 + c) as u64, (r * 3 + c) as u8);
                mem.write_u8(0x400 + (r * 16 + c) as u64, (r + 5 * c) as u8);
            }
        }
        let mut regs = WarpRegFile::new(64);
        model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::A,
                shape,
                layout: Layout::Row,
                ty: WmmaType::S8,
            },
            Reg(0),
            0,
            16,
            &mem,
            &mut regs,
        );
        model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::B,
                shape,
                layout: Layout::Row,
                ty: WmmaType::S8,
            },
            Reg(4),
            0x400,
            16,
            &mem,
            &mut regs,
        );
        model.wmma_mma(
            &WmmaDirective::Mma {
                shape,
                a_layout: Layout::Row,
                b_layout: Layout::Row,
                ab_type: WmmaType::S8,
                c_type: WmmaType::S32,
                d_type: WmmaType::S32,
            },
            Reg(24),
            Reg(0),
            Reg(4),
            Reg(8),
            &mut regs,
        );
        model.wmma_store(
            &WmmaDirective::Store {
                shape,
                layout: Layout::Row,
                ty: WmmaType::S32,
            },
            Reg(24),
            0x800,
            16,
            &mut mem,
            &regs,
        );
        for r in 0..16usize {
            for c in 0..16usize {
                let mut expect = 0i64;
                for k in 0..16usize {
                    let av = ((r * 3 + k) as u8) as i8 as i64;
                    let bv = ((k + 5 * c) as u8) as i8 as i64;
                    expect += av * bv;
                }
                let got = mem.read_u32(0x800 + (r * 16 + c) as u64 * 4) as i32 as i64;
                assert_eq!(got, expect, "({r},{c})");
            }
        }
    }

    /// Loads A, B and C fragments for a `mma.sync` tile from memory images
    /// built with `value(r,c) = f(r,c)`, small integers exact in every
    /// multiplicand format.
    fn load_mma_sync_operands(
        model: &TensorCoreModel,
        regs: &mut WarpRegFile,
        shape: WmmaShape,
        ab_type: WmmaType,
        a_dims: (usize, usize),
        k: usize,
    ) {
        let mut mem = VecMemory::new();
        let ebytes = ab_type.bits() / 8;
        let (ar, ac) = a_dims;
        for r in 0..ar {
            for c in 0..ac {
                let v = ((r + 2 * c) % 9) as f32 - 4.0;
                let linear = (r * ac + c) * ebytes;
                match ab_type {
                    WmmaType::F16 => mem.write_u16(linear as u64, F16::from_f32(v).to_bits()),
                    WmmaType::BF16 => {
                        mem.write_u16(linear as u64, tcsim_f16::Bf16::from_f32(v).to_bits())
                    }
                    WmmaType::TF32 => {
                        mem.write_u32(linear as u64, tcsim_f16::Tf32::from_f32(v).to_bits())
                    }
                    other => panic!("unexpected ab type {other}"),
                }
            }
        }
        for r in 0..k {
            for c in 0..8 {
                let v = ((3 * r + c) % 7) as f32 - 3.0;
                let linear = 0x1000 + (r * 8 + c) * ebytes;
                match ab_type {
                    WmmaType::F16 => mem.write_u16(linear as u64, F16::from_f32(v).to_bits()),
                    WmmaType::BF16 => {
                        mem.write_u16(linear as u64, tcsim_f16::Bf16::from_f32(v).to_bits())
                    }
                    WmmaType::TF32 => {
                        mem.write_u32(linear as u64, tcsim_f16::Tf32::from_f32(v).to_bits())
                    }
                    other => panic!("unexpected ab type {other}"),
                }
            }
        }
        for r in 0..16 {
            for c in 0..8 {
                let v = (r as f32) - (c as f32);
                mem.write_u32(0x2000 + ((r * 8 + c) * 4) as u64, v.to_bits());
            }
        }
        let a_shape = if a_dims.1 == k {
            shape
        } else {
            WmmaShape::M16N8K8
        };
        model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::A,
                shape: a_shape,
                layout: Layout::Row,
                ty: ab_type,
            },
            Reg(0),
            0,
            ac,
            &mem,
            regs,
        );
        model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::B,
                shape,
                layout: Layout::Row,
                ty: ab_type,
            },
            Reg(8),
            0x1000,
            8,
            &mem,
            regs,
        );
        model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::C,
                shape,
                layout: Layout::Row,
                ty: WmmaType::F32,
            },
            Reg(16),
            0x2000,
            8,
            &mem,
            regs,
        );
    }

    #[test]
    fn dense_mma_sync_matches_cpu_reference_for_all_types() {
        let model = TensorCoreModel::ampere();
        for (shape, ab_type, k) in [
            (WmmaShape::M16N8K8, WmmaType::F16, 8),
            (WmmaShape::M16N8K16, WmmaType::F16, 16),
            (WmmaShape::M16N8K8, WmmaType::BF16, 8),
            (WmmaShape::M16N8K16, WmmaType::BF16, 16),
            (WmmaShape::M16N8K8, WmmaType::TF32, 8),
        ] {
            let mut regs = WarpRegFile::new(64);
            load_mma_sync_operands(&model, &mut regs, shape, ab_type, (16, k), k);
            model.mma_sync(
                &WmmaDirective::MmaSync {
                    shape,
                    ab_type,
                    c_type: WmmaType::F32,
                    d_type: WmmaType::F32,
                    sparse: false,
                },
                Reg(24),
                Reg(0),
                Reg(8),
                Reg(16),
                None,
                &mut regs,
            );
            let dmap =
                FragmentMap::for_arch(false, FragmentKind::D, shape, WmmaType::F32, Layout::Row);
            let dt = gather_tile(&model, &dmap, Reg(24), &regs);
            for r in 0..16usize {
                for c in 0..8usize {
                    let mut expect = (r as f32) - (c as f32);
                    for kk in 0..k {
                        let av = ((r + 2 * kk) % 9) as f32 - 4.0;
                        let bv = ((3 * kk + c) % 7) as f32 - 3.0;
                        expect += av * bv;
                    }
                    assert_eq!(dt.get_f32(r, c), expect, "{shape} {ab_type} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn sparse_mma_sync_matches_dense_on_expanded_operand() {
        let model = TensorCoreModel::ampere();
        let shape = WmmaShape::M16N8K16;
        for ab_type in [WmmaType::F16, WmmaType::BF16] {
            let mut regs = WarpRegFile::new(64);
            // Compressed A is the m16n8k8-sized 16×8 tile.
            load_mma_sync_operands(&model, &mut regs, shape, ab_type, (16, 8), 16);
            // Row r keeps indices (r%3, r%3+1) in every group of four.
            let mreg = Reg(30);
            let metas: Vec<u16> = (0..16)
                .map(|r| {
                    let i0 = (r % 3) as u8;
                    crate::hmma::pack_sparse_row_meta([(i0, i0 + 1); 4])
                })
                .collect();
            for lane in 0..WARP_SIZE {
                let g = lane / 4;
                let word = (metas[g] as u32) | ((metas[g + 8] as u32) << 16);
                regs.write(lane, mreg, word);
            }
            model.mma_sync(
                &WmmaDirective::MmaSync {
                    shape,
                    ab_type,
                    c_type: WmmaType::F32,
                    d_type: WmmaType::F32,
                    sparse: true,
                },
                Reg(24),
                Reg(0),
                Reg(8),
                Reg(16),
                Some(mreg),
                &mut regs,
            );
            let dmap =
                FragmentMap::for_arch(false, FragmentKind::D, shape, WmmaType::F32, Layout::Row);
            let dt = gather_tile(&model, &dmap, Reg(24), &regs);
            for r in 0..16usize {
                for c in 0..8usize {
                    let mut expect = (r as f32) - (c as f32);
                    // Compressed column 2j+s contributes at dense k =
                    // 4j + (r%3 + s).
                    for j in 0..4usize {
                        for s in 0..2usize {
                            let av = ((r + 2 * (2 * j + s)) % 9) as f32 - 4.0;
                            let kk = 4 * j + (r % 3) + s;
                            let bv = ((3 * kk + c) % 7) as f32 - 3.0;
                            expect += av * bv;
                        }
                    }
                    assert_eq!(dt.get_f32(r, c), expect, "{ab_type} ({r},{c})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "metadata register")]
    fn sparse_mma_sync_without_metadata_panics() {
        let model = TensorCoreModel::ampere();
        let mut regs = WarpRegFile::new(64);
        model.mma_sync(
            &WmmaDirective::MmaSync {
                shape: WmmaShape::M16N8K16,
                ab_type: WmmaType::F16,
                c_type: WmmaType::F32,
                d_type: WmmaType::F32,
                sparse: true,
            },
            Reg(24),
            Reg(0),
            Reg(8),
            Reg(16),
            None,
            &mut regs,
        );
    }

    #[test]
    fn thread_local_caches_agree_across_threads() {
        // Sweep workers each hold a private MAP_CACHE; the memoized
        // mappings are pure, so every thread must compute identical maps.
        let key = (
            FragmentKind::A,
            WmmaShape::M16N16K16,
            WmmaType::F16,
            Layout::Row,
        );
        let here = cached_map(true, key.0, key.1, key.2, key.3);
        let there = std::thread::spawn(move || {
            let m = cached_map(true, key.0, key.1, key.2, key.3);
            (*m).clone()
        })
        .join()
        .expect("worker thread");
        assert_eq!(*here, there);
    }

    #[test]
    fn frag_elem_bit_packing() {
        let mut regs = WarpRegFile::new(4);
        // 16-bit slots: slot 1 lives in high half of reg 0.
        write_frag_elem(&mut regs, 0, Reg(0), 1, 16, 0xABCD);
        assert_eq!(regs.read(0, Reg(0)), 0xABCD_0000);
        assert_eq!(read_frag_elem(&regs, 0, Reg(0), 1, 16), 0xABCD);
        // 8-bit slots.
        write_frag_elem(&mut regs, 1, Reg(0), 3, 8, 0x7F);
        assert_eq!(regs.read(1, Reg(0)), 0x7F00_0000);
        // 4-bit slots: slot 9 = reg 1, bits 4..8.
        write_frag_elem(&mut regs, 2, Reg(0), 9, 4, 0xF);
        assert_eq!(regs.read(2, Reg(1)), 0x0000_00F0);
        assert_eq!(read_frag_elem(&regs, 2, Reg(0), 9, 4), 0xF);
        // 32-bit slots.
        write_frag_elem(&mut regs, 3, Reg(0), 2, 32, 0xDEADBEEF);
        assert_eq!(regs.read(3, Reg(2)), 0xDEADBEEF);
    }
}
