//! Four-element dot product (FEDP) unit — the arithmetic datapath of the
//! proposed tensor-core microarchitecture (Fig 13, §IV).
//!
//! Each tensor core contains sixteen FEDP units. An FEDP is a four-stage
//! pipeline: stage 1 performs the four FP16 multiplications in parallel;
//! stages 2–4 accumulate through an FP32 adder tree and add the
//! accumulator input. A tensor core therefore completes one 4×4×4
//! matrix-multiply-accumulate per cycle in steady state (Fig 3).
//!
//! # Numerics
//!
//! The product of two binary16 values is exactly representable in binary32
//! (11+11 = 22 significant bits < 24), so stage 1 is exact. The adder tree
//! operates in binary32 with one rounding per node — the behaviour Markidis
//! et al. \[47\] observed on real tensor cores. In FP16-accumulate mode the
//! final result is rounded to binary16 once per FEDP; in mixed-precision
//! mode the FP32 accumulator is kept. Integer modes (Turing) multiply into
//! i32 and accumulate with wrapping i32 adds (no overflow is possible for
//! 8/4-bit operands within one FEDP; accumulation across K may wrap, as on
//! hardware).

use tcsim_f16::F16;

/// Number of pipeline stages in an FEDP unit (1 multiply + 3 accumulate).
pub const FEDP_STAGES: u32 = 4;

/// Number of FEDP units per tensor core (enough for one 4×4 MACC/cycle).
pub const FEDPS_PER_TENSOR_CORE: usize = 16;

/// A four-element FP16 dot product with FP32 accumulation:
/// `a·b + acc` with the paper's adder-tree evaluation order.
pub fn fedp_f32(a: [F16; 4], b: [F16; 4], acc: f32) -> f32 {
    let af = [a[0].to_f32(), a[1].to_f32(), a[2].to_f32(), a[3].to_f32()];
    let bf = [b[0].to_f32(), b[1].to_f32(), b[2].to_f32(), b[3].to_f32()];
    fedp_f32_pre(&af, &bf, acc)
}

/// [`fedp_f32`] over multiplicands already widened to binary32. The
/// binary16 → binary32 conversion is exact, so hoisting it out of a
/// reduction loop (as [`crate::mma_reference`] does) cannot change any
/// product bit.
#[inline]
pub fn fedp_f32_pre(a: &[f32], b: &[f32], acc: f32) -> f32 {
    // Stage 1: exact products.
    let p = [a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]];
    // Stages 2–4: binary adder tree, then accumulator add.
    let s01 = p[0] + p[1];
    let s23 = p[2] + p[3];
    let s = s01 + s23;
    s + acc
}

/// FEDP in FP16-accumulate mode: internal arithmetic identical to
/// [`fedp_f32`], with a single final rounding to binary16.
pub fn fedp_f16(a: [F16; 4], b: [F16; 4], acc: F16) -> F16 {
    let r = fedp_f32(a, b, acc.to_f32());
    F16::from_f32(r)
}

/// Integer FEDP for the Turing 8-bit modes: `Σ aᵢ·bᵢ + acc` in i32.
/// Operand values must already be sign/zero-extended to i32.
pub fn fedp_i32(a: [i32; 4], b: [i32; 4], acc: i32) -> i32 {
    let mut s = acc;
    for i in 0..4 {
        s = s.wrapping_add(a[i].wrapping_mul(b[i]));
    }
    s
}

/// A K-element dot product evaluated as chained FEDPs (K must be a
/// multiple of 4), mixed-precision mode: the FP32 accumulator stays in
/// FP32 between FEDPs.
pub fn dot_f32(a: &[F16], b: &[F16], c: f32) -> f32 {
    assert_eq!(a.len(), b.len());
    assert!(
        a.len().is_multiple_of(4),
        "FEDP chains cover 4 elements per step"
    );
    let mut acc = c;
    for (qa, qb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        acc = fedp_f32(
            [qa[0], qa[1], qa[2], qa[3]],
            [qb[0], qb[1], qb[2], qb[3]],
            acc,
        );
    }
    acc
}

/// A K-element dot product in FP16-accumulate mode: rounded to binary16
/// after every FEDP, as the accumulation buffer holds FP16 values.
pub fn dot_f16(a: &[F16], b: &[F16], c: F16) -> F16 {
    assert_eq!(a.len(), b.len());
    assert!(a.len().is_multiple_of(4));
    let mut acc = c;
    for (qa, qb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        acc = fedp_f16(
            [qa[0], qa[1], qa[2], qa[3]],
            [qb[0], qb[1], qb[2], qb[3]],
            acc,
        );
    }
    acc
}

/// A K-element integer dot product (8-bit and 4-bit Turing modes).
pub fn dot_i32(a: &[i32], b: &[i32], c: i32) -> i32 {
    assert_eq!(a.len(), b.len());
    assert!(a.len().is_multiple_of(4));
    let mut acc = c;
    for (qa, qb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        acc = fedp_i32(
            [qa[0], qa[1], qa[2], qa[3]],
            [qb[0], qb[1], qb[2], qb[3]],
            acc,
        );
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: f32) -> F16 {
        F16::from_f32(v)
    }

    #[test]
    fn fedp_basic() {
        let a = [h(1.0), h(2.0), h(3.0), h(4.0)];
        let b = [h(5.0), h(6.0), h(7.0), h(8.0)];
        // 5 + 12 + 21 + 32 = 70
        assert_eq!(fedp_f32(a, b, 0.0), 70.0);
        assert_eq!(fedp_f32(a, b, 30.0), 100.0);
        assert_eq!(fedp_f16(a, b, h(30.0)).to_f32(), 100.0);
    }

    #[test]
    fn stage1_products_are_exact() {
        // Max-magnitude f16 products fit f32 exactly.
        let a = [F16::MAX; 4];
        let b = [F16::MAX; 4];
        let exact = 4.0 * (65504f64 * 65504f64);
        assert_eq!(fedp_f32(a, b, 0.0) as f64, exact);
    }

    #[test]
    fn fp16_accumulate_rounds_once_per_fedp() {
        // acc = 2048, products sum to 1.0: f32 keeps 2049, f16 rounds to 2048.
        let a = [h(1.0), F16::ZERO, F16::ZERO, F16::ZERO];
        let b = [h(1.0), F16::ZERO, F16::ZERO, F16::ZERO];
        assert_eq!(fedp_f32(a, b, 2048.0), 2049.0);
        assert_eq!(fedp_f16(a, b, h(2048.0)).to_f32(), 2048.0);
    }

    #[test]
    fn adder_tree_order_is_fixed() {
        // The tree computes (p0+p1)+(p2+p3), not sequential left-to-right.
        // Construct values where the two orders differ in f32.
        let big = 3.3e4f32; // within f16 range
        let a = [h(big), h(1.0), h(-big), h(1.0)];
        let b = [h(1.0), h(2f32.powi(-12)), h(1.0), h(2f32.powi(-12))];
        let tree = fedp_f32(a, b, 0.0);
        let p: Vec<f32> = (0..4).map(|i| a[i].to_f32() * b[i].to_f32()).collect();
        let expect = (p[0] + p[1]) + (p[2] + p[3]);
        let seq = ((p[0] + p[1]) + p[2]) + p[3];
        assert_eq!(tree, expect);
        assert_ne!(expect, seq, "orders must differ for this input");
    }

    #[test]
    fn dot_chains_fedps() {
        let a: Vec<F16> = (1..=16).map(|i| h(i as f32)).collect();
        let b: Vec<F16> = vec![h(1.0); 16];
        // Σ 1..16 = 136.
        assert_eq!(dot_f32(&a, &b, 0.0), 136.0);
        assert_eq!(dot_f16(&a, &b, F16::ZERO).to_f32(), 136.0);
    }

    #[test]
    fn integer_fedp_exact() {
        let a = [127, -128, 127, -128];
        let b = [127, 127, -128, -128];
        let expect = 127 * 127 - 128 * 127 - 127 * 128 + 128 * 128;
        assert_eq!(fedp_i32(a, b, 0), expect);
        assert_eq!(dot_i32(&a, &b, 5), expect + 5);
    }

    #[test]
    fn integer_accumulation_wraps() {
        let a = [i32::MAX, 0, 0, 0];
        let b = [1, 0, 0, 0];
        assert_eq!(fedp_i32(a, b, 1), i32::MIN);
    }

    #[test]
    #[should_panic(expected = "4 elements per step")]
    fn dot_requires_quad_lengths() {
        let a = vec![F16::ONE; 3];
        let b = vec![F16::ONE; 3];
        let _ = dot_f32(&a, &b, 0.0);
    }

    #[test]
    fn mixed_precision_keeps_f32_between_fedps() {
        // 2048 + 1 survives in f32 across FEDP boundaries but not in f16.
        let a: Vec<F16> = vec![
            h(2048.0),
            F16::ZERO,
            F16::ZERO,
            F16::ZERO,
            h(1.0),
            F16::ZERO,
            F16::ZERO,
            F16::ZERO,
        ];
        let b: Vec<F16> = vec![h(1.0); 8];
        assert_eq!(dot_f32(&a, &b, 0.0), 2049.0);
        assert_eq!(dot_f16(&a, &b, F16::ZERO).to_f32(), 2048.0);
    }
}
