//! Bridges the tensor-core timing model to the trace subsystem: expands
//! one `wmma.mma` into per-octet HMMA set/step events and FEDP stage
//! advances on a [`Tracer`].
//!
//! The paper's Fig 10/11 timelines show each octet's tensor core working
//! through the SET/STEP schedule in lockstep — all four octets of a warp
//! receive the same HMMA stream, each on its own tensor-core half
//! (Fig 12). The emission here mirrors that: the same schedule, once per
//! octet, so the Chrome trace shows four parallel octet tracks per
//! sub-core exactly like the paper's figures.

use crate::fedp::FEDP_STAGES;
use crate::hmma::MmaMode;
use crate::octet::OCTETS_PER_WARP;
use crate::timing::{turing_step_schedule, volta_step_schedule, HmmaStepTiming, TuringMode};
use tcsim_isa::WmmaDirective;
use tcsim_trace::{EventKind, TraceEvent, Tracer};

/// The per-step schedule of a `wmma.mma` or `mma.sync` directive,
/// relative to the instruction's start cycle.
///
/// A `mma.sync` is a single hardware instruction (no multi-set HMMA
/// decomposition), so its schedule is one step issuing immediately and
/// completing at the instruction latency.
///
/// # Panics
///
/// Panics if the directive is not a valid multiply for the architecture
/// (mirrors [`mma_timing`](crate::timing::mma_timing)).
pub fn mma_step_schedule(volta: bool, dir: &WmmaDirective) -> Vec<HmmaStepTiming> {
    let (shape, ab_type, d_type) = match *dir {
        WmmaDirective::Mma {
            shape,
            ab_type,
            d_type,
            ..
        } => (shape, ab_type, d_type),
        WmmaDirective::MmaSync { .. } => {
            let t = crate::timing::mma_timing(volta, dir);
            return vec![HmmaStepTiming {
                set: 1,
                step: 0,
                issue: 0,
                complete: t.latency,
            }];
        }
        _ => panic!("mma_step_schedule requires a matrix-multiply directive"),
    };
    if volta {
        volta_step_schedule(MmaMode::from_types(ab_type, d_type))
    } else {
        let mode = TuringMode::from_types(ab_type, d_type);
        turing_step_schedule(shape, mode)
            .unwrap_or_else(|| panic!("unsupported Turing combination {shape} {mode:?}"))
    }
}

/// Emits the HMMA set/step and FEDP stage events of one `wmma.mma`
/// issued at cycle `base` by warp `warp` on sub-core `sub_core` of SM
/// `sm`. A no-op when the tracer is disabled.
///
/// Event cycles are absolute: `base` should be the cycle the first HMMA
/// enters the tensor core (issue time plus operand collection), so that
/// completion stamps land at `base +` the Fig 9 cumulative cycles.
///
/// # Panics
///
/// Panics if the directive is not a valid `Mma` for the architecture.
pub fn trace_mma(
    tracer: &mut dyn Tracer,
    volta: bool,
    dir: &WmmaDirective,
    base: u64,
    sm: u16,
    sub_core: u8,
    warp: u16,
) {
    if !tracer.enabled() {
        return;
    }
    let sched = mma_step_schedule(volta, dir);
    for s in &sched {
        for octet in 0..OCTETS_PER_WARP as u8 {
            tracer.record(TraceEvent {
                cycle: base + s.issue as u64,
                sm,
                kind: EventKind::HmmaStep {
                    sub_core,
                    warp,
                    octet,
                    set: s.set,
                    step: s.step,
                    complete: base + s.complete as u64,
                },
            });
        }
        // The step's operands stream through the 4-stage FEDP pipeline
        // (Fig 13) starting the cycle it issues.
        for stage in 0..FEDP_STAGES as u8 {
            tracer.record(TraceEvent {
                cycle: base + s.issue as u64 + stage as u64,
                sm,
                kind: EventKind::FedpStage {
                    sub_core,
                    warp,
                    set: s.set,
                    step: s.step,
                    stage,
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::VOLTA_MIXED_CUMULATIVE;
    use tcsim_isa::{Layout, WmmaShape, WmmaType};
    use tcsim_trace::{NullTracer, RingTracer};

    fn mixed_dir() -> WmmaDirective {
        WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::F16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
        }
    }

    #[test]
    fn volta_mixed_emits_four_octet_streams() {
        let mut tr = RingTracer::with_capacity(4096);
        trace_mma(&mut tr, true, &mixed_dir(), 100, 2, 1, 7);
        let events = tr.snapshot();
        let hmma: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::HmmaStep { .. }))
            .collect();
        // 16 steps × 4 octets.
        assert_eq!(hmma.len(), 16 * OCTETS_PER_WARP);
        // Completion stamps are base + the Fig 9a cumulative cycles.
        let octet0: Vec<u64> = hmma
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::HmmaStep {
                    octet: 0, complete, ..
                } => Some(complete - 100),
                _ => None,
            })
            .collect();
        assert_eq!(octet0, VOLTA_MIXED_CUMULATIVE.map(u64::from).to_vec());
        assert!(events.iter().all(|e| e.sm == 2));
        // FEDP: 16 steps × 4 stages, one stage per cycle from step issue.
        let fedp = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FedpStage { .. }))
            .count();
        assert_eq!(fedp, 16 * FEDP_STAGES as usize);
    }

    #[test]
    fn turing_emits_one_step_per_set() {
        let dir = WmmaDirective::Mma {
            shape: WmmaShape::M16N16K16,
            a_layout: Layout::Row,
            b_layout: Layout::Col,
            ab_type: WmmaType::S8,
            c_type: WmmaType::S32,
            d_type: WmmaType::S32,
        };
        let mut tr = RingTracer::with_capacity(4096);
        trace_mma(&mut tr, false, &dir, 0, 0, 0, 0);
        let sets: Vec<u8> = tr
            .snapshot()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::HmmaStep { octet: 0, set, .. } => Some(set),
                _ => None,
            })
            .collect();
        assert_eq!(sets, vec![1, 2, 3, 4]);
    }

    #[test]
    fn mma_sync_emits_a_single_step_per_octet() {
        let dir = WmmaDirective::MmaSync {
            shape: WmmaShape::M16N8K16,
            ab_type: WmmaType::BF16,
            c_type: WmmaType::F32,
            d_type: WmmaType::F32,
            sparse: true,
        };
        let sched = mma_step_schedule(false, &dir);
        assert_eq!(sched.len(), 1);
        assert_eq!((sched[0].set, sched[0].step, sched[0].issue), (1, 0, 0));
        assert_eq!(sched[0].complete, 20);
        let mut tr = RingTracer::with_capacity(4096);
        trace_mma(&mut tr, false, &dir, 50, 1, 0, 3);
        let events = tr.snapshot();
        let hmma = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::HmmaStep { .. }))
            .count();
        assert_eq!(hmma, OCTETS_PER_WARP);
        let completes: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::HmmaStep { complete, .. } => Some(complete),
                _ => None,
            })
            .collect();
        assert!(completes.iter().all(|&c| c == 70));
    }

    #[test]
    fn disabled_tracer_is_a_no_op() {
        trace_mma(&mut NullTracer, true, &mixed_dir(), 0, 0, 0, 0);
    }

    #[test]
    fn schedule_matches_pipe_events() {
        use crate::pipe::TensorCorePipe;
        let sched = mma_step_schedule(true, &mixed_dir());
        let mut pipe = TensorCorePipe::volta();
        let ev = pipe.enqueue_volta(MmaMode::MixedF32, 0);
        assert_eq!(sched.len(), ev.len());
        for (s, e) in sched.iter().zip(ev.iter()) {
            assert_eq!((s.set as usize, s.step as usize), (e.set, e.step));
            assert_eq!(s.issue as u64, e.issue);
            assert_eq!(s.complete as u64, e.complete);
        }
    }
}
