//! Property-based tests for the tensor-core model: the HMMA set/step
//! decomposition must be bit-identical to the atomic tile semantics for
//! arbitrary operand values, and fragment load→store roundtrips must
//! preserve matrices exactly.

use proptest::prelude::*;
use tcsim_core::{
    execute_setwise_turing, execute_stepwise_volta, gather_tile, mma_reference, FragmentMap,
    TensorCoreModel, Tile,
};
use tcsim_f16::F16;
use tcsim_isa::exec::WmmaHandler;
use tcsim_isa::{
    ByteMemory, FragmentKind, Layout, Reg, VecMemory, WarpRegFile, WmmaDirective, WmmaShape,
    WmmaType,
};

/// Strategy: a 16×16 tile of small f16 values (exact in f16).
fn f16_tile(frag: FragmentKind, shape: WmmaShape) -> impl Strategy<Value = Tile> {
    let (r, c) = frag.dims(shape);
    proptest::collection::vec(-64i32..=64, r * c).prop_map(move |vals| {
        let mut t = Tile::for_fragment(frag, shape, WmmaType::F16);
        for rr in 0..r {
            for cc in 0..c {
                t.set_f16(rr, cc, F16::from_f32(vals[rr * c + cc] as f32 / 4.0));
            }
        }
        t
    })
}

fn f32_tile(frag: FragmentKind, shape: WmmaShape) -> impl Strategy<Value = Tile> {
    let (r, c) = frag.dims(shape);
    proptest::collection::vec(-1000i32..=1000, r * c).prop_map(move |vals| {
        let mut t = Tile::for_fragment(frag, shape, WmmaType::F32);
        for rr in 0..r {
            for cc in 0..c {
                t.set_f32(rr, cc, vals[rr * c + cc] as f32 / 8.0);
            }
        }
        t
    })
}

fn int_tile(frag: FragmentKind, shape: WmmaShape, ty: WmmaType) -> impl Strategy<Value = Tile> {
    let (r, c) = frag.dims(shape);
    proptest::collection::vec(any::<u32>(), r * c).prop_map(move |vals| {
        let mut t = Tile::for_fragment(frag, shape, ty);
        for rr in 0..r {
            for cc in 0..c {
                t.set_i32(rr, cc, vals[rr * c + cc] as i32);
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn volta_stepwise_equals_atomic_mixed(
        a in f16_tile(FragmentKind::A, WmmaShape::M16N16K16),
        b in f16_tile(FragmentKind::B, WmmaShape::M16N16K16),
        c in f32_tile(FragmentKind::C, WmmaShape::M16N16K16),
    ) {
        let want = mma_reference(&a, &b, &c, WmmaType::F32);
        let got = execute_stepwise_volta(&a, &b, &c, WmmaType::F32);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn volta_stepwise_equals_atomic_fp16(
        a in f16_tile(FragmentKind::A, WmmaShape::M16N16K16),
        b in f16_tile(FragmentKind::B, WmmaShape::M16N16K16),
        c in f16_tile(FragmentKind::C, WmmaShape::M16N16K16),
    ) {
        let want = mma_reference(&a, &b, &c, WmmaType::F16);
        let got = execute_stepwise_volta(&a, &b, &c, WmmaType::F16);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn turing_setwise_equals_atomic_int8(
        a in int_tile(FragmentKind::A, WmmaShape::M32N8K16, WmmaType::S8),
        b in int_tile(FragmentKind::B, WmmaShape::M32N8K16, WmmaType::S8),
        c in int_tile(FragmentKind::C, WmmaShape::M32N8K16, WmmaType::S32),
    ) {
        let want = mma_reference(&a, &b, &c, WmmaType::S32);
        let got = execute_setwise_turing(&a, &b, &c, WmmaType::S32, WmmaShape::M32N8K16);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn turing_setwise_equals_atomic_fp16_tall_tile(
        a in f16_tile(FragmentKind::A, WmmaShape::M8N32K16),
        b in f16_tile(FragmentKind::B, WmmaShape::M8N32K16),
        c in f16_tile(FragmentKind::C, WmmaShape::M8N32K16),
    ) {
        let want = mma_reference(&a, &b, &c, WmmaType::F16);
        let got = execute_setwise_turing(&a, &b, &c, WmmaType::F16, WmmaShape::M8N32K16);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn load_store_roundtrip_preserves_matrix(
        vals in proptest::collection::vec(any::<u16>(), 256),
        volta in any::<bool>(),
        load_row in any::<bool>(),
        store_row in any::<bool>(),
    ) {
        // D fragments only exist in f16/f32/s32; use a C-load + D-store of
        // the same f32 data through fragments.
        let model = if volta { TensorCoreModel::volta() } else { TensorCoreModel::turing() };
        let shape = WmmaShape::M16N16K16;
        let load_layout = if load_row { Layout::Row } else { Layout::Col };
        let store_layout = if store_row { Layout::Row } else { Layout::Col };
        let mut mem = VecMemory::new();
        for (i, &v) in vals.iter().enumerate() {
            mem.write_u32((i * 4) as u64, v as u32);
        }
        let mut regs = WarpRegFile::new(16);
        model.wmma_load(
            &WmmaDirective::Load { frag: FragmentKind::C, shape, layout: load_layout, ty: WmmaType::F32 },
            Reg(0), 0, 16, &mem, &mut regs,
        );
        model.wmma_store(
            &WmmaDirective::Store { shape, layout: store_layout, ty: WmmaType::F32 },
            Reg(0), 0x1000, 16, &mut mem, &regs,
        );
        for r in 0..16usize {
            for c in 0..16usize {
                let src = match load_layout {
                    Layout::Row => r * 16 + c,
                    Layout::Col => c * 16 + r,
                };
                let dst = match store_layout {
                    Layout::Row => r * 16 + c,
                    Layout::Col => c * 16 + r,
                };
                prop_assert_eq!(
                    mem.read_u32(0x1000 + (dst * 4) as u64),
                    vals[src] as u32,
                    "({}, {})", r, c
                );
            }
        }
    }

    #[test]
    fn volta_double_loaded_fragments_are_consistent(
        vals in proptest::collection::vec(any::<u16>(), 256),
    ) {
        // Both holders of each A element must end up with identical bits,
        // and gather_tile must reconstruct the source matrix.
        let model = TensorCoreModel::volta();
        let shape = WmmaShape::M16N16K16;
        let mut mem = VecMemory::new();
        for (i, &v) in vals.iter().enumerate() {
            mem.write_u16((i * 2) as u64, v);
        }
        let mut regs = WarpRegFile::new(8);
        let map = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row);
        model.wmma_load(
            &WmmaDirective::Load { frag: FragmentKind::A, shape, layout: Layout::Row, ty: WmmaType::F16 },
            Reg(0), 0, 16, &mem, &mut regs,
        );
        let tile = gather_tile(&model, &map, Reg(0), &regs);
        for r in 0..16u8 {
            for c in 0..16u8 {
                let owners = map.owners(r, c);
                prop_assert_eq!(owners.len(), 2);
                let bits: Vec<u32> = owners
                    .iter()
                    .map(|&(lane, slot)| {
                        tcsim_core::functional::read_frag_elem(&regs, lane, Reg(0), slot, 16)
                    })
                    .collect();
                prop_assert_eq!(bits[0], bits[1]);
                prop_assert_eq!(bits[0] as u16, vals[(r as usize) * 16 + c as usize]);
                prop_assert_eq!(tile.get_bits(r as usize, c as usize) as u16, vals[(r as usize) * 16 + c as usize]);
            }
        }
    }
}
