//! Randomized tests for the tensor-core model: the HMMA set/step
//! decomposition must be bit-identical to the atomic tile semantics for
//! arbitrary operand values, and fragment load→store roundtrips must
//! preserve matrices exactly. Inputs come from a deterministic
//! xorshift64* generator (no external crates).

use tcsim_core::{
    execute_setwise_turing, execute_stepwise_volta, gather_tile, mma_reference, FragmentMap,
    TensorCoreModel, Tile,
};
use tcsim_f16::F16;
use tcsim_isa::exec::WmmaHandler;
use tcsim_isa::{
    ByteMemory, FragmentKind, Layout, Reg, VecMemory, WarpRegFile, WmmaDirective, WmmaShape,
    WmmaType,
};

// Deterministic inputs from the workspace's canonical PRNG (same
// xorshift64* recurrence the local copy used, so sequences are unchanged).
use tcsim_check::rng::XorShift64Star as Rng;

/// A tile of small f16 values in [-16, 16] (exact in f16).
fn f16_tile(rng: &mut Rng, frag: FragmentKind, shape: WmmaShape) -> Tile {
    let (r, c) = frag.dims(shape);
    let mut t = Tile::for_fragment(frag, shape, WmmaType::F16);
    for rr in 0..r {
        for cc in 0..c {
            t.set_f16(rr, cc, F16::from_f32(rng.range_i32(-64, 64) as f32 / 4.0));
        }
    }
    t
}

fn f32_tile(rng: &mut Rng, frag: FragmentKind, shape: WmmaShape) -> Tile {
    let (r, c) = frag.dims(shape);
    let mut t = Tile::for_fragment(frag, shape, WmmaType::F32);
    for rr in 0..r {
        for cc in 0..c {
            t.set_f32(rr, cc, rng.range_i32(-1000, 1000) as f32 / 8.0);
        }
    }
    t
}

fn int_tile(rng: &mut Rng, frag: FragmentKind, shape: WmmaShape, ty: WmmaType) -> Tile {
    let (r, c) = frag.dims(shape);
    let mut t = Tile::for_fragment(frag, shape, ty);
    for rr in 0..r {
        for cc in 0..c {
            t.set_i32(rr, cc, rng.next_u32() as i32);
        }
    }
    t
}

const CASES: usize = 32;

#[test]
fn volta_stepwise_equals_atomic_mixed() {
    let mut rng = Rng::new(0xC04E1);
    for _ in 0..CASES {
        let a = f16_tile(&mut rng, FragmentKind::A, WmmaShape::M16N16K16);
        let b = f16_tile(&mut rng, FragmentKind::B, WmmaShape::M16N16K16);
        let c = f32_tile(&mut rng, FragmentKind::C, WmmaShape::M16N16K16);
        let want = mma_reference(&a, &b, &c, WmmaType::F32);
        let got = execute_stepwise_volta(&a, &b, &c, WmmaType::F32);
        assert_eq!(got, want);
    }
}

#[test]
fn volta_stepwise_equals_atomic_fp16() {
    let mut rng = Rng::new(0xC04E2);
    for _ in 0..CASES {
        let a = f16_tile(&mut rng, FragmentKind::A, WmmaShape::M16N16K16);
        let b = f16_tile(&mut rng, FragmentKind::B, WmmaShape::M16N16K16);
        let c = f16_tile(&mut rng, FragmentKind::C, WmmaShape::M16N16K16);
        let want = mma_reference(&a, &b, &c, WmmaType::F16);
        let got = execute_stepwise_volta(&a, &b, &c, WmmaType::F16);
        assert_eq!(got, want);
    }
}

#[test]
fn turing_setwise_equals_atomic_int8() {
    let mut rng = Rng::new(0xC04E3);
    for _ in 0..CASES {
        let a = int_tile(&mut rng, FragmentKind::A, WmmaShape::M32N8K16, WmmaType::S8);
        let b = int_tile(&mut rng, FragmentKind::B, WmmaShape::M32N8K16, WmmaType::S8);
        let c = int_tile(
            &mut rng,
            FragmentKind::C,
            WmmaShape::M32N8K16,
            WmmaType::S32,
        );
        let want = mma_reference(&a, &b, &c, WmmaType::S32);
        let got = execute_setwise_turing(&a, &b, &c, WmmaType::S32, WmmaShape::M32N8K16);
        assert_eq!(got, want);
    }
}

#[test]
fn turing_setwise_equals_atomic_fp16_tall_tile() {
    let mut rng = Rng::new(0xC04E4);
    for _ in 0..CASES {
        let a = f16_tile(&mut rng, FragmentKind::A, WmmaShape::M8N32K16);
        let b = f16_tile(&mut rng, FragmentKind::B, WmmaShape::M8N32K16);
        let c = f16_tile(&mut rng, FragmentKind::C, WmmaShape::M8N32K16);
        let want = mma_reference(&a, &b, &c, WmmaType::F16);
        let got = execute_setwise_turing(&a, &b, &c, WmmaType::F16, WmmaShape::M8N32K16);
        assert_eq!(got, want);
    }
}

#[test]
fn load_store_roundtrip_preserves_matrix() {
    let mut rng = Rng::new(0xC04E5);
    for _ in 0..CASES {
        let vals: Vec<u16> = (0..256).map(|_| rng.next_u16()).collect();
        let volta = rng.next_bool();
        let load_layout = if rng.next_bool() {
            Layout::Row
        } else {
            Layout::Col
        };
        let store_layout = if rng.next_bool() {
            Layout::Row
        } else {
            Layout::Col
        };
        // D fragments only exist in f16/f32/s32; use a C-load + D-store of
        // the same f32 data through fragments.
        let model = if volta {
            TensorCoreModel::volta()
        } else {
            TensorCoreModel::turing()
        };
        let shape = WmmaShape::M16N16K16;
        let mut mem = VecMemory::new();
        for (i, &v) in vals.iter().enumerate() {
            mem.write_u32((i * 4) as u64, v as u32);
        }
        let mut regs = WarpRegFile::new(16);
        model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::C,
                shape,
                layout: load_layout,
                ty: WmmaType::F32,
            },
            Reg(0),
            0,
            16,
            &mem,
            &mut regs,
        );
        model.wmma_store(
            &WmmaDirective::Store {
                shape,
                layout: store_layout,
                ty: WmmaType::F32,
            },
            Reg(0),
            0x1000,
            16,
            &mut mem,
            &regs,
        );
        for r in 0..16usize {
            for c in 0..16usize {
                let src = match load_layout {
                    Layout::Row => r * 16 + c,
                    Layout::Col => c * 16 + r,
                };
                let dst = match store_layout {
                    Layout::Row => r * 16 + c,
                    Layout::Col => c * 16 + r,
                };
                assert_eq!(
                    mem.read_u32(0x1000 + (dst * 4) as u64),
                    vals[src] as u32,
                    "({r},{c})"
                );
            }
        }
    }
}

#[test]
fn volta_double_loaded_fragments_are_consistent() {
    let mut rng = Rng::new(0xC04E6);
    for _ in 0..CASES {
        let vals: Vec<u16> = (0..256).map(|_| rng.next_u16()).collect();
        // Both holders of each A element must end up with identical bits,
        // and gather_tile must reconstruct the source matrix.
        let model = TensorCoreModel::volta();
        let shape = WmmaShape::M16N16K16;
        let mut mem = VecMemory::new();
        for (i, &v) in vals.iter().enumerate() {
            mem.write_u16((i * 2) as u64, v);
        }
        let mut regs = WarpRegFile::new(8);
        let map = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row);
        model.wmma_load(
            &WmmaDirective::Load {
                frag: FragmentKind::A,
                shape,
                layout: Layout::Row,
                ty: WmmaType::F16,
            },
            Reg(0),
            0,
            16,
            &mem,
            &mut regs,
        );
        let tile = gather_tile(&model, &map, Reg(0), &regs);
        for r in 0..16u8 {
            for c in 0..16u8 {
                let owners = map.owners(r, c);
                assert_eq!(owners.len(), 2);
                let bits: Vec<u32> = owners
                    .iter()
                    .map(|&(lane, slot)| {
                        tcsim_core::functional::read_frag_elem(&regs, lane, Reg(0), slot, 16)
                    })
                    .collect();
                assert_eq!(bits[0], bits[1]);
                assert_eq!(bits[0] as u16, vals[(r as usize) * 16 + c as usize]);
                assert_eq!(
                    tile.get_bits(r as usize, c as usize) as u16,
                    vals[(r as usize) * 16 + c as usize]
                );
            }
        }
    }
}
