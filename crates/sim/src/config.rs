//! Whole-GPU configurations.

use tcsim_mem::MemSystemConfig;
use tcsim_sm::SmConfig;

/// A GPU model: SM count and per-SM/memory-system parameters.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Per-SM configuration.
    pub sm: SmConfig,
    /// Memory-system configuration.
    pub mem: MemSystemConfig,
    /// Core clock in MHz (for TFLOPS conversions).
    pub clock_mhz: u32,
}

impl GpuConfig {
    /// NVIDIA Titan V (Volta): 80 SMs × 8 tensor cores at 1530 MHz —
    /// 640 tensor cores and 125 TFLOPS peak (§II-D).
    pub fn titan_v() -> GpuConfig {
        GpuConfig {
            name: "Titan V",
            num_sms: 80,
            sm: SmConfig::volta(),
            mem: MemSystemConfig::titan_v(),
            clock_mhz: 1530,
        }
    }

    /// NVIDIA RTX 2080 (Turing): 46 SMs at 1710 MHz boost, GDDR6 with 8
    /// memory partitions.
    pub fn rtx_2080() -> GpuConfig {
        GpuConfig {
            name: "RTX 2080",
            num_sms: 46,
            sm: SmConfig::turing(),
            mem: MemSystemConfig {
                partitions: 8,
                l2_slice_kib: 512,
                noc_latency: 30,
                dram_latency: 200,
                dram_cycles_per_sector: 2,
            },
            clock_mhz: 1710,
        }
    }

    /// NVIDIA Tesla T4 (Turing): the inference-optimized part the paper
    /// mentions in §I — 40 SMs at 1590 MHz boost, GDDR6.
    pub fn tesla_t4() -> GpuConfig {
        GpuConfig {
            name: "Tesla T4",
            num_sms: 40,
            sm: SmConfig::turing(),
            mem: MemSystemConfig {
                partitions: 8,
                l2_slice_kib: 512,
                noc_latency: 30,
                dram_latency: 220,
                dram_cycles_per_sector: 4,
            },
            clock_mhz: 1590,
        }
    }

    /// A down-scaled Volta for fast tests: 2 SMs, small L2.
    pub fn mini() -> GpuConfig {
        GpuConfig {
            name: "mini-volta",
            num_sms: 2,
            sm: SmConfig::volta(),
            mem: MemSystemConfig {
                partitions: 2,
                l2_slice_kib: 64,
                noc_latency: 20,
                dram_latency: 150,
                dram_cycles_per_sector: 2,
            },
            clock_mhz: 1000,
        }
    }

    /// Theoretical tensor-core peak in TFLOPS: SMs × tensor cores ×
    /// 64 MACs × 2 FLOPs × clock.
    pub fn tensor_peak_tflops(&self) -> f64 {
        let tcs = (self.num_sms * self.sm.sub_cores * self.sm.tensor_cores) as f64;
        tcs * 64.0 * 2.0 * self.clock_mhz as f64 * 1e6 / 1e12
    }

    /// FP32 FMA peak in TFLOPS.
    pub fn fp32_peak_tflops(&self) -> f64 {
        let lanes = (self.num_sms * self.sm.sub_cores * self.sm.fp32_lanes) as f64;
        lanes * 2.0 * self.clock_mhz as f64 * 1e6 / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_v_matches_paper_headline_numbers() {
        let c = GpuConfig::titan_v();
        // §II-D: 640 tensor cores across 80 SMs, 8 per SM, 125 TFLOPS at
        // 1530 MHz.
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.sm.sub_cores * c.sm.tensor_cores, 8);
        assert_eq!(c.num_sms * c.sm.sub_cores * c.sm.tensor_cores, 640);
        let peak = c.tensor_peak_tflops();
        assert!((peak - 125.0).abs() < 1.0, "tensor peak = {peak}");
        // §IV: 64 INT + 64 FP32 ALUs per SM.
        assert_eq!(c.sm.sub_cores * c.sm.fp32_lanes, 64);
        assert_eq!(c.sm.sub_cores * c.sm.int_lanes, 64);
        // FP32 peak at the same 1530 MHz clock: 5120 lanes × 2 ≈ 15.7
        // TFLOPS (the tensor peak is 8× this, as 64 MACs/TC vs 16
        // FFMA/sub-core lane group).
        assert!((c.fp32_peak_tflops() - 15.7).abs() < 0.5);
        assert!((peak / c.fp32_peak_tflops() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rtx_2080_uses_turing_tensor_model() {
        let c = GpuConfig::rtx_2080();
        assert!(!c.sm.volta_tensor);
        assert_eq!(c.num_sms, 46);
    }

    #[test]
    fn tesla_t4_is_a_turing_inference_part() {
        let c = GpuConfig::tesla_t4();
        assert!(!c.sm.volta_tensor);
        // 320 tensor cores × 64 MACs × 2 × 1.59 GHz ≈ 65 TFLOPS FP16.
        assert!((c.tensor_peak_tflops() - 65.1).abs() < 1.0);
    }

    #[test]
    fn mini_is_small() {
        assert!(GpuConfig::mini().num_sms <= 4);
    }
}
