//! The full-GPU simulator: CTA scheduling across SMs, the cycle loop with
//! event skipping, and launch statistics.

use crate::config::GpuConfig;
use crate::options::{CoreModel, SimOptions};
use crate::stats::LaunchStats;
use std::sync::Arc;
use tcsim_isa::{ByteMemory, Kernel, LaunchConfig};
use tcsim_mem::{DeviceMemory, MemSystem};
use tcsim_sm::{CtaRequirements, DecodedKernel, LaunchSpec, Sm};
use tcsim_trace::{NullTracer, TraceEvent, TraceSummary, Tracer};

/// A simulated GPU: SMs, the shared memory system, and device memory.
///
/// Kernels are launched through the typed [`crate::LaunchBuilder`] API; for
/// running many independent launches concurrently see [`crate::Sweep`].
///
/// # Example
///
/// ```
/// use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};
/// use tcsim_isa::{KernelBuilder, Operand, SpecialReg, MemWidth};
///
/// let mut gpu = Gpu::new(GpuConfig::mini());
/// let out = gpu.alloc(32 * 4);
///
/// let mut b = KernelBuilder::new("ids");
/// let p = b.param_u64("out");
/// let base = b.reg_pair();
/// b.ld_param(MemWidth::B64, base, p);
/// let tid = b.reg();
/// b.mov(tid, Operand::Special(SpecialReg::TidX));
/// let addr = b.reg_pair();
/// b.imad_wide(addr, tid, Operand::Imm(4), base);
/// b.st_global(MemWidth::B32, addr, 0, tid);
/// b.exit();
///
/// let stats = LaunchBuilder::new(b.build())
///     .grid(1u32)
///     .block(32u32)
///     .param_u64(out)
///     .launch(&mut gpu);
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.read_u32(out + 4 * 7), 7);
/// ```
pub struct Gpu {
    cfg: GpuConfig,
    core: CoreModel,
    sms: Vec<Sm>,
    mem_sys: MemSystem,
    device: DeviceMemory,
    profile_wmma: bool,
    tracer: Box<dyn Tracer>,
}

impl Gpu {
    /// Builds an idle GPU from a [`GpuConfig`] (all-default options) or an
    /// explicit [`SimOptions`] carrying the core model, tracer and
    /// profiling switches.
    pub fn new(options: impl Into<SimOptions>) -> Gpu {
        let opts = options.into();
        let cfg = opts.cfg;
        let mut gpu = Gpu {
            core: opts.core,
            sms: (0..cfg.num_sms)
                .map(|i| Sm::with_id(cfg.sm, i as u16))
                .collect(),
            mem_sys: MemSystem::new(cfg.mem),
            device: DeviceMemory::new(),
            profile_wmma: false,
            tracer: opts.tracer.unwrap_or_else(|| Box::new(NullTracer)),
            cfg,
        };
        if opts.profile_wmma {
            gpu.set_profile(true);
        }
        gpu
    }

    /// The GPU configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Which SM-core simulation loop this GPU runs.
    pub fn core_model(&self) -> CoreModel {
        self.core
    }

    pub(crate) fn install_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = tracer;
    }

    /// The currently installed tracer.
    pub fn tracer(&self) -> &dyn Tracer {
        self.tracer.as_ref()
    }

    /// Removes and returns the installed tracer, disabling tracing.
    pub fn take_tracer(&mut self) -> Box<dyn Tracer> {
        std::mem::replace(&mut self.tracer, Box::new(NullTracer))
    }

    /// Snapshot of the recorded trace events, oldest first (empty when
    /// tracing is disabled).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.tracer.snapshot()
    }

    fn set_profile(&mut self, on: bool) {
        self.profile_wmma = on;
        for sm in &mut self.sms {
            sm.set_profile_wmma(on);
        }
    }

    /// Allocates device memory (`cudaMalloc` stand-in).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        self.device.alloc(bytes)
    }

    /// Copies host data to device memory.
    pub fn memcpy_h2d(&mut self, addr: u64, data: &[u8]) {
        self.device.copy_from_host(addr, data);
    }

    /// Copies device memory back to the host.
    pub fn memcpy_d2h(&self, addr: u64, len: usize) -> Vec<u8> {
        self.device.copy_to_host(addr, len)
    }

    /// Reads one 32-bit device word (convenience for tests/examples).
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.device.read_u32(addr)
    }

    /// Writes one 32-bit device word.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.device.write_u32(addr, value);
    }

    /// Reads one 16-bit device word.
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.device.read_u16(addr)
    }

    /// Writes one 16-bit device word.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.device.write_u16(addr, value);
    }

    /// Direct access to device memory (workload setup).
    pub fn device_mut(&mut self) -> &mut DeviceMemory {
        &mut self.device
    }

    /// Runs one kernel to completion and returns its statistics — the
    /// engine behind [`LaunchBuilder::launch`].
    ///
    /// The launch boundary is fully cold: caches are flushed and all
    /// cycle-stamped scheduling state (SM functional-unit/MIO ready
    /// times, DRAM bus clocks) is reset, as a fresh simulation in
    /// GPGPU-Sim would be. Device memory persists. All counters in the
    /// returned [`LaunchStats`] are per-launch deltas, so repeating an
    /// identical launch on a reused GPU yields identical statistics
    /// (the [`crate::Session`] determinism contract).
    ///
    /// # Panics
    ///
    /// Panics if a CTA cannot ever fit on an SM (resource over-
    /// subscription) or the simulation exceeds an internal watchdog.
    pub(crate) fn run_kernel(
        &mut self,
        kernel: Kernel,
        launch: LaunchConfig,
        params: Vec<u8>,
    ) -> LaunchStats {
        let kernel = Arc::new(kernel);
        // Decode once per launch; every CTA on every SM shares the tables.
        let uops = Some(Arc::new(DecodedKernel::decode(&kernel, &self.cfg.sm)));
        let spec = LaunchSpec {
            kernel,
            params: Arc::new(params),
            launch,
            uops,
        };
        let req = spec.cta_requirements();
        assert!(
            spec.kernel.num_regs() <= 256,
            "kernel {} needs {} registers per thread (architectural limit: 256)",
            spec.kernel.name(),
            spec.kernel.num_regs()
        );
        assert!(
            Sm::new(self.cfg.sm).can_accept(&req),
            "kernel {} CTA ({} warps, {} regs, {} B shared) exceeds SM resources",
            spec.kernel.name(),
            req.warps,
            req.registers,
            req.shared_bytes
        );

        for sm in &mut self.sms {
            sm.flush_l1();
            sm.reset_clock();
        }
        self.mem_sys.flush();
        // Launch boundary for the trace too: the events (and the summary
        // in this launch's stats) cover exactly this kernel.
        self.tracer.clear_events();

        // Counter snapshots so the returned stats are per-launch deltas.
        let sm_before: Vec<tcsim_sm::SmStats> =
            self.sms.iter().map(|s| s.stats().clone()).collect();
        let l1_before = self.l1_aggregate();
        let l2_before = self.mem_sys.l2_stats();
        let dram_before = self.mem_sys.dram_sectors();
        let cycle = match self.core {
            CoreModel::EventDriven => self.run_loop_event(&spec, &req),
            CoreModel::CycleStepped => self.run_loop_cycle(&spec, &req),
        };

        let mut merged = tcsim_sm::SmStats::default();
        for (sm, before) in self.sms.iter().zip(&sm_before) {
            merged.merge(&sm.stats().delta_since(before));
        }
        let l1 = self.l1_aggregate().delta_since(&l1_before);
        let l2 = self.mem_sys.l2_stats().delta_since(&l2_before);
        let instructions = merged.issued;
        // Summarize the trace while it still holds exactly this launch's
        // window (the caller may reuse or replace the tracer afterwards).
        let trace = if self.tracer.enabled() {
            Some(TraceSummary::from_events(
                &self.tracer.snapshot(),
                self.tracer.dropped(),
            ))
        } else {
            None
        };
        LaunchStats {
            cycles: cycle.max(1),
            instructions,
            sm: merged,
            l1,
            l2,
            dram_sectors: self.mem_sys.dram_sectors() - dram_before,
            clock_mhz: self.cfg.clock_mhz,
            trace,
        }
    }

    /// The original reference loop: step every non-idle SM at every
    /// visited cycle, then advance the clock by one (if anything issued)
    /// or jump to the earliest wake hint.
    fn run_loop_cycle(&mut self, spec: &LaunchSpec, req: &CtaRequirements) -> u64 {
        let total_ctas = spec.launch.total_ctas();
        let mut next_cta: u64 = 0;
        let mut cycle: u64 = 0;

        loop {
            // CTA issue: fill SMs round-robin, one pass per cycle.
            if next_cta < total_ctas {
                for sm in &mut self.sms {
                    if next_cta >= total_ctas {
                        break;
                    }
                    if sm.can_accept(req) {
                        let id = spec.launch.grid.delinearize(next_cta);
                        sm.launch_cta(spec, id, cycle);
                        next_cta += 1;
                    }
                }
            }

            let mut any_issued = false;
            let mut hint = u64::MAX;
            let mut all_idle = true;
            for sm in &mut self.sms {
                if sm.idle() {
                    continue;
                }
                all_idle = false;
                match sm.step(
                    cycle,
                    &mut self.device,
                    &mut self.mem_sys,
                    self.tracer.as_mut(),
                ) {
                    None => any_issued = true,
                    Some(h) => hint = hint.min(h),
                }
            }

            if all_idle && next_cta >= total_ctas {
                break;
            }

            if any_issued || hint == u64::MAX {
                cycle += 1;
            } else {
                // Event skip: nothing can issue before `hint`.
                cycle = hint.max(cycle + 1);
            }
            assert!(cycle < WATCHDOG, "simulation watchdog tripped");
        }
        cycle
    }

    /// The event/wakeup-driven loop. Each SM's next interesting cycle is
    /// cached in `wake`; an SM is stepped only when the clock reaches it,
    /// and the clock advances straight to the minimum wake time.
    ///
    /// This visits exactly the cycle sequence of [`Gpu::run_loop_cycle`]
    /// and skips only SM steps that are provably no-ops: a step before an
    /// SM's wake time finds every warp still blocked (`block_until`
    /// values only change when a warp is actually retried or issued), so
    /// it emits no events, mutates nothing, and returns the same hint —
    /// which is why the two cores produce byte-identical statistics and
    /// traces.
    fn run_loop_event(&mut self, spec: &LaunchSpec, req: &CtaRequirements) -> u64 {
        let total_ctas = spec.launch.total_ctas();
        let mut next_cta: u64 = 0;
        let mut cycle: u64 = 0;
        let mut wake: Vec<u64> = vec![0; self.sms.len()];

        loop {
            if next_cta < total_ctas {
                for (i, sm) in self.sms.iter_mut().enumerate() {
                    if next_cta >= total_ctas {
                        break;
                    }
                    if sm.can_accept(req) {
                        let id = spec.launch.grid.delinearize(next_cta);
                        sm.launch_cta(spec, id, cycle);
                        next_cta += 1;
                        // New warps are issuable immediately.
                        wake[i] = cycle;
                    }
                }
            }

            let mut all_idle = true;
            let mut next = u64::MAX;
            for (i, sm) in self.sms.iter_mut().enumerate() {
                if sm.idle() {
                    continue;
                }
                all_idle = false;
                if wake[i] <= cycle {
                    wake[i] = match sm.step_event(
                        cycle,
                        &mut self.device,
                        &mut self.mem_sys,
                        self.tracer.as_mut(),
                    ) {
                        // Issued: the SM may issue again next cycle.
                        None => cycle + 1,
                        Some(h) => h.max(cycle + 1),
                    };
                }
                next = next.min(wake[i]);
            }

            if all_idle && next_cta >= total_ctas {
                break;
            }

            cycle = if next == u64::MAX {
                cycle + 1
            } else {
                next.max(cycle + 1)
            };
            assert!(cycle < WATCHDOG, "simulation watchdog tripped");
        }
        cycle
    }

    /// L1 counters summed over all SMs (cumulative).
    fn l1_aggregate(&self) -> tcsim_mem::CacheStats {
        let mut l1 = tcsim_mem::CacheStats::default();
        for sm in &self.sms {
            let s = sm.l1_stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.mshr_merges += s.mshr_merges;
            l1.writebacks += s.writebacks;
        }
        l1
    }
}

/// Cycle-count ceiling on a single launch; tripping it indicates a
/// scheduling deadlock, not a long workload.
const WATCHDOG: u64 = 50_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchBuilder;
    use tcsim_isa::{KernelBuilder, MemWidth, Operand, SpecialReg};

    fn ids_kernel() -> Kernel {
        let mut b = KernelBuilder::new("ids");
        let p = b.param_u64("out");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let tid = b.reg();
        b.mov(tid, Operand::Special(SpecialReg::TidX));
        let ctaid = b.reg();
        b.mov(ctaid, Operand::Special(SpecialReg::CtaIdX));
        let ntid = b.reg();
        b.mov(ntid, Operand::Special(SpecialReg::NTidX));
        let gid = b.reg();
        b.imad(gid, ctaid, Operand::Reg(ntid), Operand::Reg(tid));
        let addr = b.reg_pair();
        b.imad_wide(addr, gid, Operand::Imm(4), base);
        b.st_global(MemWidth::B32, addr, 0, gid);
        b.exit();
        b.build()
    }

    #[test]
    fn gpu_is_send() {
        // The sweep engine moves whole GPUs into worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<Gpu>();
    }

    #[test]
    fn multi_cta_grid_covers_all_elements() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let n = 1024u32;
        let out = gpu.alloc(n as u64 * 4);
        let stats = LaunchBuilder::new(ids_kernel())
            .grid(n / 128)
            .block(128u32)
            .param_u64(out)
            .launch(&mut gpu);
        for i in 0..n {
            assert_eq!(gpu.read_u32(out + 4 * i as u64), i, "element {i}");
        }
        assert_eq!(stats.sm.ctas_completed, 8);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn more_ctas_than_capacity_drain_in_waves() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let n = 64 * 256u32; // 64 CTAs of 256 threads on 2 SMs
        let out = gpu.alloc(n as u64 * 4);
        let stats = LaunchBuilder::new(ids_kernel())
            .grid(64u32)
            .block(256u32)
            .param_u64(out)
            .launch(&mut gpu);
        assert_eq!(stats.sm.ctas_completed, 64);
        assert_eq!(gpu.read_u32(out + 4 * (n as u64 - 1)), n - 1);
    }

    #[test]
    fn larger_grids_take_more_cycles() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let out = gpu.alloc(1 << 20);
        let small = LaunchBuilder::new(ids_kernel())
            .grid(4u32)
            .block(128u32)
            .param_u64(out)
            .launch(&mut gpu);
        let big = LaunchBuilder::new(ids_kernel())
            .grid(256u32)
            .block(128u32)
            .param_u64(out)
            .launch(&mut gpu);
        assert!(big.cycles > small.cycles);
        assert!(big.instructions > small.instructions);
    }

    #[test]
    #[should_panic(expected = "exceeds SM resources")]
    fn oversized_cta_is_rejected() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let mut b = KernelBuilder::new("big");
        b.shared_alloc(200 * 1024);
        b.exit();
        let _ = LaunchBuilder::new(b.build())
            .grid(1u32)
            .block(32u32)
            .launch(&mut gpu);
    }

    #[test]
    fn stats_track_memory_traffic() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let out = gpu.alloc(4096);
        let stats = LaunchBuilder::new(ids_kernel())
            .grid(8u32)
            .block(128u32)
            .param_u64(out)
            .launch(&mut gpu);
        assert!(stats.sm.global_txns > 0);
        assert!(stats.l2.accesses() > 0);
    }
}
