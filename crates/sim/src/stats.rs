//! Launch statistics: cycles, IPC, memory traffic and WMMA latency
//! distributions.

use tcsim_mem::CacheStats;
use tcsim_sm::{SmStats, WmmaKind};

/// Results of one kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchStats {
    /// Total GPU cycles from launch to the last CTA's completion.
    pub cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Merged per-SM counters.
    pub sm: SmStats,
    /// Aggregate L1 statistics across SMs.
    pub l1: CacheStats,
    /// Aggregate L2 statistics across partitions.
    pub l2: CacheStats,
    /// DRAM sectors transferred.
    pub dram_sectors: u64,
    /// Core clock (MHz), for time/TFLOPS conversions.
    pub clock_mhz: u32,
}

impl LaunchStats {
    /// Warp instructions per cycle — the correlation metric of Fig 14b.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }

    /// Wall-clock execution time implied by the cycle count, in seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.clock_mhz as f64 * 1e6)
    }

    /// Achieved TFLOPS for a workload of `flops` floating-point operations.
    pub fn tflops(&self, flops: f64) -> f64 {
        flops / self.seconds() / 1e12
    }

    /// Latencies of all profiled WMMA instructions of `kind`, in issue
    /// order (requires `Gpu::set_profile_wmma(true)`).
    pub fn wmma_latencies(&self, kind: WmmaKind) -> Vec<u64> {
        self.sm
            .wmma_samples
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.latency)
            .collect()
    }
}

/// Summary statistics of a latency distribution (Fig 15/16 reporting).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Distribution {
    /// Sample count.
    pub count: usize,
    /// Minimum latency.
    pub min: u64,
    /// Median latency.
    pub median: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// Maximum latency.
    pub max: u64,
    /// Mean latency.
    pub mean: f64,
}

impl Distribution {
    /// Computes the summary of a latency sample set.
    ///
    /// Returns `None` for an empty set.
    pub fn of(samples: &[u64]) -> Option<Distribution> {
        if samples.is_empty() {
            return None;
        }
        let mut v = samples.to_vec();
        v.sort_unstable();
        let n = v.len();
        Some(Distribution {
            count: n,
            min: v[0],
            median: v[n / 2],
            p95: v[(n * 95 / 100).min(n - 1)],
            max: v[n - 1],
            mean: v.iter().sum::<u64>() as f64 / n as f64,
        })
    }
}

/// Pearson correlation coefficient between two series — the paper's IPC
/// correlation metric (99.6%, §V-B).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(!x.is_empty());
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_summary() {
        let d = Distribution::of(&[5, 1, 9, 3, 7]).unwrap();
        assert_eq!(d.count, 5);
        assert_eq!(d.min, 1);
        assert_eq!(d.median, 5);
        assert_eq!(d.max, 9);
        assert_eq!(d.mean, 5.0);
        assert!(Distribution::of(&[]).is_none());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 0.3);
    }

    #[test]
    fn ipc_and_tflops_math() {
        let s = LaunchStats {
            cycles: 1000,
            instructions: 500,
            sm: Default::default(),
            l1: Default::default(),
            l2: Default::default(),
            dram_sectors: 0,
            clock_mhz: 1000,
        };
        assert_eq!(s.ipc(), 0.5);
        assert!((s.seconds() - 1e-6).abs() < 1e-15);
        // 1e9 FLOPs in 1 µs = 1000 TFLOPS.
        assert!((s.tflops(1e9) - 1000.0).abs() < 1e-6);
    }
}
