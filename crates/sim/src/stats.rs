//! Launch statistics: cycles, IPC, memory traffic and WMMA latency
//! distributions.

use tcsim_mem::CacheStats;
use tcsim_sm::{SmStats, WmmaKind};
use tcsim_trace::TraceSummary;

/// Results of one kernel launch.
///
/// Derives `PartialEq` so parallel-sweep results can be asserted
/// byte-identical to serial runs (the determinism contract of
/// [`crate::Sweep`]).
#[derive(Clone, Debug, PartialEq)]
pub struct LaunchStats {
    /// Total GPU cycles from launch to the last CTA's completion.
    pub cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Merged per-SM counters.
    pub sm: SmStats,
    /// Aggregate L1 statistics across SMs.
    pub l1: CacheStats,
    /// Aggregate L2 statistics across partitions.
    pub l2: CacheStats,
    /// DRAM sectors transferred.
    pub dram_sectors: u64,
    /// Core clock (MHz), for time/TFLOPS conversions.
    pub clock_mhz: u32,
    /// Trace-derived metrics (stall breakdown, HMMA occupancy); `None`
    /// unless a tracer was installed via `SimOptions::tracer` or
    /// `LaunchBuilder::tracer`.
    pub trace: Option<TraceSummary>,
}

impl LaunchStats {
    /// Warp instructions per cycle — the correlation metric of Fig 14b.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }

    /// Wall-clock execution time implied by the cycle count, in seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / (self.clock_mhz as f64 * 1e6)
    }

    /// Achieved TFLOPS for a workload of `flops` floating-point operations.
    pub fn tflops(&self, flops: f64) -> f64 {
        flops / self.seconds() / 1e12
    }

    /// Latencies of all profiled WMMA instructions of `kind`, in issue
    /// order (requires `SimOptions::profile_wmma(true)`).
    pub fn wmma_latencies(&self, kind: WmmaKind) -> Vec<u64> {
        self.sm
            .wmma_samples
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.latency)
            .collect()
    }

    /// Serializes the statistics as a JSON object (hand-rolled writer, no
    /// external crates). The WMMA sample list is summarized by count, not
    /// dumped, to keep result files small.
    ///
    /// # Example
    ///
    /// ```
    /// # use tcsim_sim::LaunchStats;
    /// let s = LaunchStats {
    ///     cycles: 100, instructions: 50,
    ///     sm: Default::default(), l1: Default::default(),
    ///     l2: Default::default(), dram_sectors: 0, clock_mhz: 1000,
    ///     trace: None,
    /// };
    /// assert!(s.to_json().starts_with("{\"cycles\":100,"));
    /// ```
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_u64("cycles", self.cycles);
        w.field_u64("instructions", self.instructions);
        w.field_f64("ipc", self.ipc());
        w.field_u64("clock_mhz", self.clock_mhz as u64);
        w.field_f64("seconds", self.seconds());
        w.field_u64("sm_issued", self.sm.issued);
        w.raw_field(
            "sm_issued_by_unit",
            &format!(
                "[{}]",
                self.sm
                    .issued_by_unit
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        w.field_u64("sm_active_cycles", self.sm.active_cycles);
        w.field_u64("sm_barriers", self.sm.barriers);
        w.field_u64("sm_ctas_completed", self.sm.ctas_completed);
        w.field_u64("sm_global_txns", self.sm.global_txns);
        w.field_u64("sm_shared_conflict_passes", self.sm.shared_conflict_passes);
        w.field_u64("sm_reg_bank_stalls", self.sm.reg_bank_stalls);
        w.field_u64("sm_wmma_samples", self.sm.wmma_samples.len() as u64);
        w.field_u64("l1_hits", self.l1.hits);
        w.field_u64("l1_misses", self.l1.misses);
        w.field_u64("l1_mshr_merges", self.l1.mshr_merges);
        w.field_u64("l1_writebacks", self.l1.writebacks);
        w.field_u64("l2_hits", self.l2.hits);
        w.field_u64("l2_misses", self.l2.misses);
        w.field_u64("l2_mshr_merges", self.l2.mshr_merges);
        w.field_u64("l2_writebacks", self.l2.writebacks);
        w.field_u64("dram_sectors", self.dram_sectors);
        if let Some(trace) = &self.trace {
            w.raw_field("trace", &trace.to_json());
        }
        w.finish()
    }
}

/// A minimal JSON object writer (no serde; the crate registry is not
/// reachable from the build environment). Strings are escaped for the
/// characters that can occur in kernel/config names.
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    first: bool,
}

impl JsonWriter {
    /// Starts an object (`{`).
    pub fn object() -> JsonWriter {
        JsonWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape_json(name));
        self.buf.push_str("\":");
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        self.buf.push_str(&v.to_string());
    }

    /// Adds a float field (non-finite values become `null`).
    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.key(name);
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.6}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        self.buf.push('"');
        self.buf.push_str(&escape_json(v));
        self.buf.push('"');
    }

    /// Adds a pre-serialized JSON value (array or object) verbatim.
    pub fn raw_field(&mut self, name: &str, json: &str) {
        self.key(name);
        self.buf.push_str(json);
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Summary statistics of a latency distribution (Fig 15/16 reporting).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Distribution {
    /// Sample count.
    pub count: usize,
    /// Minimum latency.
    pub min: u64,
    /// Median latency.
    pub median: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// Maximum latency.
    pub max: u64,
    /// Mean latency.
    pub mean: f64,
}

impl Distribution {
    /// Computes the summary of a latency sample set.
    ///
    /// Returns `None` for an empty set.
    pub fn of(samples: &[u64]) -> Option<Distribution> {
        if samples.is_empty() {
            return None;
        }
        let mut v = samples.to_vec();
        v.sort_unstable();
        let n = v.len();
        Some(Distribution {
            count: n,
            min: v[0],
            median: v[n / 2],
            p95: v[(n * 95 / 100).min(n - 1)],
            max: v[n - 1],
            mean: v.iter().sum::<u64>() as f64 / n as f64,
        })
    }
}

/// Pearson correlation coefficient between two series — the paper's IPC
/// correlation metric (99.6%, §V-B).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(!x.is_empty());
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_json_handles_control_chars_and_unicode() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("a\nb\tc\r"), "a\\nb\\tc\\r");
        // Control characters without a short escape use \uXXXX.
        assert_eq!(escape_json("\0"), "\\u0000");
        assert_eq!(escape_json("\x1f"), "\\u001f");
        assert_eq!(escape_json("\x01\x02"), "\\u0001\\u0002");
        // Non-ASCII passes through untouched (JSON is UTF-8).
        assert_eq!(escape_json("gemm-α×β"), "gemm-α×β");
    }

    #[test]
    fn field_str_round_trips_through_the_validator() {
        let mut w = JsonWriter::object();
        w.field_str("name", "weird\0name\x1fwith\nβ");
        w.field_str("empty", "");
        let json = w.finish();
        tcsim_trace::validate_json(&json).expect("escaped output must parse");
        assert!(json.contains("\\u0000"));
        assert!(json.contains("\\u001f"));
    }

    #[test]
    fn launch_stats_json_is_valid_with_and_without_trace() {
        let mut s = LaunchStats {
            cycles: 100,
            instructions: 50,
            sm: Default::default(),
            l1: Default::default(),
            l2: Default::default(),
            dram_sectors: 0,
            clock_mhz: 1000,
            trace: None,
        };
        tcsim_trace::validate_json(&s.to_json()).expect("no-trace JSON");
        assert!(!s.to_json().contains("\"trace\""));
        s.trace = Some(TraceSummary::default());
        let json = s.to_json();
        tcsim_trace::validate_json(&json).expect("with-trace JSON");
        assert!(json.contains("\"trace\":{"));
    }

    #[test]
    fn distribution_summary() {
        let d = Distribution::of(&[5, 1, 9, 3, 7]).unwrap();
        assert_eq!(d.count, 5);
        assert_eq!(d.min, 1);
        assert_eq!(d.median, 5);
        assert_eq!(d.max, 9);
        assert_eq!(d.mean, 5.0);
        assert!(Distribution::of(&[]).is_none());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let y = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&x, &y).abs() < 0.3);
    }

    #[test]
    fn ipc_and_tflops_math() {
        let s = LaunchStats {
            cycles: 1000,
            instructions: 500,
            sm: Default::default(),
            l1: Default::default(),
            l2: Default::default(),
            dram_sectors: 0,
            clock_mhz: 1000,
            trace: None,
        };
        assert_eq!(s.ipc(), 0.5);
        assert!((s.seconds() - 1e-6).abs() < 1e-15);
        // 1e9 FLOPs in 1 µs = 1000 TFLOPS.
        assert!((s.tflops(1e9) - 1000.0).abs() < 1e-6);
    }
}
