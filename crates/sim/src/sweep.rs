//! Parallel sweep engine: run many independent simulations concurrently.
//!
//! The figure/table experiments are embarrassingly parallel — each point
//! is one `(GpuConfig, kernel, launch, params)` simulation that shares
//! nothing with its neighbours. [`Sweep`] collects such jobs and executes
//! them either serially or on a work-stealing pool of OS threads
//! (`std::thread::scope` over a shared deque — no external crates).
//!
//! # Determinism contract
//!
//! `run_parallel` produces **byte-identical** results to `run_serial`,
//! regardless of thread count or scheduling order:
//!
//! * every job gets a **fresh [`Gpu`]** built from its own config, so no
//!   allocator state, cache contents or statistics leak between jobs
//!   (device-memory addresses would otherwise depend on which worker ran
//!   the job last);
//! * results are written into an index-addressed slot vector, so output
//!   order is submission order, never completion order;
//! * the simulator itself is single-threaded per job and uses no global
//!   mutable state (the fragment-map caches in `tcsim-core` are
//!   `thread_local!` memoizations of pure functions).
//!
//! # Example
//!
//! ```
//! use tcsim_sim::{GpuConfig, LaunchBuilder, Sweep};
//! use tcsim_isa::KernelBuilder;
//!
//! let mut sweep = Sweep::new();
//! for n in [64u32, 128, 256] {
//!     sweep.add(GpuConfig::mini(), move |gpu| {
//!         let mut b = KernelBuilder::new("noop");
//!         b.exit();
//!         LaunchBuilder::new(b.build())
//!             .grid(n / 64)
//!             .block(64u32)
//!             .launch(gpu)
//!             .cycles
//!     });
//! }
//! let out = sweep.run_parallel(2);
//! assert_eq!(out.results.len(), 3);
//! assert_eq!(out.stats.jobs, 3);
//! ```

use crate::config::GpuConfig;
use crate::gpu::Gpu;
use crate::options::{CoreModel, SimOptions};
use crate::stats::LaunchStats;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

type JobFn<T> = Box<dyn FnOnce(&mut Gpu) -> T + Send>;

struct Job<T> {
    cfg: GpuConfig,
    weight: u64,
    run: JobFn<T>,
}

/// Execution summary of one sweep run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepStats {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads used (1 for a serial run).
    pub threads: usize,
    /// Wall-clock time of the whole sweep, in seconds.
    pub wall_seconds: f64,
}

/// Results of a sweep: per-job outputs in submission order, plus the
/// run's execution summary.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// One result per job, in the order the jobs were [`Sweep::add`]ed.
    pub results: Vec<T>,
    /// Wall-clock and sizing summary.
    pub stats: SweepStats,
}

/// Access to the [`LaunchStats`] inside a sweep-job result, enabling
/// [`SweepOutcome::total_cycles`]-style aggregation over wrapper types
/// (e.g. the CUTLASS host's `GemmRun`).
pub trait HasLaunchStats {
    /// The launch statistics of this result.
    fn launch_stats(&self) -> &LaunchStats;
}

impl HasLaunchStats for LaunchStats {
    fn launch_stats(&self) -> &LaunchStats {
        self
    }
}

impl<T: HasLaunchStats> SweepOutcome<T> {
    /// Sum of simulated cycles across all jobs.
    pub fn total_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.launch_stats().cycles).sum()
    }

    /// Sum of issued warp instructions across all jobs.
    pub fn total_instructions(&self) -> u64 {
        self.results
            .iter()
            .map(|r| r.launch_stats().instructions)
            .sum()
    }
}

/// A batch of independent simulation jobs.
///
/// Each job owns a [`GpuConfig`] and a closure that receives a freshly
/// built [`Gpu`] and returns any `Send` result — typically a
/// [`LaunchStats`] from a [`crate::LaunchBuilder`] launch.
#[derive(Default)]
pub struct Sweep<T> {
    jobs: Vec<Job<T>>,
    core: CoreModel,
}

impl<T: Send> Sweep<T> {
    /// Creates an empty sweep.
    pub fn new() -> Sweep<T> {
        Sweep {
            jobs: Vec::new(),
            core: CoreModel::default(),
        }
    }

    /// Selects the SM-core model every job's fresh [`Gpu`] is built with
    /// (default: [`CoreModel::EventDriven`]). Both cores produce
    /// identical results; this knob exists for differential testing and
    /// benchmarking.
    pub fn core_model(&mut self, core: CoreModel) -> &mut Sweep<T> {
        self.core = core;
        self
    }

    /// Adds a job with default scheduling weight.
    pub fn add(
        &mut self,
        cfg: GpuConfig,
        f: impl FnOnce(&mut Gpu) -> T + Send + 'static,
    ) -> &mut Sweep<T> {
        self.add_weighted(cfg, 0, f)
    }

    /// Adds a job with an estimated cost `weight` (any monotone proxy,
    /// e.g. `n³` for an n×n×n GEMM). When weights are given, the parallel
    /// scheduler starts heavier jobs first (longest-processing-time
    /// order), which tightens the makespan when job sizes are skewed.
    /// Result order is unaffected — it is always submission order.
    pub fn add_weighted(
        &mut self,
        cfg: GpuConfig,
        weight: u64,
        f: impl FnOnce(&mut Gpu) -> T + Send + 'static,
    ) -> &mut Sweep<T> {
        self.jobs.push(Job {
            cfg,
            weight,
            run: Box::new(f),
        });
        self
    }

    /// Number of jobs queued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the sweep has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job on the calling thread, in submission order.
    pub fn run_serial(self) -> SweepOutcome<T> {
        let start = Instant::now();
        let n_jobs = self.jobs.len();
        let core = self.core;
        let results = self
            .jobs
            .into_iter()
            .map(|job| {
                let mut gpu = Gpu::new(SimOptions::new(job.cfg).core(core));
                (job.run)(&mut gpu)
            })
            .collect();
        SweepOutcome {
            results,
            stats: SweepStats {
                jobs: n_jobs,
                threads: 1,
                wall_seconds: start.elapsed().as_secs_f64(),
            },
        }
    }

    /// Runs the jobs on `threads` worker threads, returning results in
    /// submission order with statistics identical to [`Sweep::run_serial`]
    /// (see the module-level determinism contract).
    ///
    /// `threads` is clamped to `[1, jobs]`; `run_parallel(1)` degenerates
    /// to a serial run on one worker thread.
    pub fn run_parallel(self, threads: usize) -> SweepOutcome<T> {
        let start = Instant::now();
        let n_jobs = self.jobs.len();
        let core = self.core;
        let workers = threads.max(1).min(n_jobs.max(1));

        // Index jobs by submission order, then schedule heaviest-first
        // (stable, so unweighted sweeps keep submission order).
        let mut indexed: Vec<(usize, Job<T>)> = self.jobs.into_iter().enumerate().collect();
        indexed.sort_by_key(|(_, job)| std::cmp::Reverse(job.weight));

        let queue: Mutex<VecDeque<(usize, Job<T>)>> = Mutex::new(indexed.into());
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n_jobs).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = queue.lock().unwrap().pop_front();
                    let Some((idx, job)) = next else { break };
                    let mut gpu = Gpu::new(SimOptions::new(job.cfg).core(core));
                    let result = (job.run)(&mut gpu);
                    slots.lock().unwrap()[idx] = Some(result);
                });
            }
        });

        let results = slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("worker panicked before storing a result"))
            .collect();
        SweepOutcome {
            results,
            stats: SweepStats {
                jobs: n_jobs,
                threads: workers,
                wall_seconds: start.elapsed().as_secs_f64(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchBuilder;
    use tcsim_isa::{KernelBuilder, MemWidth, Operand, SpecialReg};

    fn ids_kernel() -> tcsim_isa::Kernel {
        let mut b = KernelBuilder::new("ids");
        let p = b.param_u64("out");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let tid = b.reg();
        b.mov(tid, Operand::Special(SpecialReg::TidX));
        let addr = b.reg_pair();
        b.imad_wide(addr, tid, Operand::Imm(4), base);
        b.st_global(MemWidth::B32, addr, 0, tid);
        b.exit();
        b.build()
    }

    fn launch_ids(gpu: &mut Gpu, ctas: u32) -> LaunchStats {
        let out = gpu.alloc(u64::from(ctas) * 32 * 4);
        LaunchBuilder::new(ids_kernel())
            .grid(ctas)
            .block(32u32)
            .param_u64(out)
            .launch(gpu)
    }

    fn sweep_of(sizes: &[u32]) -> Sweep<LaunchStats> {
        let mut s = Sweep::new();
        for &ctas in sizes {
            s.add_weighted(GpuConfig::mini(), u64::from(ctas), move |gpu| {
                launch_ids(gpu, ctas)
            });
        }
        s
    }

    const SIZES: [u32; 5] = [1, 8, 2, 16, 4];

    #[test]
    fn parallel_matches_serial_exactly() {
        let serial = sweep_of(&SIZES).run_serial();
        let parallel = sweep_of(&SIZES).run_parallel(4);
        assert_eq!(serial.results, parallel.results);
        assert_eq!(parallel.stats.jobs, SIZES.len());
        assert_eq!(parallel.stats.threads, 4);
    }

    #[test]
    fn results_are_in_submission_order() {
        // Weights force heaviest-first execution; results must still come
        // back in submission order.
        let out = sweep_of(&SIZES).run_parallel(2);
        for (stats, &ctas) in out.results.iter().zip(&SIZES) {
            assert_eq!(stats.sm.ctas_completed, u64::from(ctas));
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        let out = sweep_of(&SIZES[..2]).run_parallel(64);
        assert_eq!(out.stats.threads, 2, "never more workers than jobs");
        let out = sweep_of(&SIZES[..2]).run_parallel(0);
        assert_eq!(out.stats.threads, 1, "at least one worker");
    }

    #[test]
    fn empty_sweep_runs() {
        let out = Sweep::<LaunchStats>::new().run_parallel(8);
        assert!(out.results.is_empty());
        assert_eq!(out.stats.jobs, 0);
    }

    #[test]
    fn aggregation_via_has_launch_stats() {
        let serial = sweep_of(&SIZES).run_serial();
        let total: u64 = serial.results.iter().map(|r| r.cycles).sum();
        assert_eq!(serial.total_cycles(), total);
        assert!(serial.total_instructions() > 0);
        assert_eq!(serial.stats.jobs, SIZES.len());
        assert_eq!(serial.stats.threads, 1);
    }
}
