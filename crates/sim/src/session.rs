//! Multi-launch sessions: a sequence of named kernel launches on one
//! [`Gpu`], with per-launch statistics collected in order.
//!
//! A DNN inference pass is many dependent launches over the same device
//! memory — layer N's output buffer is layer N+1's input. [`Session`]
//! wraps that pattern: each [`Session::run`] call executes one
//! [`LaunchBuilder`] on the shared GPU and records its stats under a
//! caller-chosen name.
//!
//! # Launch boundaries
//!
//! The simulator flushes L1/L2 at every launch boundary (see
//! `Gpu::run_kernel`), so launches in a session are timed as cold-cache
//! kernels — the same convention GPGPU-Sim uses when replaying a kernel
//! sequence, and the reason per-launch cycle counts are independent of
//! session order. Device *memory* contents persist across launches;
//! only the cache and trace state are reset. When tracing is requested,
//! each launch gets its own [`tcsim_trace::RingTracer`] window, so every
//! recorded [`LaunchStats::trace`] summary covers exactly one kernel.

use crate::gpu::Gpu;
use crate::launch::LaunchBuilder;
use crate::stats::LaunchStats;
use tcsim_trace::RingTracer;

/// One named launch record of a [`Session`].
#[derive(Clone, Debug)]
pub struct SessionEntry {
    /// Caller-supplied launch name (e.g. a layer name).
    pub name: String,
    /// The launch's statistics (with `trace` filled in when the session
    /// traces).
    pub stats: LaunchStats,
}

/// A sequence of kernel launches sharing one GPU and its device memory.
///
/// # Example
///
/// ```
/// use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder, Session};
/// use tcsim_isa::KernelBuilder;
///
/// let gpu = Gpu::new(GpuConfig::mini());
/// let mut session = Session::new(gpu).with_tracing(true);
/// let mut b = KernelBuilder::new("noop");
/// b.exit();
/// let kernel = b.build();
/// session.run("first", LaunchBuilder::new(kernel.clone()).grid(1u32).block(32u32));
/// session.run("second", LaunchBuilder::new(kernel).grid(1u32).block(32u32));
/// assert_eq!(session.entries().len(), 2);
/// assert!(session.entries()[0].stats.trace.is_some());
/// let total: u64 = session.total_cycles();
/// assert!(total > 0);
/// ```
pub struct Session {
    gpu: Gpu,
    trace: bool,
    entries: Vec<SessionEntry>,
}

impl Session {
    /// Wraps `gpu` in a fresh session with no recorded launches.
    pub fn new(gpu: Gpu) -> Session {
        Session {
            gpu,
            trace: false,
            entries: Vec::new(),
        }
    }

    /// Enables (or disables) per-launch tracing: each subsequent launch
    /// records into a fresh ring tracer and its stats carry a
    /// [`tcsim_trace::TraceSummary`].
    pub fn with_tracing(mut self, on: bool) -> Session {
        self.trace = on;
        self
    }

    /// The underlying GPU — for allocations and host↔device copies
    /// between launches.
    pub fn gpu(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    /// Executes `builder` on the session GPU, records the result under
    /// `name`, and returns a reference to the recorded entry.
    pub fn run(&mut self, name: impl Into<String>, builder: LaunchBuilder) -> &SessionEntry {
        let builder = if self.trace {
            builder.tracer(RingTracer::new())
        } else {
            builder
        };
        let stats = builder.launch(&mut self.gpu);
        self.entries.push(SessionEntry {
            name: name.into(),
            stats,
        });
        self.entries.last().expect("just pushed")
    }

    /// All launches run so far, in execution order.
    pub fn entries(&self) -> &[SessionEntry] {
        &self.entries
    }

    /// Sum of cycles over all recorded launches — the serialized
    /// end-to-end latency of the sequence.
    pub fn total_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.stats.cycles).sum()
    }

    /// Sum of instructions over all recorded launches.
    pub fn total_instructions(&self) -> u64 {
        self.entries.iter().map(|e| e.stats.instructions).sum()
    }

    /// Consumes the session, returning the GPU and the launch records.
    pub fn finish(self) -> (Gpu, Vec<SessionEntry>) {
        (self.gpu, self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use tcsim_isa::{KernelBuilder, MemWidth, Operand, SpecialReg};

    /// out[gid] = out[gid] + 1 — accumulates across launches, proving
    /// device memory persists while caches are flushed.
    fn increment_kernel() -> tcsim_isa::Kernel {
        let mut b = KernelBuilder::new("incr");
        let p = b.param_u64("out");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let tid = b.reg();
        b.mov(tid, Operand::Special(SpecialReg::TidX));
        let addr = b.reg_pair();
        b.imad_wide(addr, tid, Operand::Imm(4), base);
        let v = b.reg();
        b.ld_global(MemWidth::B32, v, addr, 0);
        b.iadd(v, v, Operand::Imm(1));
        b.st_global(MemWidth::B32, addr, 0, v);
        b.exit();
        b.build()
    }

    #[test]
    fn device_memory_persists_across_launches() {
        let mut session = Session::new(Gpu::new(GpuConfig::mini()));
        let out = session.gpu().alloc(32 * 4);
        for i in 0..3 {
            session.run(
                format!("pass{i}"),
                LaunchBuilder::new(increment_kernel())
                    .grid(1u32)
                    .block(32u32)
                    .param_u64(out),
            );
        }
        assert_eq!(
            session.gpu().read_u32(out),
            3,
            "three increments must accumulate"
        );
        assert_eq!(session.entries().len(), 3);
        assert_eq!(session.entries()[1].name, "pass1");
    }

    #[test]
    fn launches_are_cold_cache_and_order_independent() {
        // The same kernel launched twice in one session must cost the
        // same cycles both times: the L1/L2 flush at the launch boundary
        // means the second run sees no warm cache from the first.
        let mut session = Session::new(Gpu::new(GpuConfig::mini()));
        let out = session.gpu().alloc(32 * 4);
        let mk = || {
            LaunchBuilder::new(increment_kernel())
                .grid(1u32)
                .block(32u32)
                .param_u64(out)
        };
        session.run("a", mk());
        session.run("b", mk());
        let (_, entries) = session.finish();
        assert_eq!(entries[0].stats.cycles, entries[1].stats.cycles);
        assert_eq!(entries[0].stats.l1, entries[1].stats.l1);
    }

    #[test]
    fn tracing_gives_each_launch_its_own_window() {
        let mut session = Session::new(Gpu::new(GpuConfig::mini())).with_tracing(true);
        let out = session.gpu().alloc(32 * 4);
        let mk = || {
            LaunchBuilder::new(increment_kernel())
                .grid(1u32)
                .block(32u32)
                .param_u64(out)
        };
        session.run("a", mk());
        session.run("b", mk());
        let a = session.entries()[0].stats.trace.clone().expect("traced");
        let b = session.entries()[1].stats.trace.clone().expect("traced");
        // Identical launches, separate windows: summaries match instead
        // of the second accumulating the first's events.
        assert_eq!(a.events, b.events);
    }
}
