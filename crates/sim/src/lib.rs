#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Full-GPU cycle-level simulator: CTA scheduling across SMs, shared
//! L2/DRAM, kernel launch, statistics and GPU configurations.
//!
//! The top level corresponding to GPGPU-Sim in the paper (§V): kernels
//! expressed in the `tcsim-isa` PTX subset run across many SMs with the
//! tensor-core model of `tcsim-core` attached, producing the cycle and
//! IPC numbers compared against hardware in Fig 14.
//!
//! # Example
//!
//! ```
//! use tcsim_sim::{Gpu, GpuConfig};
//!
//! let gpu = Gpu::new(GpuConfig::titan_v());
//! assert_eq!(gpu.config().num_sms, 80);
//! assert!((gpu.config().tensor_peak_tflops() - 125.0).abs() < 1.0);
//! ```

mod config;
mod gpu;
mod launch;
mod options;
mod session;
mod stats;
mod sweep;

pub use config::GpuConfig;
pub use gpu::Gpu;
pub use launch::{LaunchBuilder, LaunchError};
pub use options::{CoreModel, SimOptions};
pub use session::{Session, SessionEntry};
pub use stats::{pearson, Distribution, JsonWriter, LaunchStats};
pub use sweep::{HasLaunchStats, Sweep, SweepOutcome, SweepStats};
pub use tcsim_verify::{Diagnostic, LaunchGeometry, Severity};
