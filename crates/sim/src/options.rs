//! Typed simulation options.
//!
//! [`SimOptions`] gathers tracing, WMMA latency profiling and the
//! core-model selector into one builder consumed by [`crate::Gpu::new`]
//! — the sole way to configure these (the transitional `Gpu` setters
//! were removed once every caller migrated).
//! A plain [`GpuConfig`] converts into default options, so existing
//! `Gpu::new(GpuConfig::titan_v())` call sites keep working unchanged.
//!
//! # Example
//!
//! ```
//! use tcsim_sim::{CoreModel, Gpu, GpuConfig, SimOptions};
//! use tcsim_trace::RingTracer;
//!
//! // Defaults: event-driven core, no tracing, no WMMA profiling.
//! let gpu = Gpu::new(GpuConfig::mini());
//! assert_eq!(gpu.core_model(), CoreModel::EventDriven);
//!
//! // Everything explicit:
//! let gpu = Gpu::new(
//!     SimOptions::new(GpuConfig::mini())
//!         .core(CoreModel::CycleStepped)
//!         .profile_wmma(true)
//!         .tracer(RingTracer::new()),
//! );
//! assert_eq!(gpu.core_model(), CoreModel::CycleStepped);
//! assert!(gpu.tracer().enabled());
//! ```

use crate::config::GpuConfig;
use tcsim_trace::Tracer;

/// Which SM-core simulation loop drives a [`crate::Gpu`].
///
/// Both models produce **identical** launch statistics and trace event
/// streams (this is pinned by differential tests over the conformance
/// corpus and the figure configurations); they differ only in wall-clock
/// speed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CoreModel {
    /// Event/wakeup-driven core (the default): each SM caches the next
    /// cycle at which it could issue, the global clock jumps to the
    /// minimum, and blocked issue attempts run against decode-once μop
    /// tables — 1.5–3.6× faster depending on how latency-bound the
    /// workload is (see `results/BENCH_core_speedup.json`).
    #[default]
    EventDriven,
    /// The original cycle-stepped core: every non-idle SM is stepped at
    /// every visited cycle and re-interprets instructions on each issue
    /// attempt. Kept as the reference implementation.
    CycleStepped,
}

/// Builder-style options for constructing a [`crate::Gpu`].
///
/// See the module-level example. Obtain one with [`SimOptions::new`] or
/// via `From<GpuConfig>`.
pub struct SimOptions {
    pub(crate) cfg: GpuConfig,
    pub(crate) core: CoreModel,
    pub(crate) profile_wmma: bool,
    pub(crate) tracer: Option<Box<dyn Tracer>>,
}

impl SimOptions {
    /// Default options for `cfg`: event-driven core, tracing disabled,
    /// WMMA profiling off.
    pub fn new(cfg: GpuConfig) -> SimOptions {
        SimOptions {
            cfg,
            core: CoreModel::default(),
            profile_wmma: false,
            tracer: None,
        }
    }

    /// Selects the SM-core simulation loop.
    pub fn core(mut self, core: CoreModel) -> SimOptions {
        self.core = core;
        self
    }

    /// Enables per-WMMA-instruction latency profiling (Fig 15/16).
    pub fn profile_wmma(mut self, on: bool) -> SimOptions {
        self.profile_wmma = on;
        self
    }

    /// Installs an event tracer; launches record into it. Pass a
    /// [`tcsim_trace::RingTracer`] to capture events.
    pub fn tracer(mut self, tracer: impl Tracer + 'static) -> SimOptions {
        self.tracer = Some(Box::new(tracer));
        self
    }
}

impl From<GpuConfig> for SimOptions {
    fn from(cfg: GpuConfig) -> SimOptions {
        SimOptions::new(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_converts_to_default_options() {
        let opts: SimOptions = GpuConfig::mini().into();
        assert_eq!(opts.core, CoreModel::EventDriven);
        assert!(!opts.profile_wmma);
        assert!(opts.tracer.is_none());
        assert_eq!(opts.cfg.num_sms, GpuConfig::mini().num_sms);
    }

    #[test]
    fn builder_methods_compose() {
        let opts = SimOptions::new(GpuConfig::mini())
            .core(CoreModel::CycleStepped)
            .profile_wmma(true)
            .tracer(tcsim_trace::RingTracer::new());
        assert_eq!(opts.core, CoreModel::CycleStepped);
        assert!(opts.profile_wmma);
        assert!(opts.tracer.is_some());
    }
}
