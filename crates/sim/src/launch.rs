//! Typed kernel-launch API.
//!
//! [`LaunchBuilder`] replaced the raw-bytes launch convention of early
//! versions (removed in 0.3): it packs parameters with the same
//! natural-alignment rules the `KernelBuilder` uses to lay them out, and
//! validates each one against the kernel's declared parameter list —
//! size mismatches and missing or extra parameters panic at
//! launch-build time instead of silently corrupting the `.param` space.

use crate::gpu::Gpu;
use crate::stats::LaunchStats;
use tcsim_isa::{Dim3, Kernel, LaunchConfig};
use tcsim_trace::Tracer;

/// Builder for one kernel launch: grid/block geometry plus typed,
/// validated kernel parameters.
///
/// # Example
///
/// ```
/// use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};
/// use tcsim_isa::{KernelBuilder, MemWidth, Operand, SpecialReg};
///
/// let mut gpu = Gpu::new(GpuConfig::mini());
/// let out = gpu.alloc(32 * 4);
///
/// let mut b = KernelBuilder::new("ids");
/// let p = b.param_u64("out");
/// let base = b.reg_pair();
/// b.ld_param(MemWidth::B64, base, p);
/// let tid = b.reg();
/// b.mov(tid, Operand::Special(SpecialReg::TidX));
/// let addr = b.reg_pair();
/// b.imad_wide(addr, tid, Operand::Imm(4), base);
/// b.st_global(MemWidth::B32, addr, 0, tid);
/// b.exit();
///
/// let stats = LaunchBuilder::new(b.build())
///     .grid(1u32)
///     .block(32u32)
///     .param_u64(out)
///     .launch(&mut gpu);
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.read_u32(out + 4 * 7), 7);
/// ```
#[derive(Clone, Debug)]
pub struct LaunchBuilder {
    kernel: Kernel,
    grid: Option<Dim3>,
    block: Option<Dim3>,
    dynamic_shared: u32,
    params: Vec<u8>,
    next_param: usize,
    raw: bool,
    tracer: Option<Box<dyn Tracer>>,
}

impl LaunchBuilder {
    /// Starts a launch of `kernel` with no geometry and no parameters.
    pub fn new(kernel: Kernel) -> LaunchBuilder {
        LaunchBuilder {
            kernel,
            grid: None,
            block: None,
            dynamic_shared: 0,
            params: Vec::new(),
            next_param: 0,
            raw: false,
            tracer: None,
        }
    }

    /// Sets the grid dimensions (`u32`, `(u32, u32)` or `(u32, u32, u32)`).
    pub fn grid(mut self, g: impl Into<Dim3>) -> LaunchBuilder {
        self.grid = Some(g.into());
        self
    }

    /// Sets the CTA (block) dimensions.
    pub fn block(mut self, b: impl Into<Dim3>) -> LaunchBuilder {
        self.block = Some(b.into());
        self
    }

    /// Requests `bytes` of dynamic shared memory per CTA, on top of the
    /// kernel's static allocation.
    pub fn dynamic_shared(mut self, bytes: u32) -> LaunchBuilder {
        self.dynamic_shared = bytes;
        self
    }

    /// Installs `tracer` on the GPU for this launch (and later ones, until
    /// replaced): the launch's [`LaunchStats::trace`] summary is filled in
    /// and the raw events stay readable via `Gpu::trace_events`.
    ///
    /// ```
    /// # use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};
    /// # use tcsim_isa::KernelBuilder;
    /// use tcsim_trace::RingTracer;
    /// # let mut gpu = Gpu::new(GpuConfig::mini());
    /// # let mut b = KernelBuilder::new("noop");
    /// # b.exit();
    /// let stats = LaunchBuilder::new(b.build())
    ///     .grid(1u32)
    ///     .block(32u32)
    ///     .tracer(RingTracer::new())
    ///     .launch(&mut gpu);
    /// assert!(stats.trace.is_some());
    /// ```
    pub fn tracer(mut self, tracer: impl Tracer + 'static) -> LaunchBuilder {
        self.tracer = Some(Box::new(tracer));
        self
    }

    fn push_param(&mut self, bytes_len: u32, le: &[u8]) {
        assert!(
            !self.raw,
            "kernel {}: cannot mix typed params with raw_params",
            self.kernel.name()
        );
        let descs = self.kernel.params();
        assert!(
            self.next_param < descs.len(),
            "kernel {} declares {} parameter(s); extra {}-byte argument supplied",
            self.kernel.name(),
            descs.len(),
            bytes_len
        );
        let desc = &descs[self.next_param];
        assert!(
            desc.bytes == bytes_len,
            "kernel {} parameter `{}` is {} bytes, argument is {} bytes",
            self.kernel.name(),
            desc.name,
            desc.bytes,
            bytes_len
        );
        // Pad to the declared offset: identical to KernelBuilder's
        // natural-alignment layout, so the cursor always lands exactly.
        self.params.resize(desc.offset as usize, 0);
        self.params.extend_from_slice(le);
        self.next_param += 1;
    }

    /// Appends a 32-bit parameter (little-endian, naturally aligned).
    pub fn param_u32(mut self, v: u32) -> LaunchBuilder {
        self.push_param(4, &v.to_le_bytes());
        self
    }

    /// Appends a 64-bit parameter — device pointers and sizes.
    pub fn param_u64(mut self, v: u64) -> LaunchBuilder {
        self.push_param(8, &v.to_le_bytes());
        self
    }

    /// Appends a 32-bit float parameter (stored as its IEEE-754 bits).
    pub fn param_f32(self, v: f32) -> LaunchBuilder {
        self.param_u32(v.to_bits())
    }

    /// Escape hatch: supplies the whole parameter buffer verbatim,
    /// bypassing per-parameter validation — for replaying captured
    /// parameter buffers. New code should prefer the typed `param_*`
    /// methods.
    pub fn raw_params(mut self, bytes: &[u8]) -> LaunchBuilder {
        assert!(
            self.next_param == 0,
            "kernel {}: cannot mix raw_params with typed params",
            self.kernel.name()
        );
        self.params = bytes.to_vec();
        self.raw = true;
        self
    }

    /// Validates geometry and parameters, then runs the kernel to
    /// completion on `gpu`, returning its statistics.
    ///
    /// # Panics
    ///
    /// Panics if grid or block dimensions are unset, if any declared
    /// parameter was not supplied, or if the launch violates SM resource
    /// limits (see [`Gpu`] docs).
    pub fn launch(mut self, gpu: &mut Gpu) -> LaunchStats {
        if let Some(tracer) = self.tracer.take() {
            gpu.set_tracer(tracer);
        }
        let (kernel, cfg, params) = self.into_parts();
        gpu.run_kernel(kernel, cfg, params)
    }

    /// Finalizes the builder into its `(kernel, launch-config, params)`
    /// triple without running it — the form sweep jobs close over.
    ///
    /// # Panics
    ///
    /// Same validation as [`LaunchBuilder::launch`].
    pub fn into_parts(mut self) -> (Kernel, LaunchConfig, Vec<u8>) {
        let grid = self
            .grid
            .unwrap_or_else(|| panic!("kernel {}: grid dimensions not set", self.kernel.name()));
        let block = self
            .block
            .unwrap_or_else(|| panic!("kernel {}: block dimensions not set", self.kernel.name()));
        if !self.raw {
            let declared = self.kernel.params().len();
            assert!(
                self.next_param == declared,
                "kernel {} declares {} parameter(s); only {} supplied",
                self.kernel.name(),
                declared,
                self.next_param
            );
            self.params.resize(self.kernel.param_bytes() as usize, 0);
        }
        let cfg = LaunchConfig::new(grid, block).with_shared_bytes(self.dynamic_shared);
        (self.kernel, cfg, self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use tcsim_isa::{KernelBuilder, MemWidth, Operand, SpecialReg};

    fn two_param_kernel() -> Kernel {
        // st_global(out + 4*tid, n) for tid < 32.
        let mut b = KernelBuilder::new("store_n");
        let p_out = b.param_u64("out");
        let p_n = b.param_u32("n");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p_out);
        let n = b.reg();
        b.ld_param(MemWidth::B32, n, p_n);
        let tid = b.reg();
        b.mov(tid, Operand::Special(SpecialReg::TidX));
        let addr = b.reg_pair();
        b.imad_wide(addr, tid, Operand::Imm(4), base);
        b.st_global(MemWidth::B32, addr, 0, n);
        b.exit();
        b.build()
    }

    #[test]
    fn typed_params_match_raw_packing() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let out = gpu.alloc(32 * 4);
        let stats = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(out)
            .param_u32(0xDEAD_BEEF)
            .launch(&mut gpu);
        assert!(stats.cycles > 0);
        for i in 0..32 {
            assert_eq!(gpu.read_u32(out + 4 * i), 0xDEAD_BEEF);
        }
    }

    #[test]
    fn into_parts_packs_with_natural_alignment() {
        let (_, cfg, params) = LaunchBuilder::new(two_param_kernel())
            .grid(2u32)
            .block((32u32, 2u32))
            .param_u64(0x1122_3344_5566_7788)
            .param_u32(7)
            .into_parts();
        assert_eq!(cfg.grid.x, 2);
        assert_eq!(cfg.block.y, 2);
        assert_eq!(params.len(), 12);
        assert_eq!(&params[0..8], &0x1122_3344_5566_7788u64.to_le_bytes());
        assert_eq!(&params[8..12], &7u32.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "is 8 bytes, argument is 4 bytes")]
    fn wrong_width_is_rejected() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u32(7); // first declared param is a u64 pointer
    }

    #[test]
    #[should_panic(expected = "only 1 supplied")]
    fn missing_param_is_rejected() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(0)
            .into_parts();
    }

    #[test]
    #[should_panic(expected = "extra 4-byte argument")]
    fn extra_param_is_rejected() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(0)
            .param_u32(1)
            .param_u32(2);
    }

    #[test]
    #[should_panic(expected = "grid dimensions not set")]
    fn unset_grid_is_rejected() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .block(32u32)
            .param_u64(0)
            .param_u32(1)
            .into_parts();
    }

    #[test]
    fn raw_params_bypass_validation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&5u32.to_le_bytes());
        let (_, _, params) = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .raw_params(&bytes)
            .into_parts();
        assert_eq!(params, bytes);
    }
}
