//! Typed kernel-launch API.
//!
//! [`LaunchBuilder`] replaced the raw-bytes launch convention of early
//! versions (removed in 0.3): it packs parameters with the same
//! natural-alignment rules the `KernelBuilder` uses to lay them out, and
//! validates each one against the kernel's declared parameter list —
//! size mismatches and missing or extra parameters panic at
//! launch-build time instead of silently corrupting the `.param` space.

use crate::gpu::Gpu;
use crate::stats::LaunchStats;
use std::fmt;
use tcsim_isa::{Dim3, Kernel, LaunchConfig, MemSpace, MemWidth, Op, Operand, WmmaDirective};
use tcsim_trace::Tracer;
use tcsim_verify::{Diagnostic, LaunchGeometry, Verifier};

/// A launch-validation failure.
///
/// The `try_*` builder methods return these instead of panicking; the
/// legacy panicking methods format the same variants into their original
/// panic messages, so both APIs diagnose identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// Typed `param_*` calls mixed with [`LaunchBuilder::raw_params`].
    MixedParamStyles {
        /// Kernel name.
        kernel: String,
    },
    /// More arguments supplied than the kernel declares.
    ExtraParam {
        /// Kernel name.
        kernel: String,
        /// Declared parameter count.
        declared: usize,
        /// Size of the surplus argument in bytes.
        bytes: u32,
    },
    /// Argument width differs from the declared parameter width.
    ParamWidth {
        /// Kernel name.
        kernel: String,
        /// Declared parameter name.
        name: String,
        /// Declared width in bytes.
        declared: u32,
        /// Supplied width in bytes.
        supplied: u32,
    },
    /// Fewer arguments supplied than the kernel declares.
    MissingParams {
        /// Kernel name.
        kernel: String,
        /// Declared parameter count.
        declared: usize,
        /// Supplied argument count.
        supplied: usize,
    },
    /// Grid dimensions never set.
    GridNotSet {
        /// Kernel name.
        kernel: String,
    },
    /// Block dimensions never set.
    BlockNotSet {
        /// Kernel name.
        kernel: String,
    },
    /// A grid or block dimension is zero.
    ZeroDim {
        /// Kernel name.
        kernel: String,
        /// Which geometry (`"grid"` or `"block"`).
        what: &'static str,
        /// The offending extent.
        dim: Dim3,
    },
    /// The static analyzer ([`tcsim_verify`]) found well-formedness
    /// errors in the kernel under this launch geometry.
    Verification {
        /// Kernel name.
        kernel: String,
        /// Number of error-severity findings.
        errors: usize,
        /// Rendered diagnostics, one per finding (errors and warnings).
        report: Vec<String>,
    },
    /// A pointer parameter feeds a `wmma.load`/`wmma.store` address but
    /// is not aligned to the fragment access granularity.
    UnalignedWmmaPointer {
        /// Kernel name.
        kernel: String,
        /// Parameter name.
        param: String,
        /// The supplied device address.
        addr: u64,
        /// Required alignment in bytes.
        align: u64,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::MixedParamStyles { kernel } => {
                write!(f, "kernel {kernel}: cannot mix typed params with raw_params")
            }
            LaunchError::ExtraParam { kernel, declared, bytes } => write!(
                f,
                "kernel {kernel} declares {declared} parameter(s); extra {bytes}-byte argument supplied"
            ),
            LaunchError::ParamWidth { kernel, name, declared, supplied } => write!(
                f,
                "kernel {kernel} parameter `{name}` is {declared} bytes, argument is {supplied} bytes"
            ),
            LaunchError::MissingParams { kernel, declared, supplied } => write!(
                f,
                "kernel {kernel} declares {declared} parameter(s); only {supplied} supplied"
            ),
            LaunchError::GridNotSet { kernel } => {
                write!(f, "kernel {kernel}: grid dimensions not set")
            }
            LaunchError::BlockNotSet { kernel } => {
                write!(f, "kernel {kernel}: block dimensions not set")
            }
            LaunchError::ZeroDim { kernel, what, dim } => write!(
                f,
                "kernel {kernel}: {what} extent {}x{}x{} has a zero dimension",
                dim.x, dim.y, dim.z
            ),
            LaunchError::Verification { kernel, errors, report } => {
                write!(f, "kernel {kernel}: static verification failed with {errors} error(s)")?;
                for line in report {
                    write!(f, "\n  {line}")?;
                }
                Ok(())
            }
            LaunchError::UnalignedWmmaPointer { kernel, param, addr, align } => write!(
                f,
                "kernel {kernel}: parameter `{param}` = {addr:#x} feeds a wmma address but is not {align}-byte aligned"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Fragment rows are fetched with up-to-128-bit accesses; a wmma base
/// pointer must be aligned to that granularity.
const WMMA_PTR_ALIGN: u64 = 16;

/// Best-effort dataflow scan: the byte offsets of `u64` parameters that
/// reach a `wmma.load`/`wmma.store` address operand through an
/// unclobbered `ld.param.b64` register pair.
fn wmma_pointer_param_offsets(kernel: &Kernel) -> Vec<u32> {
    use std::collections::HashMap;
    let mut reg_to_param: HashMap<u16, u32> = HashMap::new();
    let mut hits = Vec::new();
    for instr in kernel.instrs() {
        match &instr.op {
            Op::Ld {
                space: MemSpace::Param,
                width: MemWidth::B64,
            } => {
                if let (Some(dst), Some(Operand::Imm(off))) = (instr.dst, instr.srcs.first()) {
                    reg_to_param.insert(dst.0, *off as u32);
                    continue;
                }
            }
            Op::Wmma(WmmaDirective::Load { .. } | WmmaDirective::Store { .. }) => {
                if let Some(Operand::Reg(r) | Operand::RegPair(r)) = instr.srcs.first() {
                    if let Some(off) = reg_to_param.get(&r.0) {
                        hits.push(*off);
                    }
                }
            }
            _ => {}
        }
        // Any other write overlapping a tracked pair clobbers the mapping
        // (conservative straight-line dataflow: a pair based at `dst - 1`
        // or `dst` contains the written register).
        if let Some(dst) = instr.dst {
            reg_to_param.remove(&dst.0);
            reg_to_param.remove(&dst.0.wrapping_sub(1));
        }
    }
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// Builder for one kernel launch: grid/block geometry plus typed,
/// validated kernel parameters.
///
/// # Example
///
/// ```
/// use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};
/// use tcsim_isa::{KernelBuilder, MemWidth, Operand, SpecialReg};
///
/// let mut gpu = Gpu::new(GpuConfig::mini());
/// let out = gpu.alloc(32 * 4);
///
/// let mut b = KernelBuilder::new("ids");
/// let p = b.param_u64("out");
/// let base = b.reg_pair();
/// b.ld_param(MemWidth::B64, base, p);
/// let tid = b.reg();
/// b.mov(tid, Operand::Special(SpecialReg::TidX));
/// let addr = b.reg_pair();
/// b.imad_wide(addr, tid, Operand::Imm(4), base);
/// b.st_global(MemWidth::B32, addr, 0, tid);
/// b.exit();
///
/// let stats = LaunchBuilder::new(b.build())
///     .grid(1u32)
///     .block(32u32)
///     .param_u64(out)
///     .launch(&mut gpu);
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.read_u32(out + 4 * 7), 7);
/// ```
#[derive(Clone, Debug)]
pub struct LaunchBuilder {
    kernel: Kernel,
    grid: Option<Dim3>,
    block: Option<Dim3>,
    dynamic_shared: u32,
    params: Vec<u8>,
    next_param: usize,
    raw: bool,
    tracer: Option<Box<dyn Tracer>>,
}

impl LaunchBuilder {
    /// Starts a launch of `kernel` with no geometry and no parameters.
    pub fn new(kernel: Kernel) -> LaunchBuilder {
        LaunchBuilder {
            kernel,
            grid: None,
            block: None,
            dynamic_shared: 0,
            params: Vec::new(),
            next_param: 0,
            raw: false,
            tracer: None,
        }
    }

    /// Sets the grid dimensions (`u32`, `(u32, u32)` or `(u32, u32, u32)`).
    pub fn grid(mut self, g: impl Into<Dim3>) -> LaunchBuilder {
        self.grid = Some(g.into());
        self
    }

    /// Sets the CTA (block) dimensions.
    pub fn block(mut self, b: impl Into<Dim3>) -> LaunchBuilder {
        self.block = Some(b.into());
        self
    }

    /// Requests `bytes` of dynamic shared memory per CTA, on top of the
    /// kernel's static allocation.
    pub fn dynamic_shared(mut self, bytes: u32) -> LaunchBuilder {
        self.dynamic_shared = bytes;
        self
    }

    /// Installs `tracer` on the GPU for this launch (and later ones, until
    /// replaced): the launch's [`LaunchStats::trace`] summary is filled in
    /// and the raw events stay readable via `Gpu::trace_events`.
    ///
    /// ```
    /// # use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};
    /// # use tcsim_isa::KernelBuilder;
    /// use tcsim_trace::RingTracer;
    /// # let mut gpu = Gpu::new(GpuConfig::mini());
    /// # let mut b = KernelBuilder::new("noop");
    /// # b.exit();
    /// let stats = LaunchBuilder::new(b.build())
    ///     .grid(1u32)
    ///     .block(32u32)
    ///     .tracer(RingTracer::new())
    ///     .launch(&mut gpu);
    /// assert!(stats.trace.is_some());
    /// ```
    pub fn tracer(mut self, tracer: impl Tracer + 'static) -> LaunchBuilder {
        self.tracer = Some(Box::new(tracer));
        self
    }

    fn try_push_param(&mut self, bytes_len: u32, le: &[u8]) -> Result<(), LaunchError> {
        if self.raw {
            return Err(LaunchError::MixedParamStyles {
                kernel: self.kernel.name().to_string(),
            });
        }
        let descs = self.kernel.params();
        if self.next_param >= descs.len() {
            return Err(LaunchError::ExtraParam {
                kernel: self.kernel.name().to_string(),
                declared: descs.len(),
                bytes: bytes_len,
            });
        }
        let desc = &descs[self.next_param];
        if desc.bytes != bytes_len {
            return Err(LaunchError::ParamWidth {
                kernel: self.kernel.name().to_string(),
                name: desc.name.clone(),
                declared: desc.bytes,
                supplied: bytes_len,
            });
        }
        // Pad to the declared offset: identical to KernelBuilder's
        // natural-alignment layout, so the cursor always lands exactly.
        let offset = desc.offset as usize;
        self.params.resize(offset, 0);
        self.params.extend_from_slice(le);
        self.next_param += 1;
        Ok(())
    }

    fn push_param(&mut self, bytes_len: u32, le: &[u8]) {
        self.try_push_param(bytes_len, le)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Appends a 32-bit parameter (little-endian, naturally aligned).
    pub fn param_u32(mut self, v: u32) -> LaunchBuilder {
        self.push_param(4, &v.to_le_bytes());
        self
    }

    /// Appends a 64-bit parameter — device pointers and sizes.
    pub fn param_u64(mut self, v: u64) -> LaunchBuilder {
        self.push_param(8, &v.to_le_bytes());
        self
    }

    /// Appends a 32-bit float parameter (stored as its IEEE-754 bits).
    pub fn param_f32(self, v: f32) -> LaunchBuilder {
        self.param_u32(v.to_bits())
    }

    /// Fallible [`LaunchBuilder::param_u32`]: returns the error the
    /// panicking form would have formatted.
    pub fn try_param_u32(mut self, v: u32) -> Result<LaunchBuilder, LaunchError> {
        self.try_push_param(4, &v.to_le_bytes())?;
        Ok(self)
    }

    /// Fallible [`LaunchBuilder::param_u64`].
    pub fn try_param_u64(mut self, v: u64) -> Result<LaunchBuilder, LaunchError> {
        self.try_push_param(8, &v.to_le_bytes())?;
        Ok(self)
    }

    /// Fallible [`LaunchBuilder::param_f32`].
    pub fn try_param_f32(self, v: f32) -> Result<LaunchBuilder, LaunchError> {
        self.try_param_u32(v.to_bits())
    }

    /// Escape hatch: supplies the whole parameter buffer verbatim,
    /// bypassing per-parameter validation — for replaying captured
    /// parameter buffers. New code should prefer the typed `param_*`
    /// methods.
    ///
    /// # Panics
    ///
    /// Panics with the [`LaunchError::MixedParamStyles`] message if typed
    /// `param_*` calls were already made (thin wrapper over
    /// [`LaunchBuilder::try_raw_params`]).
    pub fn raw_params(self, bytes: &[u8]) -> LaunchBuilder {
        self.try_raw_params(bytes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`LaunchBuilder::raw_params`].
    pub fn try_raw_params(mut self, bytes: &[u8]) -> Result<LaunchBuilder, LaunchError> {
        if self.next_param != 0 {
            return Err(LaunchError::MixedParamStyles {
                kernel: self.kernel.name().to_string(),
            });
        }
        self.params = bytes.to_vec();
        self.raw = true;
        Ok(self)
    }

    /// Validates geometry and parameters, then runs the kernel to
    /// completion on `gpu`, returning its statistics.
    ///
    /// # Panics
    ///
    /// Panics if grid or block dimensions are unset, if any declared
    /// parameter was not supplied, or if the launch violates SM resource
    /// limits (see [`Gpu`] docs).
    pub fn launch(mut self, gpu: &mut Gpu) -> LaunchStats {
        if let Some(tracer) = self.tracer.take() {
            gpu.install_tracer(tracer);
        }
        let (kernel, cfg, params) = self.into_parts();
        gpu.run_kernel(kernel, cfg, params)
    }

    /// Finalizes the builder into its `(kernel, launch-config, params)`
    /// triple without running it — the form sweep jobs close over. Thin
    /// wrapper over [`LaunchBuilder::try_into_parts`], so the strict
    /// zero-dimension and wmma-alignment checks apply here too.
    ///
    /// # Panics
    ///
    /// Panics with the corresponding [`LaunchError`] message on any
    /// validation failure.
    pub fn into_parts(self) -> (Kernel, LaunchConfig, Vec<u8>) {
        self.try_into_parts().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Shared geometry/parameter validation and packing behind both
    /// [`LaunchBuilder::into_parts`] and [`LaunchBuilder::try_into_parts`].
    fn finalize(mut self) -> Result<(Kernel, LaunchConfig, Vec<u8>), LaunchError> {
        let grid = self.grid.ok_or_else(|| LaunchError::GridNotSet {
            kernel: self.kernel.name().to_string(),
        })?;
        let block = self.block.ok_or_else(|| LaunchError::BlockNotSet {
            kernel: self.kernel.name().to_string(),
        })?;
        if !self.raw {
            let declared = self.kernel.params().len();
            if self.next_param != declared {
                return Err(LaunchError::MissingParams {
                    kernel: self.kernel.name().to_string(),
                    declared,
                    supplied: self.next_param,
                });
            }
            self.params.resize(self.kernel.param_bytes() as usize, 0);
        }
        let cfg = LaunchConfig::new(grid, block).with_shared_bytes(self.dynamic_shared);
        Ok((self.kernel, cfg, self.params))
    }

    /// Fallible [`LaunchBuilder::into_parts`] with two additional checks
    /// the legacy panicking path never enforced:
    ///
    /// * **zero-dimension geometry** — a grid or block extent of zero
    ///   launches nothing and is always a caller bug;
    /// * **unaligned wmma pointers** — a `u64` parameter that reaches a
    ///   `wmma.load`/`wmma.store` address operand through an unclobbered
    ///   `ld.param.b64` must be 16-byte aligned (the fragment access
    ///   granularity); a misaligned tile base splits every row fetch
    ///   across sectors on real hardware.
    pub fn try_into_parts(self) -> Result<(Kernel, LaunchConfig, Vec<u8>), LaunchError> {
        for (what, dim) in [("grid", self.grid), ("block", self.block)]
            .into_iter()
            .filter_map(|(w, d)| Some((w, d?)))
        {
            if dim.x == 0 || dim.y == 0 || dim.z == 0 {
                return Err(LaunchError::ZeroDim {
                    kernel: self.kernel.name().to_string(),
                    what,
                    dim,
                });
            }
        }
        for off in wmma_pointer_param_offsets(&self.kernel) {
            let Some(desc) = self
                .kernel
                .params()
                .iter()
                .find(|p| p.offset == off && p.bytes == 8)
            else {
                continue;
            };
            let o = off as usize;
            let Some(bytes) = self.params.get(o..o + 8) else {
                continue;
            };
            let addr = u64::from_le_bytes(bytes.try_into().unwrap());
            if addr % WMMA_PTR_ALIGN != 0 {
                return Err(LaunchError::UnalignedWmmaPointer {
                    kernel: self.kernel.name().to_string(),
                    param: desc.name.clone(),
                    addr,
                    align: WMMA_PTR_ALIGN,
                });
            }
        }
        self.finalize()
    }

    /// Runs the static analyzer ([`tcsim_verify`]) on the kernel under
    /// the builder's current geometry, returning every diagnostic.
    ///
    /// Unset grid/block dimensions default to `1`/`32` for analysis
    /// purposes (one warp, one CTA), so the method is usable before the
    /// geometry is chosen; the fragment-sizing architecture comes from
    /// `gpu`'s SM configuration. [`LaunchBuilder::try_launch`] runs the
    /// same analysis and refuses to launch on error-severity findings;
    /// this method exposes the full report (including warnings) without
    /// committing to a launch.
    pub fn verify(&self, gpu: &Gpu) -> Vec<Diagnostic> {
        let geom = LaunchGeometry {
            grid: self.grid.unwrap_or_else(|| 1u32.into()),
            block: self.block.unwrap_or_else(|| 32u32.into()),
            dynamic_shared: self.dynamic_shared,
            gen: gpu.config().sm.tensor_gen(),
        };
        Verifier::new().check(&self.kernel, &geom)
    }

    /// Fallible [`LaunchBuilder::launch`]: validates via
    /// [`LaunchBuilder::try_into_parts`] (including the strict zero-dim
    /// and wmma-alignment checks), runs the static analyzer as a
    /// pre-launch gate, and only touches `gpu` once the launch is known
    /// to be well-formed.
    ///
    /// Error-severity findings from [`tcsim_verify`] — uninitialized
    /// register reads, divergent barriers, shared-memory races or
    /// out-of-bounds accesses, malformed WMMA — abort the launch with
    /// [`LaunchError::Verification`]. Warnings are included in that
    /// report when errors are present but never block a launch on their
    /// own. The legacy panicking [`LaunchBuilder::launch`] path is *not*
    /// gated, so replay of captured (possibly hostile) kernels remains
    /// possible.
    pub fn try_launch(mut self, gpu: &mut Gpu) -> Result<LaunchStats, LaunchError> {
        let tracer = self.tracer.take();
        let diags = self.verify(gpu);
        if tcsim_verify::has_errors(&diags) {
            return Err(LaunchError::Verification {
                kernel: self.kernel.name().to_string(),
                errors: diags.iter().filter(|d| d.is_error()).count(),
                report: diags.iter().map(|d| d.to_string()).collect(),
            });
        }
        let (kernel, cfg, params) = self.try_into_parts()?;
        if let Some(tracer) = tracer {
            gpu.install_tracer(tracer);
        }
        Ok(gpu.run_kernel(kernel, cfg, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use tcsim_isa::{KernelBuilder, MemWidth, Operand, SpecialReg};

    fn two_param_kernel() -> Kernel {
        // st_global(out + 4*tid, n) for tid < 32.
        let mut b = KernelBuilder::new("store_n");
        let p_out = b.param_u64("out");
        let p_n = b.param_u32("n");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p_out);
        let n = b.reg();
        b.ld_param(MemWidth::B32, n, p_n);
        let tid = b.reg();
        b.mov(tid, Operand::Special(SpecialReg::TidX));
        let addr = b.reg_pair();
        b.imad_wide(addr, tid, Operand::Imm(4), base);
        b.st_global(MemWidth::B32, addr, 0, n);
        b.exit();
        b.build()
    }

    #[test]
    fn typed_params_match_raw_packing() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let out = gpu.alloc(32 * 4);
        let stats = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(out)
            .param_u32(0xDEAD_BEEF)
            .launch(&mut gpu);
        assert!(stats.cycles > 0);
        for i in 0..32 {
            assert_eq!(gpu.read_u32(out + 4 * i), 0xDEAD_BEEF);
        }
    }

    #[test]
    fn into_parts_packs_with_natural_alignment() {
        let (_, cfg, params) = LaunchBuilder::new(two_param_kernel())
            .grid(2u32)
            .block((32u32, 2u32))
            .param_u64(0x1122_3344_5566_7788)
            .param_u32(7)
            .into_parts();
        assert_eq!(cfg.grid.x, 2);
        assert_eq!(cfg.block.y, 2);
        assert_eq!(params.len(), 12);
        assert_eq!(&params[0..8], &0x1122_3344_5566_7788u64.to_le_bytes());
        assert_eq!(&params[8..12], &7u32.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "is 8 bytes, argument is 4 bytes")]
    fn wrong_width_is_rejected() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u32(7); // first declared param is a u64 pointer
    }

    #[test]
    #[should_panic(expected = "only 1 supplied")]
    fn missing_param_is_rejected() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(0)
            .into_parts();
    }

    #[test]
    #[should_panic(expected = "extra 4-byte argument")]
    fn extra_param_is_rejected() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(0)
            .param_u32(1)
            .param_u32(2);
    }

    #[test]
    #[should_panic(expected = "grid dimensions not set")]
    fn unset_grid_is_rejected() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .block(32u32)
            .param_u64(0)
            .param_u32(1)
            .into_parts();
    }

    fn wmma_ptr_kernel() -> Kernel {
        use tcsim_isa::{FragmentKind, Layout, MemSpace, WmmaShape, WmmaType};
        let mut b = KernelBuilder::new("wmma_ptr");
        let p = b.param_u64("tile");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, p);
        let frag = b.reg_block(tcsim_isa::fragment_regs(
            FragmentKind::A,
            WmmaShape::M16N16K16,
            WmmaType::F16,
            true,
        ));
        b.wmma_load(
            FragmentKind::A,
            WmmaShape::M16N16K16,
            Layout::Row,
            WmmaType::F16,
            MemSpace::Global,
            frag,
            Operand::RegPair(base),
            Operand::Imm(16),
        );
        b.exit();
        b.build()
    }

    #[test]
    fn try_param_reports_width_mismatch() {
        let err = LaunchBuilder::new(two_param_kernel())
            .try_param_u32(7)
            .unwrap_err();
        assert_eq!(
            err,
            LaunchError::ParamWidth {
                kernel: "store_n".into(),
                name: "out".into(),
                declared: 8,
                supplied: 4,
            }
        );
        // The typed error renders exactly the legacy panic wording.
        assert!(err.to_string().contains("is 8 bytes, argument is 4 bytes"));
    }

    #[test]
    fn try_param_reports_extra_argument() {
        let err = LaunchBuilder::new(two_param_kernel())
            .param_u64(0)
            .param_u32(1)
            .try_param_u32(2)
            .unwrap_err();
        assert_eq!(
            err,
            LaunchError::ExtraParam {
                kernel: "store_n".into(),
                declared: 2,
                bytes: 4
            }
        );
    }

    #[test]
    fn try_into_parts_reports_missing_geometry_and_params() {
        let err = LaunchBuilder::new(two_param_kernel())
            .try_into_parts()
            .unwrap_err();
        assert_eq!(
            err,
            LaunchError::GridNotSet {
                kernel: "store_n".into()
            }
        );
        let err = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .try_into_parts()
            .unwrap_err();
        assert_eq!(
            err,
            LaunchError::BlockNotSet {
                kernel: "store_n".into()
            }
        );
        let err = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(0)
            .try_into_parts()
            .unwrap_err();
        assert_eq!(
            err,
            LaunchError::MissingParams {
                kernel: "store_n".into(),
                declared: 2,
                supplied: 1
            }
        );
    }

    #[test]
    fn try_into_parts_rejects_zero_dimensions() {
        let err = LaunchBuilder::new(two_param_kernel())
            .grid(0u32)
            .block(32u32)
            .param_u64(0)
            .param_u32(1)
            .try_into_parts()
            .unwrap_err();
        assert!(
            matches!(&err, LaunchError::ZeroDim { what: "grid", .. }),
            "got: {err}"
        );
        let err = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block((32u32, 0u32))
            .param_u64(0)
            .param_u32(1)
            .try_into_parts()
            .unwrap_err();
        assert!(
            matches!(&err, LaunchError::ZeroDim { what: "block", .. }),
            "got: {err}"
        );
    }

    #[test]
    fn try_mixing_raw_and_typed_params_is_a_typed_error() {
        let err = LaunchBuilder::new(two_param_kernel())
            .param_u64(0)
            .try_raw_params(&[0u8; 12])
            .unwrap_err();
        assert_eq!(
            err,
            LaunchError::MixedParamStyles {
                kernel: "store_n".into()
            }
        );
        let err = LaunchBuilder::new(two_param_kernel())
            .raw_params(&[0u8; 12])
            .try_param_u64(0)
            .unwrap_err();
        assert_eq!(
            err,
            LaunchError::MixedParamStyles {
                kernel: "store_n".into()
            }
        );
    }

    #[test]
    fn try_into_parts_rejects_unaligned_wmma_pointer() {
        let err = LaunchBuilder::new(wmma_ptr_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(0x1_0002)
            .try_into_parts()
            .unwrap_err();
        assert_eq!(
            err,
            LaunchError::UnalignedWmmaPointer {
                kernel: "wmma_ptr".into(),
                param: "tile".into(),
                addr: 0x1_0002,
                align: 16,
            }
        );
        // An aligned pointer passes the same path.
        LaunchBuilder::new(wmma_ptr_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(0x1_0000)
            .try_into_parts()
            .expect("aligned wmma pointer must be accepted");
    }

    #[test]
    fn try_launch_runs_a_valid_launch() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let out = gpu.alloc(32 * 4);
        let stats = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(out)
            .param_u32(3)
            .try_launch(&mut gpu)
            .expect("valid launch");
        assert!(stats.cycles > 0);
        assert_eq!(gpu.read_u32(out), 3);
    }

    /// A kernel that reads a register no path has written.
    fn uninit_kernel() -> Kernel {
        let mut b = KernelBuilder::new("uninit");
        let r = b.reg();
        let d = b.reg();
        b.iadd(d, r, Operand::Imm(1));
        b.exit();
        b.build()
    }

    #[test]
    fn verify_reports_static_analysis_findings() {
        let gpu = Gpu::new(GpuConfig::mini());
        let diags = LaunchBuilder::new(uninit_kernel()).verify(&gpu);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "uninit-reg");
        // A well-formed kernel verifies clean.
        let diags = LaunchBuilder::new(two_param_kernel()).verify(&gpu);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    }

    #[test]
    fn try_launch_gates_on_verification_errors() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let err = LaunchBuilder::new(uninit_kernel())
            .grid(1u32)
            .block(32u32)
            .try_launch(&mut gpu)
            .unwrap_err();
        let LaunchError::Verification {
            kernel,
            errors,
            report,
        } = &err
        else {
            panic!("expected Verification, got: {err}");
        };
        assert_eq!(kernel, "uninit");
        assert_eq!(*errors, 1);
        assert!(report[0].contains("uninit-reg"), "{report:?}");
        assert!(err.to_string().contains("static verification failed"));
        // The legacy panicking launch path stays ungated (registers are
        // zero-reset per launch, so the run itself is deterministic).
        let stats = LaunchBuilder::new(uninit_kernel())
            .grid(1u32)
            .block(32u32)
            .launch(&mut gpu);
        assert!(stats.cycles > 0);
    }

    // The panicking variants are thin wrappers over the `try_` forms;
    // these pin their exact messages (the `LaunchError` Display wording).
    #[test]
    #[should_panic(expected = "cannot mix typed params with raw_params")]
    fn mixed_param_styles_panic_message_is_pinned() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .param_u64(0)
            .raw_params(&[0u8; 12]);
    }

    #[test]
    #[should_panic(expected = "grid extent 0x1x1 has a zero dimension")]
    fn zero_dimension_panic_message_is_pinned() {
        let _ = LaunchBuilder::new(two_param_kernel())
            .grid(0u32)
            .block(32u32)
            .param_u64(0)
            .param_u32(1)
            .into_parts();
    }

    #[test]
    #[should_panic(expected = "feeds a wmma address but is not 16-byte aligned")]
    fn unaligned_wmma_pointer_panic_message_is_pinned() {
        let _ = LaunchBuilder::new(wmma_ptr_kernel())
            .grid(1u32)
            .block(32u32)
            .param_u64(0x1_0002)
            .into_parts();
    }

    #[test]
    fn raw_params_bypass_validation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&5u32.to_le_bytes());
        let (_, _, params) = LaunchBuilder::new(two_param_kernel())
            .grid(1u32)
            .block(32u32)
            .raw_params(&bytes)
            .into_parts();
        assert_eq!(params, bytes);
    }
}
