//! Request-stream serving simulator over the cycle-level encoder block.
//!
//! `tcsim-nn` answers "how many cycles does one transformer encoder
//! block take at batch size B?" by actually simulating every lowered
//! kernel. This crate asks the next question up the stack: given a
//! *stream* of inference requests, a dynamic-batching policy and a
//! bounded KV-cache, what latency distribution and throughput does that
//! per-batch cost imply? The split mirrors how serving systems are
//! studied in practice — a slow, faithful cost model underneath a fast
//! discrete-event queueing layer on top.
//!
//! Three pieces:
//!
//! - [`cost::CostModel`] — memoizes the simulated cycle cost of the
//!   encoder block per batch size. Each distinct batch size triggers
//!   exactly one full `tcsim_nn::run_chained` simulation (differentially
//!   checked against the host f32 reference); repeats are content-hash
//!   cache hits, the same idea `tcsim-serve` uses for job results.
//! - [`serving::Workload`] — a seeded open-loop Poisson arrival stream
//!   (shared generator with `tcsim-loadgen`, via
//!   `tcsim_check::rng::ExpArrivals`), quantized to integer cycles.
//! - [`serving::simulate`] — a deterministic single-server
//!   discrete-event loop: requests are admitted against a KV-cache
//!   capacity, grouped into batches by a [`serving::Policy`], and each
//!   batch occupies the GPU for the memoized block cost at its size.
//!
//! Everything downstream of the seed is pure integer arithmetic, so a
//! given `(seed, rate, policy, capacity)` always yields byte-identical
//! report JSON — which is what lets CI pin the `tcsim-infer --smoke`
//! artifact with a straight byte comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod serving;

pub use cost::{BlockCost, CostModel};
pub use serving::{
    encoder_kv_bytes, rate_sweep, simulate, KvCache, Policy, ServingReport, Workload,
};
