//! Deterministic discrete-event serving loop: seeded arrivals, dynamic
//! batching, KV-cache admission.
//!
//! The model is a single-server queue in integer GPU cycles. Requests
//! arrive open-loop from a seeded Poisson process; each admitted request
//! reserves a fixed KV-cache footprint until it completes; a batching
//! policy groups waiting requests into batches; a dispatched batch
//! occupies the GPU for exactly the memoized simulated cost of the
//! encoder block at that batch size. One batch is in flight at a time —
//! the block is lowered as a dense sequence of dependent kernel
//! launches, so there is no intra-GPU overlap to model.
//!
//! Event ordering at equal cycles is fixed (completion, then arrival,
//! then dispatch) so a completion frees KV for a same-cycle arrival and
//! a same-cycle arrival can still join the batch being sealed. With
//! that, the whole trajectory is a pure function of `(seed, rate,
//! policy, kv, cost model)` and report JSON is byte-stable — the
//! property the CI smoke gate byte-compares.

use std::collections::{BTreeMap, VecDeque};

use crate::cost::CostModel;
use tcsim_check::rng::ExpArrivals;
use tcsim_sim::JsonWriter;

/// How waiting requests are grouped into batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Window batching: the batch led by the oldest waiting request is
    /// sealed at `min(head_arrival + window_cycles, arrival of the
    /// max_batch-th member)` — i.e. it dispatches early when full,
    /// otherwise when the head has waited out its window. Requests
    /// arriving after the seal wait for the next batch even if the GPU
    /// is still busy.
    Static {
        /// Largest batch a single dispatch may carry.
        max_batch: usize,
        /// How long the head request waits for company, in cycles.
        window_cycles: u64,
    },
    /// Continuous batching: whenever the GPU goes idle and requests are
    /// waiting, dispatch immediately with up to `max_batch` of them.
    /// Requests that arrived while the previous batch was running join
    /// the next one — the property that distinguishes it from window
    /// batching under load.
    Continuous {
        /// Largest batch a single dispatch may carry.
        max_batch: usize,
    },
}

impl Policy {
    /// Short policy name used in reports ("static" / "continuous").
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Static { .. } => "static",
            Policy::Continuous { .. } => "continuous",
        }
    }

    /// The batch-size cap.
    pub fn max_batch(&self) -> usize {
        match *self {
            Policy::Static { max_batch, .. } | Policy::Continuous { max_batch } => max_batch,
        }
    }

    /// The batching window (0 for continuous batching).
    pub fn window_cycles(&self) -> u64 {
        match *self {
            Policy::Static { window_cycles, .. } => window_cycles,
            Policy::Continuous { .. } => 0,
        }
    }

    /// The cycle at which the next dispatch would happen, given the
    /// waiting queue (non-empty, arrival-ordered) and the cycle the GPU
    /// became free.
    fn dispatch_cycle(&self, waiting: &VecDeque<u64>, t_free: u64) -> u64 {
        let head = waiting[0];
        match *self {
            Policy::Static {
                max_batch,
                window_cycles,
            } => {
                let mut seal = head.saturating_add(window_cycles);
                if waiting.len() >= max_batch {
                    seal = seal.min(waiting[max_batch - 1]);
                }
                seal.max(t_free)
            }
            Policy::Continuous { .. } => head.max(t_free),
        }
    }

    /// Removes and returns the members of the batch dispatched at
    /// cycle `now`.
    fn take_batch(&self, waiting: &mut VecDeque<u64>, now: u64) -> Vec<u64> {
        match *self {
            Policy::Static {
                max_batch,
                window_cycles,
            } => {
                let head = waiting[0];
                let mut seal = head.saturating_add(window_cycles);
                if waiting.len() >= max_batch {
                    seal = seal.min(waiting[max_batch - 1]);
                }
                // `now` may be later than the seal (the GPU was busy);
                // the batch stays sealed — late arrivals do not join.
                let mut members = Vec::new();
                while members.len() < max_batch && waiting.front().is_some_and(|&a| a <= seal) {
                    members.push(waiting.pop_front().expect("checked non-empty"));
                }
                debug_assert!(!members.is_empty() && now >= seal);
                members
            }
            Policy::Continuous { max_batch } => {
                let n = waiting.len().min(max_batch);
                waiting.drain(..n).collect()
            }
        }
    }
}

/// A bounded KV-cache: every in-flight (waiting or running) request
/// holds `bytes_per_seq` until it completes; arrivals that would push
/// the total past `capacity_bytes` are rejected at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvCache {
    /// Per-sequence reservation, in bytes.
    pub bytes_per_seq: u64,
    /// Total capacity, in bytes.
    pub capacity_bytes: u64,
}

impl KvCache {
    /// A cache admitting at most `seqs` concurrent sequences of the
    /// encoder's KV footprint (K and V, `seq × d_model` f16 each).
    pub fn for_encoder(seqs: u64) -> KvCache {
        KvCache {
            bytes_per_seq: encoder_kv_bytes(),
            capacity_bytes: seqs * encoder_kv_bytes(),
        }
    }

    /// A cache that never rejects.
    pub fn unbounded() -> KvCache {
        KvCache {
            bytes_per_seq: encoder_kv_bytes(),
            capacity_bytes: u64::MAX,
        }
    }
}

/// The encoder block's per-sequence KV footprint: keys and values for
/// every position, in f16 (`2 × seq × d_model × 2` bytes).
pub fn encoder_kv_bytes() -> u64 {
    use tcsim_nn::models::{ENCODER_D_MODEL, ENCODER_SEQ};
    2 * (ENCODER_SEQ as u64) * (ENCODER_D_MODEL as u64) * 2
}

/// An open-loop request stream: `requests` arrivals drawn from the
/// seeded exponential process at `rate_per_mcycle` requests per million
/// GPU cycles, quantized to integer cycles.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Arrival-stream seed (shared salt/sequence with `tcsim-loadgen`).
    pub seed: u64,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Offered load, in requests per million cycles.
    pub rate_per_mcycle: f64,
}

impl Workload {
    /// The arrival cycle of every request, non-decreasing.
    pub fn arrival_cycles(&self) -> Vec<u64> {
        let mut arr = ExpArrivals::new(self.seed, self.rate_per_mcycle);
        let mut t = 0.0f64; // Mcycles
        (0..self.requests)
            .map(|_| {
                t += arr.next_interval();
                (t * 1e6).round() as u64
            })
            .collect()
    }
}

/// The outcome of one serving run: per-request latencies, per-dispatch
/// batch sizes, rejection and KV-pressure accounting.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Policy name ("static" / "continuous").
    pub policy: String,
    /// Batch-size cap of the policy.
    pub max_batch: usize,
    /// Batching window of the policy (0 for continuous).
    pub window_cycles: u64,
    /// Arrival seed of the workload.
    pub seed: u64,
    /// Offered load, requests per Mcycle.
    pub rate_per_mcycle: f64,
    /// Requests offered.
    pub requests: usize,
    /// Requests rejected at admission (KV cache full).
    pub rejected: u64,
    /// Cycle of the last completion (0 if nothing completed).
    pub makespan_cycles: u64,
    /// Completed-request latencies (completion − arrival), sorted
    /// ascending.
    pub latencies: Vec<u64>,
    /// Size of every dispatched batch, in dispatch order.
    pub batch_sizes: Vec<usize>,
    /// Peak concurrent KV reservation, bytes.
    pub kv_peak_bytes: u64,
    /// The KV-cache configuration the run was admitted against.
    pub kv: KvCache,
    /// Core clock of the modeled GPU, for microsecond conversions.
    pub clock_mhz: u32,
}

impl ServingReport {
    /// Completed request count.
    pub fn completed(&self) -> usize {
        self.latencies.len()
    }

    /// Nearest-rank percentile of the latency distribution, in cycles.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let n = self.latencies.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        self.latencies[rank.min(n) - 1]
    }

    /// Mean latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
    }

    /// Goodput: completed requests per million cycles of makespan.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.completed() as f64 * 1e6 / self.makespan_cycles as f64
    }

    /// Mean dispatched batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            return 0.0;
        }
        self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
    }

    /// Power-of-two latency histogram: `(bucket_floor_cycles, count)`
    /// where bucket `[2^k, 2^(k+1))` is keyed by `2^k` (latency 0, if it
    /// ever occurred, is keyed by 0).
    pub fn latency_histogram(&self) -> Vec<(u64, u64)> {
        let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
        for &lat in &self.latencies {
            let floor = if lat == 0 {
                0
            } else {
                1u64 << (63 - lat.leading_zeros())
            };
            *buckets.entry(floor).or_insert(0) += 1;
        }
        buckets.into_iter().collect()
    }

    /// Batch-size histogram: `(size, count)`, ascending by size.
    pub fn batch_histogram(&self) -> Vec<(usize, u64)> {
        let mut buckets: BTreeMap<usize, u64> = BTreeMap::new();
        for &b in &self.batch_sizes {
            *buckets.entry(b).or_insert(0) += 1;
        }
        buckets.into_iter().collect()
    }

    fn latency_stats_json(&self, scale: f64) -> String {
        let mut w = JsonWriter::object();
        for (name, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
            w.field_f64(name, self.percentile(p) as f64 * scale);
        }
        w.field_f64("mean", self.mean_latency() * scale);
        w.field_f64(
            "max",
            self.latencies.last().copied().unwrap_or(0) as f64 * scale,
        );
        w.finish()
    }

    /// Deterministic JSON for this run — byte-stable for a fixed
    /// `(seed, rate, policy, kv, cost model)`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("policy", &self.policy);
        w.field_u64("max_batch", self.max_batch as u64);
        w.field_u64("window_cycles", self.window_cycles);
        w.field_u64("seed", self.seed);
        w.field_f64("rate_per_mcycle", self.rate_per_mcycle);
        w.field_u64("requests", self.requests as u64);
        w.field_u64("completed", self.completed() as u64);
        w.field_u64("rejected", self.rejected);
        w.field_u64("makespan_cycles", self.makespan_cycles);
        w.field_f64("throughput_per_mcycle", self.throughput_per_mcycle());
        w.raw_field("latency_cycles", &self.latency_stats_json(1.0));
        // cycles / MHz = microseconds.
        w.raw_field(
            "latency_us",
            &self.latency_stats_json(1.0 / self.clock_mhz as f64),
        );
        let hist: Vec<String> = self
            .latency_histogram()
            .iter()
            .map(|(lo, n)| format!("[{lo},{n}]"))
            .collect();
        w.raw_field("latency_histogram", &format!("[{}]", hist.join(",")));
        w.field_u64("batches", self.batch_sizes.len() as u64);
        w.field_f64("mean_batch", self.mean_batch());
        let bhist: Vec<String> = self
            .batch_histogram()
            .iter()
            .map(|(b, n)| format!("[{b},{n}]"))
            .collect();
        w.raw_field("batch_histogram", &format!("[{}]", bhist.join(",")));
        let mut kvw = JsonWriter::object();
        kvw.field_u64("bytes_per_seq", self.kv.bytes_per_seq);
        if self.kv.capacity_bytes == u64::MAX {
            kvw.field_str("capacity_bytes", "unbounded");
        } else {
            kvw.field_u64("capacity_bytes", self.kv.capacity_bytes);
        }
        kvw.field_u64("peak_bytes", self.kv_peak_bytes);
        w.raw_field("kv", &kvw.finish());
        w.finish()
    }
}

/// Runs the serving loop for one workload under one policy.
///
/// # Panics
///
/// Panics if the policy's `max_batch` is zero.
pub fn simulate(
    cost: &mut CostModel,
    workload: &Workload,
    policy: &Policy,
    kv: &KvCache,
) -> ServingReport {
    let arrivals = workload.arrival_cycles();
    let mut report = run(cost, &arrivals, policy, kv);
    report.seed = workload.seed;
    report.rate_per_mcycle = workload.rate_per_mcycle;
    report
}

/// Runs `simulate` across a sweep of offered loads (the
/// throughput-vs-load curve).
pub fn rate_sweep(
    cost: &mut CostModel,
    seed: u64,
    requests: usize,
    rates: &[f64],
    policy: &Policy,
    kv: &KvCache,
) -> Vec<ServingReport> {
    rates
        .iter()
        .map(|&rate_per_mcycle| {
            let w = Workload {
                seed,
                requests,
                rate_per_mcycle,
            };
            simulate(cost, &w, policy, kv)
        })
        .collect()
}

/// The event loop proper, over explicit arrival cycles (non-decreasing).
fn run(cost: &mut CostModel, arrivals: &[u64], policy: &Policy, kv: &KvCache) -> ServingReport {
    assert!(policy.max_batch() > 0, "max_batch must be positive");
    let mut waiting: VecDeque<u64> = VecDeque::new();
    let mut running: Option<(u64, Vec<u64>)> = None; // (done_at, member arrivals)
    let mut next_idx = 0usize;
    let mut t_free = 0u64;
    let mut inflight = 0u64;
    let mut kv_peak = 0u64;
    let mut rejected = 0u64;
    let mut makespan = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut batch_sizes: Vec<usize> = Vec::new();

    loop {
        let next_done = running.as_ref().map(|&(done, _)| done);
        let next_arr = arrivals.get(next_idx).copied();
        let next_dispatch = if running.is_none() && !waiting.is_empty() {
            Some(policy.dispatch_cycle(&waiting, t_free))
        } else {
            None
        };
        let Some(now) = [next_done, next_arr, next_dispatch]
            .into_iter()
            .flatten()
            .min()
        else {
            break;
        };

        // Tie order at equal cycles: completion frees KV before the
        // arrival is admitted; the arrival is enqueued before the batch
        // is sealed.
        if next_done == Some(now) {
            let (done, members) = running.take().expect("completion event without a batch");
            t_free = done;
            makespan = done;
            inflight -= kv.bytes_per_seq * members.len() as u64;
            for arrival in members {
                latencies.push(done - arrival);
            }
        } else if next_arr == Some(now) {
            next_idx += 1;
            if inflight.saturating_add(kv.bytes_per_seq) > kv.capacity_bytes {
                rejected += 1;
            } else {
                inflight += kv.bytes_per_seq;
                kv_peak = kv_peak.max(inflight);
                waiting.push_back(now);
            }
        } else {
            let members = policy.take_batch(&mut waiting, now);
            let block = cost.block_cost(members.len());
            batch_sizes.push(members.len());
            running = Some((now + block.cycles, members));
        }
    }

    latencies.sort_unstable();
    ServingReport {
        policy: policy.name().to_string(),
        max_batch: policy.max_batch(),
        window_cycles: policy.window_cycles(),
        seed: 0,
        rate_per_mcycle: 0.0,
        requests: arrivals.len(),
        rejected,
        makespan_cycles: makespan,
        latencies,
        batch_sizes,
        kv_peak_bytes: kv_peak,
        kv: *kv,
        clock_mhz: cost.clock_mhz(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::BlockCost;
    use tcsim_sim::GpuConfig;

    /// A cost model with hand-primed per-batch costs (no simulation), so
    /// the queueing arithmetic can be checked exactly.
    fn primed(costs: &[(usize, u64)]) -> CostModel {
        let mut cm = CostModel::new(GpuConfig::mini(), 0);
        for &(batch, cycles) in costs {
            cm.prime(
                batch,
                BlockCost {
                    cycles,
                    instructions: cycles / 2,
                },
            );
        }
        cm
    }

    #[test]
    fn arrivals_are_deterministic_and_nondecreasing() {
        let w = Workload {
            seed: 9,
            requests: 64,
            rate_per_mcycle: 200.0,
        };
        let a = w.arrival_cycles();
        let b = w.arrival_cycles();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|p| p[0] <= p[1]));
        assert_eq!(a.len(), 64);
        // Different seed, different stream.
        let c = Workload { seed: 10, ..w }.arrival_cycles();
        assert_ne!(a, c);
    }

    #[test]
    fn static_window_seals_partial_batch() {
        let mut cm = primed(&[(1, 1000), (2, 1500)]);
        let policy = Policy::Static {
            max_batch: 4,
            window_cycles: 500,
        };
        let r = run(&mut cm, &[0, 100, 3000], &policy, &KvCache::unbounded());
        // Head (t=0) waits out its 500-cycle window, picks up the t=100
        // arrival, runs 1500 cycles; the t=3000 arrival rides alone.
        assert_eq!(r.batch_sizes, vec![2, 1]);
        assert_eq!(r.makespan_cycles, 3500 + 1000);
        // Completions at 2000 (arrivals 0, 100) and 4500 (arrival 3000).
        let mut lats = vec![2000, 2000 - 100, 4500 - 3000];
        lats.sort_unstable();
        assert_eq!(r.latencies, lats);
    }

    #[test]
    fn static_full_batch_dispatches_before_window() {
        let mut cm = primed(&[(4, 2000)]);
        let policy = Policy::Static {
            max_batch: 4,
            window_cycles: 500,
        };
        let r = run(&mut cm, &[0, 10, 20, 30], &policy, &KvCache::unbounded());
        // The 4th arrival fills the batch at t=30 — no need to wait out
        // the window.
        assert_eq!(r.batch_sizes, vec![4]);
        assert_eq!(r.makespan_cycles, 30 + 2000);
    }

    #[test]
    fn static_seal_excludes_arrivals_during_service() {
        let mut cm = primed(&[(1, 1000), (2, 1500)]);
        let policy = Policy::Static {
            max_batch: 4,
            window_cycles: 100,
        };
        // t=0 seals at 100 and runs alone until 1100. t=500 arrives
        // mid-service; its own batch seals at 600 but can only launch at
        // 1100. t=590 joins it (≤ its seal); nothing else does.
        let r = run(&mut cm, &[0, 500, 590], &policy, &KvCache::unbounded());
        assert_eq!(r.batch_sizes, vec![1, 2]);
        assert_eq!(r.makespan_cycles, 1100 + 1500);
    }

    #[test]
    fn continuous_joins_arrivals_that_came_during_service() {
        let mut cm = primed(&[(1, 1000), (2, 1500)]);
        let policy = Policy::Continuous { max_batch: 4 };
        // Same arrivals as the static test above: t=0 dispatches
        // immediately and alone; t=500 and t=590 both wait for idle at
        // t=1000 and share a batch — continuous batching has no seal.
        let r = run(&mut cm, &[0, 500, 590], &policy, &KvCache::unbounded());
        assert_eq!(r.batch_sizes, vec![1, 2]);
        assert_eq!(r.makespan_cycles, 1000 + 1500);
        let mut lats = vec![1000, 2500 - 500, 2500 - 590];
        lats.sort_unstable();
        assert_eq!(r.latencies, lats);
    }

    #[test]
    fn continuous_respects_max_batch() {
        let mut cm = primed(&[(2, 1500)]);
        let policy = Policy::Continuous { max_batch: 2 };
        let r = run(&mut cm, &[0, 0, 0, 0], &policy, &KvCache::unbounded());
        assert_eq!(r.batch_sizes, vec![2, 2]);
        assert_eq!(r.makespan_cycles, 3000);
    }

    #[test]
    fn kv_admission_rejects_when_full_and_frees_on_completion() {
        let mut cm = primed(&[(1, 1000)]);
        let policy = Policy::Continuous { max_batch: 1 };
        let kv = KvCache {
            bytes_per_seq: 100,
            capacity_bytes: 150,
        };
        // t=10 is rejected (t=0 still holds its reservation); t=2000 is
        // admitted after t=0 completed at 1000.
        let r = run(&mut cm, &[0, 10, 2000], &policy, &kv);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.completed(), 2);
        assert_eq!(r.kv_peak_bytes, 100);
        assert_eq!(r.requests, 3);
    }

    #[test]
    fn completion_frees_kv_for_same_cycle_arrival() {
        let mut cm = primed(&[(1, 1000)]);
        let policy = Policy::Continuous { max_batch: 1 };
        let kv = KvCache {
            bytes_per_seq: 100,
            capacity_bytes: 100,
        };
        // The t=1000 arrival lands exactly when the first request
        // completes; completion is processed first, so it is admitted.
        let r = run(&mut cm, &[0, 1000], &policy, &kv);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.completed(), 2);
        assert_eq!(r.makespan_cycles, 2000);
    }

    #[test]
    fn percentiles_and_histograms() {
        let r = ServingReport {
            policy: "static".into(),
            max_batch: 4,
            window_cycles: 0,
            seed: 0,
            rate_per_mcycle: 0.0,
            requests: 4,
            rejected: 0,
            makespan_cycles: 1_000_000,
            latencies: vec![1, 2, 3, 1000],
            batch_sizes: vec![1, 3],
            kv_peak_bytes: 0,
            kv: KvCache::unbounded(),
            clock_mhz: 1000,
        };
        assert_eq!(r.percentile(50.0), 2);
        assert_eq!(r.percentile(99.0), 1000);
        assert_eq!(r.latency_histogram(), vec![(1, 1), (2, 2), (512, 1)]);
        assert_eq!(r.batch_histogram(), vec![(1, 1), (3, 1)]);
        assert_eq!(r.throughput_per_mcycle(), 4.0);
        assert_eq!(r.mean_batch(), 2.0);
    }

    #[test]
    fn report_json_is_deterministic() {
        let mut cm = primed(&[(1, 1000), (2, 1500), (3, 1800), (4, 2000)]);
        let w = Workload {
            seed: 5,
            requests: 40,
            rate_per_mcycle: 900.0,
        };
        let policy = Policy::Static {
            max_batch: 4,
            window_cycles: 400,
        };
        let kv = KvCache::for_encoder(8);
        let a = simulate(&mut cm, &w, &policy, &kv).to_json();
        let b = simulate(&mut cm, &w, &policy, &kv).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"policy\":\"static\""), "{a}");
    }
}
