//! Memoized per-batch cycle cost of the transformer encoder block.
//!
//! The serving loop asks for the cost of a batch thousands of times but
//! only ever sees a handful of distinct batch sizes (1..=max_batch).
//! Simulating the lowered block takes seconds; looking it up must be
//! free. So each distinct `(model, seed, batch, GpuConfig)` tuple is
//! simulated once — with the full differential check against the host
//! f32 reference, so a serving run can never be costed by a block that
//! computes the wrong numbers — and keyed by content hash thereafter,
//! the same `Fnv128`-over-identity scheme `tcsim-serve` uses for its
//! result cache.

use std::collections::HashMap;

use tcsim_nn::models::{encoder, input_for};
use tcsim_nn::run_chained;
use tcsim_serve::hash::Fnv128;
use tcsim_sim::GpuConfig;

/// The simulated cost of one encoder-block invocation at a fixed batch
/// size: every lowered kernel launch, summed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockCost {
    /// Total GPU cycles across all stages of the block.
    pub cycles: u64,
    /// Total instructions retired across all stages.
    pub instructions: u64,
}

/// Simulates-once-then-memoizes the encoder block cost per batch size.
///
/// # Example
///
/// ```no_run
/// use tcsim_infer::CostModel;
/// use tcsim_sim::GpuConfig;
///
/// let mut cm = CostModel::new(GpuConfig::mini(), 1);
/// let c1 = cm.block_cost(1);
/// let c2 = cm.block_cost(1); // cache hit: no second simulation
/// assert_eq!(c1, c2);
/// assert_eq!(cm.sim_invocations(), 1);
/// ```
#[derive(Debug)]
pub struct CostModel {
    cfg: GpuConfig,
    seed: u64,
    cache: HashMap<String, BlockCost>,
    sim_invocations: u64,
}

impl CostModel {
    /// Creates a cost model for the encoder built from `seed`, timed on
    /// `cfg`.
    pub fn new(cfg: GpuConfig, seed: u64) -> CostModel {
        CostModel {
            cfg,
            seed,
            cache: HashMap::new(),
            sim_invocations: 0,
        }
    }

    /// The content-hash cache key for a batch size: model identity, data
    /// seed, batch, and the full `GpuConfig` debug form (any timing
    /// parameter change must miss the cache).
    pub fn shape_key(&self, batch: usize) -> String {
        let mut h = Fnv128::new();
        h.field(b"encoder");
        h.u64(self.seed);
        h.u64(batch as u64);
        h.field(format!("{:?}", self.cfg).as_bytes());
        h.hex()
    }

    /// The block cost at `batch`, simulating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero, or if the simulated block drifts out
    /// of differential tolerance against the host reference.
    pub fn block_cost(&mut self, batch: usize) -> BlockCost {
        let key = self.shape_key(batch);
        if let Some(c) = self.cache.get(&key) {
            return *c;
        }
        self.sim_invocations += 1;
        let net = encoder(self.seed, batch);
        let input = input_for(&net, self.seed);
        let report = run_chained(&net, &input, self.cfg.clone(), false);
        report.assert_within_tolerance();
        let cost = BlockCost {
            cycles: report.total_cycles(),
            instructions: report.layers.iter().map(|l| l.instructions).sum(),
        };
        self.cache.insert(key, cost);
        cost
    }

    /// Injects a known cost for `batch` without simulating — for tests
    /// of the queueing layer and for replaying costs recorded offline.
    pub fn prime(&mut self, batch: usize, cost: BlockCost) {
        let key = self.shape_key(batch);
        self.cache.insert(key, cost);
    }

    /// How many full block simulations have actually run (as opposed to
    /// cache hits). Bounded by the number of distinct batch sizes seen.
    pub fn sim_invocations(&self) -> u64 {
        self.sim_invocations
    }

    /// Number of distinct shapes currently memoized.
    pub fn distinct_shapes(&self) -> usize {
        self.cache.len()
    }

    /// The core clock of the modeled GPU, for cycle → microsecond
    /// conversions in reports.
    pub fn clock_mhz(&self) -> u32 {
        self.cfg.clock_mhz
    }

    /// The data seed the encoder weights/inputs are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_key_separates_batch_seed_and_config() {
        let a = CostModel::new(GpuConfig::mini(), 1);
        let b = CostModel::new(GpuConfig::mini(), 2);
        let c = CostModel::new(GpuConfig::titan_v(), 1);
        assert_ne!(a.shape_key(1), a.shape_key(2));
        assert_ne!(a.shape_key(1), b.shape_key(1));
        assert_ne!(a.shape_key(1), c.shape_key(1));
    }

    #[test]
    fn memoizes_per_batch() {
        let mut cm = CostModel::new(GpuConfig::mini(), 1);
        let c1 = cm.block_cost(1);
        assert!(c1.cycles > 0 && c1.instructions > 0);
        let again = cm.block_cost(1);
        assert_eq!(c1, again);
        assert_eq!(cm.sim_invocations(), 1);
        let c2 = cm.block_cost(2);
        assert!(c2.cycles > c1.cycles, "batch 2 must cost more than batch 1");
        assert_eq!(cm.sim_invocations(), 2);
        assert_eq!(cm.distinct_shapes(), 2);
    }
}
