//! End-to-end serving-simulator checks against the real (simulated,
//! differentially verified) encoder block cost — the slow path the unit
//! tests stub out. Kept to small request counts and `max_batch` 2 so
//! only two full block simulations run per cost model.

use tcsim_infer::{rate_sweep, simulate, CostModel, KvCache, Policy, Workload};
use tcsim_sim::GpuConfig;

#[test]
fn seeded_run_is_byte_deterministic_and_memoized() {
    let w = Workload {
        seed: 3,
        requests: 24,
        rate_per_mcycle: 120.0,
    };
    let policy = Policy::Continuous { max_batch: 2 };
    let kv = KvCache::for_encoder(6);

    let mut cost_a = CostModel::new(GpuConfig::mini(), 3);
    let a = simulate(&mut cost_a, &w, &policy, &kv);
    // A fresh cost model must reproduce the exact same trajectory.
    let mut cost_b = CostModel::new(GpuConfig::mini(), 3);
    let b = simulate(&mut cost_b, &w, &policy, &kv);
    assert_eq!(a.to_json(), b.to_json());

    // Re-running on the warm model is a pure cache hit: the simulation
    // count must not grow, and the report must not change.
    let again = simulate(&mut cost_a, &w, &policy, &kv);
    assert_eq!(a.to_json(), again.to_json());
    assert!(
        cost_a.sim_invocations() <= 2,
        "max_batch 2 allows at most 2 distinct shapes"
    );
    assert_eq!(cost_a.sim_invocations() as usize, cost_a.distinct_shapes());

    // Conservation: every offered request either completed or was
    // rejected at admission (the run always drains).
    assert_eq!(a.completed() as u64 + a.rejected, w.requests as u64);
}

#[test]
fn policies_shape_the_latency_distribution_differently() {
    let mut cost = CostModel::new(GpuConfig::mini(), 3);
    let w = Workload {
        seed: 3,
        requests: 24,
        rate_per_mcycle: 120.0,
    };
    let kv = KvCache::unbounded();
    let stat = simulate(
        &mut cost,
        &w,
        &Policy::Static {
            max_batch: 2,
            window_cycles: 40_000,
        },
        &kv,
    );
    let cont = simulate(&mut cost, &w, &Policy::Continuous { max_batch: 2 }, &kv);
    assert_eq!(stat.completed(), 24);
    assert_eq!(cont.completed(), 24);
    assert_ne!(
        stat.to_json(),
        cont.to_json(),
        "policies must be distinguishable"
    );
    // A 40k-cycle batching window (about two batch-1 block times) makes
    // the head request idle-wait; continuous batching never does.
    assert!(
        stat.mean_latency() > cont.mean_latency(),
        "window batching should cost latency here: static {} vs continuous {}",
        stat.mean_latency(),
        cont.mean_latency()
    );
    // Every latency is at least one block time at some batch size.
    let min_block = cost.block_cost(1).cycles.min(cost.block_cost(2).cycles);
    assert!(cont.latencies.iter().all(|&l| l >= min_block));
}

#[test]
fn kv_capacity_gates_admission() {
    let mut cost = CostModel::new(GpuConfig::mini(), 3);
    let w = Workload {
        seed: 3,
        requests: 24,
        rate_per_mcycle: 400.0,
    };
    let policy = Policy::Continuous { max_batch: 2 };
    // One sequence of headroom: under a saturating arrival rate most
    // requests must bounce off the admission cap.
    let tight = simulate(&mut cost, &w, &policy, &KvCache::for_encoder(1));
    assert!(tight.rejected > 0, "tight KV cache must reject under load");
    assert_eq!(tight.kv_peak_bytes, tight.kv.bytes_per_seq);
    let open = simulate(&mut cost, &w, &policy, &KvCache::unbounded());
    assert_eq!(open.rejected, 0);
    assert_eq!(open.completed(), 24);
    assert!(open.kv_peak_bytes > tight.kv_peak_bytes);
}

#[test]
fn throughput_saturates_as_load_grows() {
    let mut cost = CostModel::new(GpuConfig::mini(), 3);
    let policy = Policy::Continuous { max_batch: 2 };
    let kv = KvCache::unbounded();
    let runs = rate_sweep(&mut cost, 3, 24, &[10.0, 400.0], &policy, &kv);
    assert_eq!(runs.len(), 2);
    // At 10 req/Mcycle the system is under-loaded: goodput tracks the
    // offered rate. At 400 it cannot (batch-2 service saturates near 60).
    assert!(
        runs[0].throughput_per_mcycle() < 15.0,
        "{}",
        runs[0].throughput_per_mcycle()
    );
    assert!(runs[1].throughput_per_mcycle() > runs[0].throughput_per_mcycle());
    assert!(
        runs[1].throughput_per_mcycle() < 400.0 * 0.5,
        "saturated goodput must fall far below offered load"
    );
    // Under saturation the batcher actually batches.
    assert!(runs[1].mean_batch() > runs[0].mean_batch());
}
