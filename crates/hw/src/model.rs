//! Analytic first-principles Titan V performance surrogate.
//!
//! The paper validates its simulator against a physical Titan V. No GPU is
//! available to this reproduction, so — per the substitution policy in
//! `DESIGN.md` — the "hardware" side of every comparison is this analytic
//! model, built **only** from public datasheet constants and the paper's
//! own measured latencies, never from the simulator:
//!
//! * 80 SMs × 8 tensor cores at 1530 MHz → 125.3 TFLOPS tensor peak
//!   (§II-D), 15.7 TFLOPS FP32 FMA peak;
//! * 653 GB/s HBM2 bandwidth across 24 partitions;
//! * kernel efficiency curves with the saturating shape cuBLAS exhibits
//!   (Fig 17): `eff(s) = eff_max · s² / (s² + s_half²)`;
//! * the paper's measured instruction latencies (Fig 9, Fig 15) for
//!   latency-bound regimes.
//!
//! Predictions combine a compute roofline, a memory roofline, an
//! occupancy ramp for grids too small to fill the machine, and a fixed
//! launch overhead, plus deterministic seeded measurement noise standing
//! in for run-to-run hardware variation.

use crate::KernelClass;
use tcsim_isa::Dim3;

/// Datasheet + calibration constants of the modeled GPU.
#[derive(Clone, Debug)]
pub struct HwModel {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Streaming multiprocessors.
    pub sms: f64,
    /// Tensor-core peak in TFLOPS.
    pub tensor_peak: f64,
    /// FP32 FMA peak in TFLOPS.
    pub fp32_peak: f64,
    /// Packed-FP16 FMA peak in TFLOPS (2× FP32 rate).
    pub fp16_peak: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Fixed kernel launch + drain overhead in cycles.
    pub overhead_cycles: f64,
    /// Relative amplitude of the deterministic measurement noise.
    pub noise: f64,
    seed: u64,
}

impl HwModel {
    /// The NVIDIA Titan V of the paper's evaluation (§V-A).
    pub fn titan_v() -> HwModel {
        HwModel {
            clock_ghz: 1.53,
            sms: 80.0,
            tensor_peak: 125.3,
            fp32_peak: 15.7,
            fp16_peak: 31.4,
            dram_gbps: 653.0,
            overhead_cycles: 2600.0,
            noise: 0.02,
            seed: 0x7171_F00D,
        }
    }

    /// Peak FLOPs per core cycle for a kernel class.
    fn peak_tflops(&self, class: KernelClass) -> f64 {
        match class {
            KernelClass::TheoreticalLimit
            | KernelClass::MaxPerfFp16
            | KernelClass::MaxPerfMixed
            | KernelClass::CublasTcFp16
            | KernelClass::CublasTcFp32
            | KernelClass::WmmaOptimized
            | KernelClass::WmmaSimple
            | KernelClass::CutlassTc => self.tensor_peak,
            KernelClass::CublasFp32 => self.fp32_peak,
            KernelClass::CublasFp16 => self.fp16_peak,
        }
    }

    /// Saturating efficiency curve: fraction of peak achieved for a
    /// square problem of size `s` (cuBLAS-like ramp; see module docs).
    fn efficiency(&self, class: KernelClass, s: f64) -> f64 {
        let (emax, half) = match class {
            KernelClass::TheoreticalLimit => (1.0, 0.0),
            // §V-C: repeated wmma.mma with computational intensity ~1e8
            // reaches 109.6 (FP16) and 108.7 (mixed) TFLOPS.
            KernelClass::MaxPerfFp16 => (109.6 / 125.3, 0.0),
            KernelClass::MaxPerfMixed => (108.7 / 125.3, 0.0),
            // cuBLAS with tensor cores: ~96 TFLOPS at 8192² (FP16 mode).
            KernelClass::CublasTcFp16 => (0.80, 850.0),
            KernelClass::CublasTcFp32 => (0.74, 900.0),
            // The paper's shared-memory WMMA kernel: well below cuBLAS
            // (no swizzled layouts / software pipelining), ~100k cycles
            // for a 512² GEMM in Fig 14a.
            KernelClass::WmmaOptimized => (0.55, 2500.0),
            // No shared memory at all: global-bandwidth bound.
            KernelClass::WmmaSimple => (0.30, 4000.0),
            KernelClass::CutlassTc => (0.65, 1100.0),
            // FFMA SGEMM: cuBLAS sustains ~88% of FP32 peak at size.
            KernelClass::CublasFp32 => (0.88, 700.0),
            KernelClass::CublasFp16 => (0.85, 800.0),
        };
        if half == 0.0 {
            emax
        } else {
            emax * s * s / (s * s + half * half)
        }
    }

    /// Fraction of SMs that can be busy for a grid of `ctas` CTAs (the
    /// machine-fill ramp; reported for diagnostics — the small-grid
    /// penalty itself is folded into the per-class efficiency curves,
    /// whose `s_half` constants were chosen against whole-kernel
    /// observations, so multiplying both in would double-count it).
    pub fn occupancy(&self, ctas: f64) -> f64 {
        (ctas / (2.0 * self.sms)).clamp(1.0 / (2.0 * self.sms), 1.0)
    }

    /// Deterministic "measurement noise" in `[1-noise, 1+noise]`, keyed by
    /// the workload signature (the same workload always measures the same).
    pub fn jitter(&self, key: u64) -> f64 {
        let mut x = key
            .wrapping_add(self.seed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        let unit = (x % 10_000) as f64 / 10_000.0; // [0,1)
        1.0 + self.noise * (2.0 * unit - 1.0)
    }

    /// Predicted execution cycles of a GEMM `m×n×k` run with a kernel of
    /// `class` (grid of `ctas` CTAs, `bytes` of compulsory DRAM traffic).
    pub fn gemm_cycles(&self, m: usize, n: usize, k: usize, class: KernelClass) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let s = ((m * n) as f64).sqrt().max(k as f64 * 0.5);
        let elem_ab = match class {
            KernelClass::CublasFp32 => 4.0,
            _ => 2.0,
        };
        let bytes = (m * k + k * n) as f64 * elem_ab + (m * n) as f64 * 8.0;
        let eff = self.efficiency(class, s);
        let flops_per_cycle = self.peak_tflops(class) * 1e12 / (self.clock_ghz * 1e9);
        let compute_cycles = flops / (flops_per_cycle * eff);
        let bytes_per_cycle = self.dram_gbps * 1e9 / (self.clock_ghz * 1e9);
        let mem_cycles = bytes / bytes_per_cycle;
        let key = (m as u64) << 40 | (n as u64) << 20 | k as u64 ^ (class as u64) << 56;
        (compute_cycles.max(mem_cycles) + self.overhead_cycles) * self.jitter(key)
    }

    /// Predicted achieved TFLOPS of a square GEMM (the Fig 17 series).
    pub fn gemm_tflops(&self, size: usize, class: KernelClass) -> f64 {
        if class == KernelClass::TheoreticalLimit {
            return 125.0;
        }
        let flops = 2.0 * (size as f64).powi(3);
        let cycles = self.gemm_cycles(size, size, size, class);
        flops / (cycles / (self.clock_ghz * 1e9)) / 1e12
    }

    /// Predicted hardware IPC for a kernel that issues `instructions`
    /// warp instructions and runs `cycles` (predicted) cycles.
    pub fn ipc(&self, instructions: u64, cycles: f64) -> f64 {
        instructions as f64 / cycles
    }

    /// Minimum `wmma.{load,mma,store}` latencies the paper measured in a
    /// shared-memory GEMM (Fig 15): 125, 70 and 120 cycles.
    pub fn wmma_min_latencies(&self) -> (u64, u64, u64) {
        (125, 70, 120)
    }

    /// Grid size heuristic used by the correlation studies.
    pub fn gemm_grid(m: usize, n: usize, tile: usize) -> Dim3 {
        Dim3::xy((n / tile) as u32, (m / tile) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_match_datasheet() {
        let hw = HwModel::titan_v();
        assert!((hw.tensor_peak - 125.3).abs() < 0.5);
        assert!((hw.tensor_peak / hw.fp32_peak - 8.0).abs() < 0.05);
        assert_eq!(hw.fp16_peak, 2.0 * hw.fp32_peak);
    }

    #[test]
    fn best_gemm_hits_about_96_tflops_at_8192() {
        // §V-C: "The maximum performance we obtained for a GEMM kernel was
        // around 96 TFLOPs ... for 8192×8192 matrix using FP16 mode."
        let hw = HwModel::titan_v();
        let t = hw.gemm_tflops(8192, KernelClass::CublasTcFp16);
        assert!((t - 96.0).abs() < 8.0, "got {t}");
    }

    #[test]
    fn max_perf_kernels_match_paper() {
        let hw = HwModel::titan_v();
        let f16 = hw.gemm_tflops(8192, KernelClass::MaxPerfFp16);
        let mixed = hw.gemm_tflops(8192, KernelClass::MaxPerfMixed);
        assert!((f16 - 109.6).abs() < 4.0, "fp16 {f16}");
        assert!((mixed - 108.7).abs() < 4.0, "mixed {mixed}");
        // FP16 mode is slightly faster than mixed (109.6 vs 108.7); with
        // ±2% measurement jitter the ordering holds within tolerance.
        assert!(f16 > mixed * 0.97);
    }

    #[test]
    fn tensor_cores_speed_up_sgemm_3_to_6x_and_hgemm_3x() {
        // §V-C: "tensor cores provide a performance boost of about 3−6×
        // that of SGEMM ... and about 3× that of HGEMM".
        let hw = HwModel::titan_v();
        for size in [2048usize, 4096, 8192] {
            let tc = hw.gemm_tflops(size, KernelClass::CublasTcFp16);
            let sgemm = hw.gemm_tflops(size, KernelClass::CublasFp32);
            let hgemm = hw.gemm_tflops(size, KernelClass::CublasFp16);
            let s_ratio = tc / sgemm;
            let h_ratio = tc / hgemm;
            assert!(
                (3.0..=7.5).contains(&s_ratio),
                "size {size}: TC/SGEMM = {s_ratio}"
            );
            assert!(
                (2.0..=4.5).contains(&h_ratio),
                "size {size}: TC/HGEMM = {h_ratio}"
            );
        }
    }

    #[test]
    fn cublas_beats_wmma_kernel() {
        // §V-C: cuBLAS GEMM outperforms the WMMA implementation (both
        // using tensor cores).
        let hw = HwModel::titan_v();
        for size in [512usize, 1024, 4096, 16384] {
            assert!(
                hw.gemm_tflops(size, KernelClass::CublasTcFp16)
                    > hw.gemm_tflops(size, KernelClass::WmmaOptimized),
                "size {size}"
            );
        }
    }

    #[test]
    fn nothing_exceeds_the_theoretical_limit() {
        let hw = HwModel::titan_v();
        for size in [256usize, 1024, 4096, 16384] {
            for class in KernelClass::ALL {
                let t = hw.gemm_tflops(size, class);
                assert!(t <= 125.5, "{class:?} at {size}: {t}");
            }
        }
    }

    #[test]
    fn wmma_512_gemm_is_around_100k_cycles() {
        // Fig 14a's y-axis: the WMMA shared-memory kernel takes ~100k
        // cycles at 512² on the Titan V.
        let hw = HwModel::titan_v();
        let c = hw.gemm_cycles(512, 512, 512, KernelClass::WmmaOptimized);
        assert!((50_000.0..200_000.0).contains(&c), "got {c}");
    }

    #[test]
    fn cycles_grow_monotonically_with_size() {
        let hw = HwModel::titan_v();
        // Below ~256 the fixed launch overhead dominates and jitter can
        // locally reorder; from 256 up growth is strict.
        let sizes = [256usize, 512, 1024, 2048, 4096];
        let cs: Vec<f64> = sizes
            .iter()
            .map(|&s| hw.gemm_cycles(s, s, s, KernelClass::CutlassTc))
            .collect();
        for w in cs.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let hw = HwModel::titan_v();
        for key in 0..100u64 {
            let j = hw.jitter(key);
            assert_eq!(j, hw.jitter(key));
            assert!((0.98..=1.02).contains(&j));
        }
        assert_ne!(hw.jitter(1), hw.jitter(2));
    }

    #[test]
    fn min_latencies_match_fig15() {
        let (l, m, s) = HwModel::titan_v().wmma_min_latencies();
        assert_eq!((l, m, s), (125, 70, 120));
    }
}
