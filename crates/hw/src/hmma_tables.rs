//! Measured per-architecture HMMA latency tables.
//!
//! These are the raw numbers behind the timing model: the Fig 9 cumulative
//! step-completion sequences (Titan V), the Table I per-set cumulative
//! cycles (RTX 2080), and the Ampere `mma.sync` latency/issue-interval
//! pairs (microbenchmarks in the style of arXiv:2502.15999). They live in
//! this crate — the hardware surrogate — because they are *measurements*,
//! not model structure: `tcsim-core` consumes them to derive schedules,
//! and correlation studies can cite them independently of the simulator.

use tcsim_isa::{WmmaShape, WmmaType};

/// Cumulative cycles of Volta's HMMA steps in mixed precision (Fig 9a).
pub const VOLTA_MIXED_CUMULATIVE: [u32; 16] = [
    10, 12, 14, 18, 20, 22, 24, 28, 30, 32, 34, 38, 40, 42, 44, 54,
];

/// Cumulative cycles of Volta's HMMA steps in FP16 mode (Fig 9b).
pub const VOLTA_FP16_CUMULATIVE: [u32; 8] = [12, 21, 25, 34, 38, 47, 51, 64];

/// Precision classes of the Turing Table I rows.
///
/// Mirrors `tcsim-core`'s `TuringMode`, but keyed here by datapath width
/// rather than ISA type qualifiers so the table stays ISA-agnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HmmaClass {
    /// 16-bit multiplicands accumulating into FP32.
    HalfAccF32,
    /// 16-bit multiplicands accumulating into FP16.
    HalfAccF16,
    /// 8-bit integer mode.
    Int8,
    /// 4-bit integer mode (single HMMA).
    Int4,
}

/// Table I: average cumulative cycles to execute all HMMA instructions up
/// to each SET on Turing (RTX 2080). `None` for combinations the hardware
/// does not support.
pub fn turing_set_completions(shape: WmmaShape, class: HmmaClass) -> Option<&'static [u32]> {
    let v: &'static [u32] = match (shape, class) {
        (WmmaShape::M16N16K16, HmmaClass::HalfAccF32) => &[42, 56, 78, 99],
        (WmmaShape::M16N16K16, HmmaClass::HalfAccF16) => &[44, 52, 60, 74],
        (WmmaShape::M16N16K16, HmmaClass::Int8) => &[40, 44, 47, 59],
        (WmmaShape::M32N8K16, HmmaClass::HalfAccF32) => &[48, 60, 81, 104],
        (WmmaShape::M32N8K16, HmmaClass::HalfAccF16) => &[44, 52, 60, 74],
        (WmmaShape::M32N8K16, HmmaClass::Int8) => &[52, 55, 59, 73],
        (WmmaShape::M8N32K16, HmmaClass::HalfAccF32) => &[42, 56, 77, 99],
        (WmmaShape::M8N32K16, HmmaClass::HalfAccF16) => &[42, 50, 58, 72],
        (WmmaShape::M8N32K16, HmmaClass::Int8) => &[38, 42, 46, 56],
        (WmmaShape::M8N8K32, HmmaClass::Int4) => &[230],
        _ => return None,
    };
    Some(v)
}

/// Latency summary of one Ampere `mma.sync` instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmaSyncLatency {
    /// Issue-to-writeback cycles.
    pub latency: u32,
    /// Minimum spacing of back-to-back `mma.sync` on one tensor-core pair.
    pub initiation_interval: u32,
}

/// Ampere `mma.sync` latency table (A100-class SM).
///
/// A single `mma.sync` is one hardware instruction — there is no multi-set
/// HMMA decomposition to observe — so the table carries a flat
/// latency/interval pair per mode:
///
/// * 16-bit `m16n8k8` retires its 4-deep K loop in one FEDP pass:
///   latency 16, new issue every 4 cycles.
/// * 16-bit `m16n8k16` doubles the K extent: latency 24, interval 8.
/// * TF32 `m16n8k8` moves 32-bit multiplicands over the same operand
///   buses, doubling collection traffic: latency 24, interval 8.
/// * Sparse `m16n8k16` reads a compressed (k8-sized) A plus metadata; the
///   sparse-skip halves FEDP occupancy back to the k8 interval while the
///   metadata-driven B-column select adds 4 cycles of latency over the
///   dense k8 case: latency 20, interval 4.
///
/// BF16 rows equal F16 rows — the datapath width is identical.
pub fn ampere_mma_sync(
    shape: WmmaShape,
    ab_type: WmmaType,
    sparse: bool,
) -> Option<MmaSyncLatency> {
    let t = match (shape, ab_type, sparse) {
        (WmmaShape::M16N8K8, WmmaType::F16 | WmmaType::BF16, false) => MmaSyncLatency {
            latency: 16,
            initiation_interval: 4,
        },
        (WmmaShape::M16N8K16, WmmaType::F16 | WmmaType::BF16, false) => MmaSyncLatency {
            latency: 24,
            initiation_interval: 8,
        },
        (WmmaShape::M16N8K8, WmmaType::TF32, false) => MmaSyncLatency {
            latency: 24,
            initiation_interval: 8,
        },
        (WmmaShape::M16N8K16, WmmaType::F16 | WmmaType::BF16, true) => MmaSyncLatency {
            latency: 20,
            initiation_interval: 4,
        },
        _ => return None,
    };
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_sequences_are_strictly_increasing() {
        assert!(VOLTA_MIXED_CUMULATIVE.windows(2).all(|w| w[0] < w[1]));
        assert!(VOLTA_FP16_CUMULATIVE.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(VOLTA_MIXED_CUMULATIVE.last(), Some(&54));
        assert_eq!(VOLTA_FP16_CUMULATIVE.last(), Some(&64));
    }

    #[test]
    fn turing_table_matches_paper() {
        assert_eq!(
            turing_set_completions(WmmaShape::M16N16K16, HmmaClass::HalfAccF32),
            Some(&[42, 56, 78, 99][..])
        );
        assert_eq!(
            turing_set_completions(WmmaShape::M8N8K32, HmmaClass::Int4),
            Some(&[230][..])
        );
        assert_eq!(
            turing_set_completions(WmmaShape::M8N8K32, HmmaClass::Int8),
            None
        );
        assert_eq!(
            turing_set_completions(WmmaShape::M16N8K8, HmmaClass::HalfAccF32),
            None
        );
    }

    #[test]
    fn ampere_table_covers_exactly_the_valid_modes() {
        // Dense 16-bit, both K extents; BF16 equals F16.
        for ab in [WmmaType::F16, WmmaType::BF16] {
            let k8 = ampere_mma_sync(WmmaShape::M16N8K8, ab, false).unwrap();
            let k16 = ampere_mma_sync(WmmaShape::M16N8K16, ab, false).unwrap();
            assert_eq!((k8.latency, k8.initiation_interval), (16, 4));
            assert_eq!((k16.latency, k16.initiation_interval), (24, 8));
            // Sparse k16 lands between the dense extents and recovers the
            // k8 issue rate.
            let sp = ampere_mma_sync(WmmaShape::M16N8K16, ab, true).unwrap();
            assert_eq!((sp.latency, sp.initiation_interval), (20, 4));
            assert!(k8.latency < sp.latency && sp.latency < k16.latency);
        }
        // TF32 is k8-only and pays the 32-bit operand-bus cost.
        let tf32 = ampere_mma_sync(WmmaShape::M16N8K8, WmmaType::TF32, false).unwrap();
        assert_eq!((tf32.latency, tf32.initiation_interval), (24, 8));
        assert_eq!(
            ampere_mma_sync(WmmaShape::M16N8K16, WmmaType::TF32, false),
            None
        );
        // No sparse TF32, no mma.sync on the wmma shapes, no integer rows.
        assert_eq!(
            ampere_mma_sync(WmmaShape::M16N8K8, WmmaType::TF32, true),
            None
        );
        assert_eq!(
            ampere_mma_sync(WmmaShape::M16N16K16, WmmaType::F16, false),
            None
        );
        assert_eq!(
            ampere_mma_sync(WmmaShape::M16N8K16, WmmaType::S8, false),
            None
        );
    }
}
