#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Analytic Titan V / RTX 2080 hardware surrogate.
//!
//! Substitutes for the physical GPUs of the paper's evaluation (see
//! `DESIGN.md` §3): predictions come from datasheet rooflines and
//! paper-reported constants — never from the simulator — so that
//! simulator-vs-surrogate correlation (Fig 14) measures what the paper's
//! simulator-vs-hardware correlation measured.

pub mod hmma_tables;
mod model;

pub use hmma_tables::{ampere_mma_sync, HmmaClass, MmaSyncLatency};
pub use model::HwModel;

/// GEMM kernel classes of the paper's Fig 17 comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// cuBLAS without tensor cores, FP32 (SGEMM).
    CublasFp32,
    /// cuBLAS without tensor cores, FP16 (HGEMM).
    CublasFp16,
    /// cuBLAS with tensor cores, mixed precision.
    CublasTcFp32,
    /// cuBLAS with tensor cores, FP16.
    CublasTcFp16,
    /// The paper's shared-memory WMMA kernel.
    WmmaOptimized,
    /// Naive WMMA kernel without shared memory.
    WmmaSimple,
    /// A CUTLASS-style tiled kernel.
    CutlassTc,
    /// Repeated-MMA stress kernel, FP16 mode.
    MaxPerfFp16,
    /// Repeated-MMA stress kernel, mixed precision.
    MaxPerfMixed,
    /// 125 TFLOPS theoretical ceiling.
    TheoreticalLimit,
}

impl KernelClass {
    /// All classes, in Fig 17 legend order.
    pub const ALL: [KernelClass; 10] = [
        KernelClass::CublasFp32,
        KernelClass::CublasFp16,
        KernelClass::CublasTcFp32,
        KernelClass::CublasTcFp16,
        KernelClass::WmmaOptimized,
        KernelClass::WmmaSimple,
        KernelClass::CutlassTc,
        KernelClass::MaxPerfFp16,
        KernelClass::MaxPerfMixed,
        KernelClass::TheoreticalLimit,
    ];
}
