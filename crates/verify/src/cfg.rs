//! Control-flow graph and dominators over resolved instruction streams.
//!
//! Branch targets in a built [`Kernel`] are already instruction indices
//! (the builder resolves labels, the parser resolves `L<pc>` references),
//! so the CFG is recovered purely from `target`/`reconv`/guard structure:
//!
//! * an unguarded `bra` always transfers to `target`;
//! * a guarded `bra` may fall through, so it has both successors;
//! * an unguarded `exit` terminates the thread; a guarded one may fall
//!   through (the executor only masks out the lanes whose guard holds).
//!
//! Reconvergence points (`reconv`) are treated as block leaders: they are
//! the join points the SIMT stack pops at, and the divergence analysis in
//! [`crate::dataflow`] bounds divergent regions by them.

use tcsim_isa::{Instr, Kernel, Op};

/// Instruction-level successor indices of `i` at `pc` in a stream of
/// `len` instructions, mirroring the executor's PC-update rules.
pub fn instr_succs(i: &Instr, pc: usize, len: usize) -> Vec<usize> {
    let fall = if pc + 1 < len { Some(pc + 1) } else { None };
    match i.op {
        Op::Exit => {
            if i.guard.is_some() {
                fall.into_iter().collect()
            } else {
                Vec::new()
            }
        }
        Op::Bra => match i.target {
            Some(t) => {
                if i.guard.is_none() {
                    vec![t]
                } else {
                    let mut v = vec![t];
                    if let Some(f) = fall {
                        if f != t {
                            v.push(f);
                        }
                    }
                    v
                }
            }
            // An unresolved branch cannot transfer; treat as fall-through.
            None => fall.into_iter().collect(),
        },
        _ => fall.into_iter().collect(),
    }
}

/// A basic block: the instruction range `start..end` with no internal
/// control transfers or join points.
#[derive(Clone, Debug)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// Control-flow graph of one kernel, with reachability and dominators.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks in instruction order; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Owning block id of each instruction.
    pub block_of: Vec<usize>,
    reachable: Vec<bool>,
    /// Dominator sets, one bitset of block ids per block.
    dom: Vec<Vec<u64>>,
}

fn bit_get(set: &[u64], i: usize) -> bool {
    set[i / 64] & (1u64 << (i % 64)) != 0
}

impl Cfg {
    /// Builds the CFG of `k` and computes dominators.
    pub fn build(k: &Kernel) -> Cfg {
        let instrs = k.instrs();
        let len = instrs.len();
        if len == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                reachable: Vec::new(),
                dom: Vec::new(),
            };
        }

        // Leaders: entry, branch/reconvergence targets, fall-throughs of
        // control transfers.
        let mut leader = vec![false; len];
        leader[0] = true;
        for (pc, i) in instrs.iter().enumerate() {
            for t in [i.target, i.reconv].into_iter().flatten() {
                if t < len {
                    leader[t] = true;
                }
            }
            if matches!(i.op, Op::Bra | Op::Exit) && pc + 1 < len {
                leader[pc + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; len];
        let mut start = 0usize;
        for pc in 0..len {
            block_of[pc] = blocks.len();
            let last = pc + 1 == len || leader[pc + 1];
            if last {
                blocks.push(Block {
                    start,
                    end: pc + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = pc + 1;
            }
        }

        let nb = blocks.len();
        for b in 0..nb {
            let last_pc = blocks[b].end - 1;
            let mut succs: Vec<usize> = instr_succs(&instrs[last_pc], last_pc, len)
                .into_iter()
                .map(|t| block_of[t])
                .collect();
            succs.sort_unstable();
            succs.dedup();
            blocks[b].succs = succs.clone();
            for s in succs {
                blocks[s].preds.push(b);
            }
        }

        // Reachability from the entry block.
        let mut reachable = vec![false; nb];
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            if reachable[b] {
                continue;
            }
            reachable[b] = true;
            stack.extend(blocks[b].succs.iter().copied());
        }

        // Iterative dominator sets: dom[entry] = {entry}, others start at
        // the full set and shrink by intersection over reachable preds.
        let words = nb.div_ceil(64);
        let full = {
            let mut f = vec![u64::MAX; words];
            if nb % 64 != 0 {
                f[words - 1] = (1u64 << (nb % 64)) - 1;
            }
            f
        };
        let mut dom: Vec<Vec<u64>> = vec![full; nb];
        dom[0] = vec![0u64; words];
        dom[0][0] = 1;
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..nb {
                if !reachable[b] {
                    continue;
                }
                let mut new = vec![u64::MAX; words];
                let mut any_pred = false;
                for &p in &blocks[b].preds {
                    if !reachable[p] {
                        continue;
                    }
                    any_pred = true;
                    for (w, d) in new.iter_mut().zip(&dom[p]) {
                        *w &= d;
                    }
                }
                if !any_pred {
                    new = vec![0u64; words];
                }
                new[b / 64] |= 1u64 << (b % 64);
                if nb % 64 != 0 {
                    new[words - 1] &= (1u64 << (nb % 64)) - 1;
                }
                if new != dom[b] {
                    dom[b] = new;
                    changed = true;
                }
            }
        }

        Cfg {
            blocks,
            block_of,
            reachable,
            dom,
        }
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether block `b` is reachable from the entry.
    pub fn block_reachable(&self, b: usize) -> bool {
        self.reachable[b]
    }

    /// Whether the instruction at `pc` is reachable from the entry.
    pub fn instr_reachable(&self, pc: usize) -> bool {
        self.reachable[self.block_of[pc]]
    }

    /// Whether block `a` dominates block `b` (both reachable; every block
    /// dominates itself).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.reachable[a] || !self.reachable[b] {
            return false;
        }
        bit_get(&self.dom[b], a)
    }

    /// Whether the instruction at `a` dominates the instruction at `b`
    /// (within one block this is program order).
    pub fn dominates_instr(&self, a: usize, b: usize) -> bool {
        let (ba, bb) = (self.block_of[a], self.block_of[b]);
        if ba == bb {
            self.reachable[ba] && a <= b
        } else {
            self.dominates(ba, bb)
        }
    }
}
