#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Static kernel analyzer for the simulated WMMA stack: the `ptxas` /
//! `compute-sanitizer`-shaped pre-launch gate.
//!
//! [`Verifier::check`] runs four analyses over a [`Kernel`] and a
//! [`LaunchGeometry`] and returns [`Diagnostic`]s carrying instruction
//! indices, severities and `emit_kernel` source snippets:
//!
//! 1. **Uninitialized registers** — a must-initialize dataflow over the
//!    CFG flags reads of 32-bit registers, register pairs and WMMA
//!    fragment groups that no path has written ([`mod@cfg`], [`dataflow`]).
//! 2. **Barrier divergence** — `bar.sync` guarded by a thread-varying
//!    predicate or reachable inside a divergent branch region, and
//!    varying branches without a reconvergence point (cross-checked
//!    against the executor semantics in `crates/isa/src/exec.rs`, which
//!    panics on unreconverged divergence).
//! 3. **Shared-memory races and bounds** — affine address recovery in the
//!    thread-identity special registers, barrier-interval partitioning,
//!    and a cross-warp may-overlap check plus out-of-bounds detection
//!    against `shared_bytes()` + dynamic shared memory.
//! 4. **WMMA well-formedness** — architecture mode validity, fragment
//!    register width/alignment, full-warp execution, and shape/type
//!    agreement across `wmma.load` → `wmma.mma` → `wmma.store`.
//!
//! The pass is wired into `tcsim-sim`'s `LaunchBuilder` (`verify()` /
//! `try_launch`) and the `tcsim-lint` binary in `tcsim-check`; every
//! oracle-safe kernel the fuzzer generates must verify clean, while the
//! planted-defect mutators must each be flagged.

pub mod cfg;
pub mod dataflow;
pub mod perf;

mod barrier;
mod shmem;
mod wmma_lint;

use std::fmt;
use tcsim_isa::{emit::emit_kernel, Dim3, Kernel, LaunchConfig, TensorGen};

pub use dataflow::Taint;

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not certainly fatal; does not block a launch.
    Warn,
    /// A well-formedness violation; the launch gate rejects the kernel.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the static analyzer.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Index of the offending instruction in `Kernel::instrs()`.
    pub index: usize,
    /// Stable rule identifier (e.g. `uninit-reg`, `barrier-divergence`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The offending instruction as emitted PTX-flavoured text.
    pub snippet: String,
}

impl Diagnostic {
    /// Whether this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] #{}: {}",
            self.severity, self.rule, self.index, self.message
        )?;
        if !self.snippet.is_empty() {
            write!(f, "\n    --> {}", self.snippet)?;
        }
        Ok(())
    }
}

/// Whether any diagnostic in `diags` is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// The launch shape a kernel is analyzed under: grid/block geometry,
/// dynamic shared memory, and the tensor-core generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchGeometry {
    /// CTAs in the grid.
    pub grid: Dim3,
    /// Threads per CTA.
    pub block: Dim3,
    /// Dynamic shared memory per CTA in bytes (added to the kernel's
    /// static allocation for the bounds check).
    pub dynamic_shared: u32,
    /// Tensor-core generation: selects fragment sizing (A/B double-loaded
    /// on Volta, §III-B1) and WMMA / `mma.sync` mode validity.
    pub gen: TensorGen,
}

impl LaunchGeometry {
    /// Creates a geometry with no dynamic shared memory, Volta sizing.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> LaunchGeometry {
        LaunchGeometry {
            grid: grid.into(),
            block: block.into(),
            dynamic_shared: 0,
            gen: TensorGen::Volta,
        }
    }

    /// Geometry from a [`LaunchConfig`] plus the architecture flag.
    pub fn from_config(cfg: &LaunchConfig, gen: TensorGen) -> LaunchGeometry {
        LaunchGeometry {
            grid: cfg.grid,
            block: cfg.block,
            dynamic_shared: cfg.shared_bytes,
            gen,
        }
    }

    /// Selects Turing fragment sizing and mode validity.
    pub fn turing(mut self) -> LaunchGeometry {
        self.gen = TensorGen::Turing;
        self
    }

    /// Selects Ampere mode validity (Turing fragment sizing plus the
    /// per-instruction `mma.sync` tiles).
    pub fn ampere(mut self) -> LaunchGeometry {
        self.gen = TensorGen::Ampere;
        self
    }

    /// Whether Volta fragment sizing (A/B double-loaded) applies.
    pub fn volta(&self) -> bool {
        self.gen == TensorGen::Volta
    }

    /// Sets the dynamic shared memory size.
    pub fn with_dynamic_shared(mut self, bytes: u32) -> LaunchGeometry {
        self.dynamic_shared = bytes;
        self
    }

    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> u32 {
        self.block.count() as u32
    }

    /// Warps per CTA (rounded up).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta().div_ceil(32)
    }
}

/// Collects raw findings during analysis; snippets are attached at the
/// end by [`Verifier::check`].
pub(crate) struct Sink {
    raw: Vec<(Severity, usize, &'static str, String)>,
}

impl Sink {
    fn new() -> Sink {
        Sink { raw: Vec::new() }
    }

    pub(crate) fn error(&mut self, index: usize, rule: &'static str, message: String) {
        self.raw.push((Severity::Error, index, rule, message));
    }

    pub(crate) fn warn(&mut self, index: usize, rule: &'static str, message: String) {
        self.raw.push((Severity::Warn, index, rule, message));
    }
}

/// Extracts one emitted text line per instruction, in index order.
fn instruction_lines(k: &Kernel) -> Vec<String> {
    let text = emit_kernel(k);
    let mut lines = Vec::with_capacity(k.instrs().len());
    let mut in_body = false;
    for line in text.lines() {
        let t = line.trim();
        if !in_body {
            if t == "{" {
                in_body = true;
            }
            continue;
        }
        if t == "}" {
            break;
        }
        if t.ends_with(':') || t.is_empty() {
            continue; // label lines
        }
        lines.push(t.to_string());
    }
    lines
}

/// The static analysis pass. Stateless; construct once and reuse.
#[derive(Clone, Copy, Debug, Default)]
pub struct Verifier;

impl Verifier {
    /// Creates a verifier.
    pub fn new() -> Verifier {
        Verifier
    }

    /// Runs all analyses on `kernel` under `geom`, returning diagnostics
    /// sorted by instruction index (errors before warnings at the same
    /// index).
    pub fn check(&self, kernel: &Kernel, geom: &LaunchGeometry) -> Vec<Diagnostic> {
        let cfg = cfg::Cfg::build(kernel);
        let mut sink = Sink::new();

        dataflow::check_uninit(kernel, geom, &cfg, |pc, missing| {
            let list = missing
                .iter()
                .map(|r| format!("r{r}"))
                .collect::<Vec<_>>()
                .join(", ");
            sink.raw.push((
                Severity::Error,
                pc,
                "uninit-reg",
                format!(
                    "instruction at #{pc} reads {} {list} which may be uninitialized \
                     (no definition reaches it on some path)",
                    if missing.len() == 1 {
                        "register"
                    } else {
                        "registers"
                    }
                ),
            ));
        });

        let taint = Taint::compute(kernel, geom, &cfg);
        barrier::check(kernel, &cfg, &taint, &mut sink);
        wmma_lint::check(kernel, geom, &cfg, &taint, &mut sink);
        shmem::check(kernel, geom, &cfg, &taint, &mut sink);

        finalize(sink, kernel)
    }
}

/// Attaches emitted-source snippets to raw findings and sorts them by
/// instruction index (errors before warnings at the same index). Shared
/// by [`Verifier::check`] and the performance lints in [`perf`].
pub(crate) fn finalize(sink: Sink, kernel: &Kernel) -> Vec<Diagnostic> {
    let lines = instruction_lines(kernel);
    let mut diags: Vec<Diagnostic> = sink
        .raw
        .into_iter()
        .map(|(severity, index, rule, message)| Diagnostic {
            severity,
            index,
            rule,
            message,
            snippet: lines.get(index).cloned().unwrap_or_default(),
        })
        .collect();
    diags.sort_by(|a, b| {
        a.index
            .cmp(&b.index)
            .then(b.severity.cmp(&a.severity))
            .then(a.rule.cmp(b.rule))
    });
    diags
}

/// Convenience wrapper around [`Verifier::check`].
pub fn check(kernel: &Kernel, geom: &LaunchGeometry) -> Vec<Diagnostic> {
    Verifier::new().check(kernel, geom)
}
