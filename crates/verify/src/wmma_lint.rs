//! WMMA well-formedness lints.
//!
//! * mode validity: the shape/type combination must be one the target
//!   architecture supports (`WmmaDirective::is_valid`, §II-C/§III-B2);
//! * warp uniformity: the executor requires a fully active warp for every
//!   WMMA instruction (it panics otherwise), so WMMA under a
//!   thread-varying guard or inside a divergent region is an error;
//! * register-file rules: fragments must fit inside the declared register
//!   count, and fragment base registers should obey the SASS
//!   vector-alignment rule (`reg_block`);
//! * fragment provenance: when a register range fed to `wmma.mma` /
//!   `wmma.store` can be traced to a `wmma.load`/`wmma.mma` definition on
//!   all paths, the fragment kind, shape and element type must agree.
//!   Ranges with unknown provenance (e.g. accumulators updated by scalar
//!   epilogues) are not flagged — a deliberate may-analysis choice.
//!
//! The `wmma.load` vs `wmma.mma` *layout* qualifiers are intentionally
//! not cross-checked: the functional model (like the oracle interpreter)
//! treats the load layout as authoritative for fragment gathering, so
//! differing qualifiers are harmless there; see DESIGN.md §4.12.

use crate::cfg::Cfg;
use crate::dataflow::Taint;
use crate::{LaunchGeometry, Sink};
use std::collections::HashMap;
use tcsim_isa::{
    fragment_regs, mma_sync_a_shape, FragmentKind, Kernel, Op, Operand, WmmaDirective, WmmaShape,
    WmmaType,
};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Prov {
    kind: FragmentKind,
    shape: WmmaShape,
    ty: WmmaType,
    n: u16,
    def: usize,
}

type Env = HashMap<u16, Prov>;

fn kill_defs(env: &mut Env, defs: &[tcsim_isa::Reg]) {
    if defs.is_empty() {
        return;
    }
    env.retain(|base, p| {
        let lo = *base;
        let hi = base + p.n;
        !defs.iter().any(|r| r.0 >= lo && r.0 < hi)
    });
}

fn transfer(env: &mut Env, pc: usize, i: &tcsim_isa::Instr, volta: bool) {
    kill_defs(env, &i.def_regs(volta));
    if i.guard.is_some() {
        // A guarded definition may not execute; provenance is uncertain.
        return;
    }
    if let (Op::Wmma(dir), Some(dst)) = (&i.op, i.dst) {
        match *dir {
            WmmaDirective::Load {
                frag, shape, ty, ..
            } => {
                let n = fragment_regs(frag, shape, ty, volta) as u16;
                env.insert(
                    dst.0,
                    Prov {
                        kind: frag,
                        shape,
                        ty,
                        n,
                        def: pc,
                    },
                );
            }
            WmmaDirective::Mma { shape, d_type, .. }
            | WmmaDirective::MmaSync { shape, d_type, .. } => {
                let n = fragment_regs(FragmentKind::D, shape, d_type, volta) as u16;
                env.insert(
                    dst.0,
                    Prov {
                        kind: FragmentKind::D,
                        shape,
                        ty: d_type,
                        n,
                        def: pc,
                    },
                );
            }
            WmmaDirective::Store { .. } => {}
        }
    }
}

fn join(into: &mut Option<Env>, from: &Env) -> bool {
    match into {
        None => {
            *into = Some(from.clone());
            true
        }
        Some(cur) => {
            let before = cur.len();
            cur.retain(|base, p| from.get(base) == Some(p));
            cur.len() != before
        }
    }
}

/// Computes per-block fragment-provenance maps to a fixpoint.
fn provenance(k: &Kernel, cfg: &Cfg, volta: bool) -> Vec<Option<Env>> {
    let nb = cfg.num_blocks();
    let mut inb: Vec<Option<Env>> = vec![None; nb];
    if nb == 0 {
        return inb;
    }
    inb[0] = Some(Env::new());
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            if !cfg.block_reachable(b) {
                continue;
            }
            let Some(mut env) = inb[b].clone() else {
                continue;
            };
            for pc in cfg.blocks[b].start..cfg.blocks[b].end {
                transfer(&mut env, pc, &k.instrs()[pc], volta);
            }
            for &s in &cfg.blocks[b].succs {
                changed |= join(&mut inb[s], &env);
            }
        }
    }
    inb
}

fn frag_desc(p: &Prov) -> String {
    format!(
        "{}.{}.{} fragment (defined at #{})",
        p.kind, p.shape, p.ty, p.def
    )
}

#[allow(clippy::too_many_arguments)]
fn check_operand(
    env: &Env,
    pc: usize,
    what: &str,
    base: tcsim_isa::Reg,
    want_kinds: &[FragmentKind],
    want_shape: WmmaShape,
    want_ty: WmmaType,
    sink: &mut Sink,
) {
    let Some(p) = env.get(&base.0) else { return };
    if !want_kinds.contains(&p.kind) || p.shape != want_shape || p.ty != want_ty {
        sink.error(
            pc,
            "wmma-frag",
            format!(
                "instruction at #{pc} expects its {what} operand in r{} to be a \
                 {}.{want_shape}.{want_ty} fragment, but r{} holds a {}",
                base.0,
                want_kinds[0],
                base.0,
                frag_desc(p)
            ),
        );
    }
}

pub(crate) fn check(k: &Kernel, geom: &LaunchGeometry, cfg: &Cfg, taint: &Taint, sink: &mut Sink) {
    let volta = geom.volta();
    let nregs = k.num_regs();
    let has_wmma = k.instrs().iter().any(|i| matches!(i.op, Op::Wmma(_)));
    if !has_wmma {
        return;
    }

    // Structural lints per instruction.
    for (pc, i) in k.instrs().iter().enumerate() {
        let Op::Wmma(dir) = &i.op else { continue };
        if !cfg.instr_reachable(pc) {
            continue;
        }
        if !dir.is_valid_on(geom.gen) {
            sink.error(
                pc,
                "wmma-mode",
                format!(
                    "wmma qualifier combination at #{pc} is not supported on {} \
                     (shape {}, see Table I)",
                    geom.gen,
                    dir.shape()
                ),
            );
        }
        if let Some((p, _)) = i.guard {
            if taint.pred[p.0 as usize] {
                sink.error(
                    pc,
                    "wmma-divergence",
                    format!(
                        "wmma at #{pc} is guarded by thread-varying predicate p{}; \
                         WMMA requires a fully active warp (the executor panics)",
                        p.0
                    ),
                );
            }
        }
        if taint.divergent[pc] {
            let from = taint.divergent_from[pc]
                .map(|b| format!(" (divergent branch at #{b})"))
                .unwrap_or_default();
            sink.error(
                pc,
                "wmma-divergence",
                format!(
                    "wmma at #{pc} executes under thread-divergent control flow{from}; \
                     WMMA requires a fully active warp (the executor panics)"
                ),
            );
        }

        // Fragment register spans: width and alignment.
        let spans: Vec<(tcsim_isa::Reg, usize, &str)> = match *dir {
            WmmaDirective::Load {
                frag, shape, ty, ..
            } => i
                .dst
                .map(|d| (d, fragment_regs(frag, shape, ty, volta), "destination"))
                .into_iter()
                .collect(),
            WmmaDirective::Mma {
                shape,
                ab_type,
                c_type,
                d_type,
                ..
            } => {
                let mut v = Vec::new();
                if let Some(d) = i.dst {
                    v.push((d, fragment_regs(FragmentKind::D, shape, d_type, volta), "d"));
                }
                for (src, frag, ty, name) in [
                    (0usize, FragmentKind::A, ab_type, "a"),
                    (1, FragmentKind::B, ab_type, "b"),
                    (2, FragmentKind::C, c_type, "c"),
                ] {
                    if let Some(Operand::Reg(r)) = i.srcs.get(src) {
                        v.push((*r, fragment_regs(frag, shape, ty, volta), name));
                    }
                }
                v
            }
            WmmaDirective::MmaSync {
                shape,
                ab_type,
                c_type,
                d_type,
                sparse,
            } => {
                // Sparse modes read a compressed A fragment sized like the
                // half-K tile, plus a scalar metadata register (checked
                // separately below).
                let a_shape = mma_sync_a_shape(shape, sparse);
                let mut v = Vec::new();
                if let Some(d) = i.dst {
                    v.push((d, fragment_regs(FragmentKind::D, shape, d_type, volta), "d"));
                }
                for (src, frag, fshape, ty, name) in [
                    (0usize, FragmentKind::A, a_shape, ab_type, "a"),
                    (1, FragmentKind::B, shape, ab_type, "b"),
                    (2, FragmentKind::C, shape, c_type, "c"),
                ] {
                    if let Some(Operand::Reg(r)) = i.srcs.get(src) {
                        v.push((*r, fragment_regs(frag, fshape, ty, volta), name));
                    }
                }
                v
            }
            WmmaDirective::Store { shape, ty, .. } => match i.srcs.get(2) {
                Some(Operand::Reg(r)) => {
                    vec![(*r, fragment_regs(FragmentKind::D, shape, ty, volta), "d")]
                }
                _ => Vec::new(),
            },
        };
        // Sparsity-metadata register rules: a sparse mma.sync must name a
        // metadata register inside the register file; a dense one must
        // not carry a metadata operand at all.
        if let WmmaDirective::MmaSync { sparse, .. } = *dir {
            match (sparse, i.srcs.get(3)) {
                (true, Some(Operand::Reg(m))) => {
                    if m.0 as u32 >= nregs {
                        sink.error(
                            pc,
                            "wmma-sparse-meta",
                            format!(
                                "sparse mma.sync at #{pc} reads metadata from r{} but the \
                                 kernel declares only {nregs} registers",
                                m.0
                            ),
                        );
                    }
                }
                (true, _) => sink.error(
                    pc,
                    "wmma-sparse-meta",
                    format!(
                        "sparse mma.sync at #{pc} is missing its 2:4 metadata register \
                         operand (fourth source)"
                    ),
                ),
                (false, Some(_)) => sink.error(
                    pc,
                    "wmma-sparse-meta",
                    format!("dense mma.sync at #{pc} carries a spurious metadata operand"),
                ),
                (false, None) => {}
            }
        }
        for (base, n, what) in spans {
            if base.0 as u32 + n as u32 > nregs {
                sink.error(
                    pc,
                    "wmma-regfile",
                    format!(
                        "{what} fragment at #{pc} spans r{}..r{} but the kernel declares \
                         only {nregs} registers",
                        base.0,
                        base.0 as u32 + n as u32 - 1
                    ),
                );
            }
            let align = (n.next_power_of_two().min(4)) as u16;
            if align > 1 && base.0 % align != 0 {
                sink.warn(
                    pc,
                    "wmma-frag-align",
                    format!(
                        "{what} fragment base r{} at #{pc} is not {align}-register aligned \
                         ({n}-register fragment; see KernelBuilder::reg_block)",
                        base.0
                    ),
                );
            }
        }
    }

    // Provenance agreement across load → mma → store.
    let inb = provenance(k, cfg, volta);
    for (b, benv) in inb.iter().enumerate() {
        if !cfg.block_reachable(b) {
            continue;
        }
        let Some(mut env) = benv.clone() else {
            continue;
        };
        for pc in cfg.blocks[b].start..cfg.blocks[b].end {
            let i = &k.instrs()[pc];
            if let Op::Wmma(dir) = &i.op {
                match *dir {
                    WmmaDirective::Mma {
                        shape,
                        ab_type,
                        c_type,
                        ..
                    } => {
                        for (src, kinds, ty, what) in [
                            (0usize, &[FragmentKind::A][..], ab_type, "a"),
                            (1, &[FragmentKind::B][..], ab_type, "b"),
                            (2, &[FragmentKind::C, FragmentKind::D][..], c_type, "c"),
                        ] {
                            if let Some(Operand::Reg(r)) = i.srcs.get(src) {
                                check_operand(&env, pc, what, *r, kinds, shape, ty, sink);
                            }
                        }
                    }
                    WmmaDirective::MmaSync {
                        shape,
                        ab_type,
                        c_type,
                        sparse,
                        ..
                    } => {
                        let a_shape = mma_sync_a_shape(shape, sparse);
                        for (src, kinds, fshape, ty, what) in [
                            (0usize, &[FragmentKind::A][..], a_shape, ab_type, "a"),
                            (1, &[FragmentKind::B][..], shape, ab_type, "b"),
                            (
                                2,
                                &[FragmentKind::C, FragmentKind::D][..],
                                shape,
                                c_type,
                                "c",
                            ),
                        ] {
                            if let Some(Operand::Reg(r)) = i.srcs.get(src) {
                                check_operand(&env, pc, what, *r, kinds, fshape, ty, sink);
                            }
                        }
                    }
                    WmmaDirective::Store { shape, ty, .. } => {
                        if let Some(Operand::Reg(r)) = i.srcs.get(2) {
                            check_operand(
                                &env,
                                pc,
                                "d",
                                *r,
                                &[FragmentKind::C, FragmentKind::D],
                                shape,
                                ty,
                                sink,
                            );
                        }
                    }
                    WmmaDirective::Load { .. } => {}
                }
            }
            transfer(&mut env, pc, i, volta);
        }
    }
}
