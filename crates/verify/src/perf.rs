//! Static performance diagnostics: occupancy, shared-memory bank
//! conflicts and global-memory coalescing.
//!
//! Unlike the correctness analyses run by [`crate::Verifier::check`],
//! nothing here gates a launch — every rule is a [`crate::Severity::Warn`]
//! surfaced through `tcsim-lint --perf` and the `tcsim-model` analyzer.
//! The pass reuses the affine address recovery of the shared-memory race
//! checker (DESIGN.md §4.12) but asks throughput questions instead of
//! safety questions:
//!
//! * **`low-occupancy`** — registers, static+dynamic shared memory, the
//!   warp budget and the CTA-slot budget each bound how many CTAs an SM
//!   can host ([`occupancy`]); below a quarter of the warp capacity the
//!   scheduler is unlikely to hide ALU/memory latency.
//! * **`shared-bank-conflict`** — for each shared load/store whose
//!   per-lane byte address is *exactly* recovered (affine with no
//!   interval slack), the 32 lanes of a representative warp are mapped
//!   onto the 32 four-byte banks; `k` distinct words in one bank
//!   serialize into `k` passes. Identical addresses broadcast for free.
//! * **`global-uncoalesced`** — per-lane global `ld`/`st` addresses are
//!   recovered through a 64-bit pair domain (`ld.param.b64` bases plus
//!   `IAdd64`/`IMAD.WIDE` arithmetic); the lint counts distinct 32-byte
//!   sectors touched by one warp and warns when the access needs more
//!   than twice the ideal sector count.
//!
//! Addresses that are not exactly recoverable (interval slack from `And`
//! masks, unresolved loop-carried values) are skipped silently: the lint
//! reports provable throughput hazards, not possibilities — the opposite
//! polarity of the race checker, which must over-approximate.

use crate::cfg::Cfg;
use crate::dataflow::Taint;
use crate::shmem::{
    self, env_fixpoint, eval, sym_max, transfer, Affine, Env, NSYM, S_LANE, S_TIDX, S_TIDY, S_TIDZ,
};
use crate::{Diagnostic, LaunchGeometry, Sink};
use std::collections::{HashMap, HashSet};
use tcsim_isa::{Instr, Kernel, MemSpace, MemWidth, Op, Operand, TensorGen};

/// Per-SM resource limits the occupancy computation checks against.
///
/// `tcsim-verify` depends only on the ISA crate, so these mirror the
/// `SmConfig` presets in `tcsim-sm` rather than importing them; the
/// `tcsim-model` crate (which sees both) pins the two in agreement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerfLimits {
    /// Resident warp contexts per SM.
    pub max_warps: u32,
    /// Resident CTA slots per SM.
    pub max_ctas: u32,
    /// 32-bit registers in the SM register file.
    pub registers: u32,
    /// Shared-memory bytes per SM.
    pub shared_bytes: u32,
}

impl PerfLimits {
    /// Volta-like limits (96 KiB shared).
    pub fn volta() -> PerfLimits {
        PerfLimits {
            max_warps: 64,
            max_ctas: 32,
            registers: 65536,
            shared_bytes: 96 * 1024,
        }
    }

    /// Turing-like limits (64 KiB shared).
    pub fn turing() -> PerfLimits {
        PerfLimits {
            shared_bytes: 64 * 1024,
            ..PerfLimits::volta()
        }
    }

    /// Ampere-like limits (Turing numbers in this model).
    pub fn ampere() -> PerfLimits {
        PerfLimits::turing()
    }

    /// Limits for a tensor-core generation.
    pub fn for_gen(gen: TensorGen) -> PerfLimits {
        match gen {
            TensorGen::Volta => PerfLimits::volta(),
            TensorGen::Turing => PerfLimits::turing(),
            TensorGen::Ampere => PerfLimits::ampere(),
        }
    }
}

/// Static occupancy of one kernel under one launch geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupancy {
    /// Warps per CTA (from the block shape).
    pub warps_per_cta: u32,
    /// CTAs resident per SM (0 when a single CTA over-subscribes a
    /// resource and the kernel cannot launch).
    pub ctas_per_sm: u32,
    /// Resident warps per SM (`ctas_per_sm · warps_per_cta`).
    pub warps_per_sm: u32,
    /// Warp capacity the fraction is taken against.
    pub max_warps: u32,
    /// The binding resource: `"warps"`, `"ctas"`, `"registers"` or
    /// `"shared"`.
    pub limiter: &'static str,
}

impl Occupancy {
    /// Resident warps as a fraction of the SM's warp capacity.
    pub fn fraction(&self) -> f64 {
        self.warps_per_sm as f64 / self.max_warps as f64
    }
}

/// Computes static occupancy: how many CTAs of `kernel` under `geom` fit
/// on one SM with `lim` resources, and which resource binds first.
///
/// Registers are charged per warp at allocation granularity
/// (`num_regs · 32` per warp), shared memory per CTA (static + dynamic),
/// matching the simulator's launch-time admission in `tcsim-sim`.
pub fn occupancy(kernel: &Kernel, geom: &LaunchGeometry, lim: &PerfLimits) -> Occupancy {
    let warps_per_cta = geom.warps_per_cta().max(1);
    let regs_per_cta = kernel.num_regs().max(1) * 32 * warps_per_cta;
    let shared_per_cta = kernel.shared_bytes() + geom.dynamic_shared;

    let by_warps = lim.max_warps / warps_per_cta;
    let by_regs = lim.registers / regs_per_cta;
    let by_shared = lim
        .shared_bytes
        .checked_div(shared_per_cta)
        .unwrap_or(u32::MAX);

    // Tightest bound wins; ties resolve toward the hard scheduler limits
    // so the message names the structural constraint first.
    let mut ctas = lim.max_ctas;
    let mut limiter = "ctas";
    for (bound, name) in [
        (by_warps, "warps"),
        (by_regs, "registers"),
        (by_shared, "shared"),
    ] {
        if bound < ctas {
            ctas = bound;
            limiter = name;
        }
    }
    let warps_per_sm = (ctas * warps_per_cta).min(lim.max_warps);
    Occupancy {
        warps_per_cta,
        ctas_per_sm: ctas,
        warps_per_sm,
        max_warps: lim.max_warps,
        limiter,
    }
}

/// A 64-bit abstract value: an affine byte offset relative to a base.
///
/// The base distinguishes pointers loaded from different kernel
/// parameters — offsets are only comparable within one base.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct PairVal {
    /// `Some(param_offset)` when derived from `ld.param.b64`, `None` for
    /// absolute 64-bit constants.
    base: Option<u32>,
    off: Affine,
}

type PairEnv = HashMap<u16, PairVal>;

/// Transfer function of the 64-bit pair domain. `env` is the 32-bit
/// affine environment *before* this instruction.
fn pair_transfer(penv: &mut PairEnv, env: &Env, i: &Instr, geom: &LaunchGeometry) {
    let defs = i.def_regs(geom.volta());
    let eval32 = |op: &Operand| -> Option<Affine> {
        eval(op, env, geom).filter(|v| v.t.is_none()).map(|v| v.a)
    };
    let side = |op: &Operand, penv: &PairEnv| -> Option<PairVal> {
        match op {
            Operand::RegPair(r) => penv.get(&r.0).copied(),
            Operand::Imm(v) => Some(PairVal {
                base: None,
                off: Affine::constant(*v),
            }),
            Operand::Reg(_) | Operand::Special(_) => {
                eval32(op).map(|a| PairVal { base: None, off: a })
            }
            Operand::Pred(_) => None,
        }
    };
    let value: Option<PairVal> = if i.guard.is_some() || defs.len() != 2 {
        None
    } else {
        match i.op {
            Op::Ld {
                space: MemSpace::Param,
                width: MemWidth::B64,
            } => match i.srcs.first() {
                Some(Operand::Imm(off)) => Some(PairVal {
                    base: Some(*off as u32),
                    off: Affine::constant(0),
                }),
                _ => None,
            },
            Op::Mov64 => i.srcs.first().and_then(|s| side(s, penv)),
            Op::IAdd64 => {
                let a = i.srcs.first().and_then(|s| side(s, penv));
                let b = i.srcs.get(1).and_then(|s| side(s, penv));
                a.zip(b).and_then(|(a, b)| {
                    let base = match (a.base, b.base) {
                        (x, None) => x,
                        (None, x) => x,
                        _ => return None,
                    };
                    Some(PairVal {
                        base,
                        off: a.off.add(&b.off),
                    })
                })
            }
            Op::IMadWide => {
                let a = i.srcs.first().and_then(eval32);
                let b = i.srcs.get(1).and_then(eval32);
                let prod = a
                    .zip(b)
                    .and_then(|(a, b)| match (a.is_const(), b.is_const()) {
                        (_, Some(k)) => Some(a.mul_k(k)),
                        (Some(k), _) => Some(b.mul_k(k)),
                        _ => None,
                    });
                let c = i.srcs.get(2).and_then(|s| side(s, penv));
                prod.zip(c).map(|(p, c)| PairVal {
                    base: c.base,
                    off: c.off.add(&p),
                })
            }
            _ => None,
        }
    };
    for r in &defs {
        // A write to either half of a tracked pair invalidates it.
        penv.remove(&r.0);
        if r.0 > 0 {
            penv.remove(&(r.0 - 1));
        }
    }
    if let (Some(v), 2) = (value, defs.len()) {
        penv.insert(defs[0].0, v);
    }
}

/// Per-block entry environments of the pair domain: a plain equality-join
/// fixpoint (values that differ across paths are dropped, which keeps the
/// lattice finite — pointer bases are loop-invariant in practice).
fn pair_fixpoint(
    k: &Kernel,
    geom: &LaunchGeometry,
    cfg: &Cfg,
    envs: &[Option<Env>],
    max: &[i64; NSYM],
) -> Vec<Option<PairEnv>> {
    let nb = cfg.num_blocks();
    let mut inb: Vec<Option<PairEnv>> = vec![None; nb];
    if nb == 0 {
        return inb;
    }
    inb[0] = Some(PairEnv::new());
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            if !cfg.block_reachable(b) {
                continue;
            }
            let Some(mut penv) = inb[b].clone() else {
                continue;
            };
            let Some(mut env) = envs[b].clone() else {
                continue;
            };
            for pc in cfg.blocks[b].start..cfg.blocks[b].end {
                let i = &k.instrs()[pc];
                pair_transfer(&mut penv, &env, i, geom);
                transfer(&mut env, i, geom, max);
            }
            for &s in &cfg.blocks[b].succs {
                match &mut inb[s] {
                    slot @ None => {
                        *slot = Some(penv.clone());
                        changed = true;
                    }
                    Some(cur) => {
                        let keys: Vec<u16> = cur.keys().copied().collect();
                        for key in keys {
                            if penv.get(&key) != cur.get(&key) {
                                cur.remove(&key);
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    }
    inb
}

/// Concrete byte address of lane `l` (warp 0, CTA 0) for an exact affine
/// form. Returns `None` when the form carries interval slack.
fn lane_addr(a: &Affine, l: i64, geom: &LaunchGeometry) -> Option<i64> {
    if a.lo != a.hi {
        return None;
    }
    let (bx, by) = (geom.block.x as i64, geom.block.y as i64);
    // Row-major warp formation: lane l of warp 0 is linear thread id l.
    let v = a.lo
        + a.c[S_LANE] * l
        + a.c[S_TIDX] * (l % bx)
        + a.c[S_TIDY] * ((l / bx) % by)
        + a.c[S_TIDZ] * (l / (bx * by));
    Some(v)
}

/// Maximum number of distinct words a warp drives into one bank, or
/// `None` when any lane address is unrecoverable.
fn conflict_degree(addrs: &[i64]) -> Option<(usize, usize)> {
    let mut per_bank: HashMap<i64, HashSet<i64>> = HashMap::new();
    for &a in addrs {
        let word = a >> 2;
        per_bank.entry(word & 31).or_default().insert(word);
    }
    per_bank
        .iter()
        .map(|(bank, words)| (words.len(), *bank as usize))
        .max()
}

/// Distinct 32-byte sectors a warp's access touches (each lane covers
/// `width` bytes from its address).
fn sector_count(addrs: &[i64], width: i64) -> usize {
    let mut sectors = HashSet::new();
    for &a in addrs {
        let mut s = a >> 5;
        while s <= (a + width - 1) >> 5 {
            sectors.insert(s);
            s += 1;
        }
    }
    sectors.len()
}

fn active_lanes(geom: &LaunchGeometry) -> i64 {
    (geom.threads_per_cta() as i64).clamp(1, 32)
}

/// Runs all performance lints on `kernel` under `geom` and `lim`,
/// returning warning diagnostics in the same shape as
/// [`crate::Verifier::check`]. Never reports errors and never gates a
/// launch.
pub fn check_perf(kernel: &Kernel, geom: &LaunchGeometry, lim: &PerfLimits) -> Vec<Diagnostic> {
    let mut sink = Sink::new();

    let occ = occupancy(kernel, geom, lim);
    if occ.ctas_per_sm == 0 {
        sink.warn(
            0,
            "low-occupancy",
            format!(
                "one CTA already exceeds the per-SM {} budget; the kernel cannot become \
                 resident under these limits",
                occ.limiter
            ),
        );
    } else if occ.fraction() < 0.25 {
        sink.warn(
            0,
            "low-occupancy",
            format!(
                "only {}/{} warps resident per SM ({} CTAs, limited by {}); too few warps \
                 to hide ALU and memory latency",
                occ.warps_per_sm, occ.max_warps, occ.ctas_per_sm, occ.limiter
            ),
        );
    }

    let cfg = Cfg::build(kernel);
    let taint = Taint::compute(kernel, geom, &cfg);
    let max = sym_max(geom);
    let envs = env_fixpoint(kernel, geom, &cfg, &taint, &max);
    let penvs = pair_fixpoint(kernel, geom, &cfg, &envs, &max);
    let lanes = active_lanes(geom);

    for b in 0..cfg.num_blocks() {
        if !cfg.block_reachable(b) {
            continue;
        }
        let (Some(mut env), Some(mut penv)) = (envs[b].clone(), penvs[b].clone()) else {
            continue;
        };
        for pc in cfg.blocks[b].start..cfg.blocks[b].end {
            let i = &kernel.instrs()[pc];
            match i.op {
                Op::Ld {
                    space: MemSpace::Shared,
                    ..
                }
                | Op::St {
                    space: MemSpace::Shared,
                    ..
                } => {
                    let addr = i
                        .srcs
                        .first()
                        .zip(i.srcs.get(1))
                        .and_then(|(a, o)| eval(a, &env, geom).zip(eval(o, &env, geom)))
                        .and_then(|(a, o)| shmem::val_add(&a, &o));
                    // Toggled (double-buffered) addresses shift every lane
                    // by the same stage stride, which does not change the
                    // conflict pattern: the low world is representative.
                    if let Some(v) = addr {
                        let addrs: Option<Vec<i64>> =
                            (0..lanes).map(|l| lane_addr(&v.a, l, geom)).collect();
                        if let Some(addrs) = addrs {
                            if let Some((degree, bank)) = conflict_degree(&addrs) {
                                if degree >= 2 {
                                    sink.warn(
                                        pc,
                                        "shared-bank-conflict",
                                        format!(
                                            "{degree} lanes of a warp address {degree} distinct \
                                             words in shared-memory bank {bank}: this access \
                                             serializes into {degree} conflict passes"
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                Op::Ld {
                    space: MemSpace::Global,
                    width,
                }
                | Op::St {
                    space: MemSpace::Global,
                    width,
                } => {
                    let addr = i.srcs.first().and_then(|a| match a {
                        Operand::RegPair(r) => penv.get(&r.0).copied(),
                        _ => None,
                    });
                    let off = i
                        .srcs
                        .get(1)
                        .and_then(|o| eval(o, &env, geom))
                        .filter(|v| v.t.is_none())
                        .map(|v| v.a);
                    if let (Some(p), Some(off)) = (addr, off) {
                        let form = p.off.add(&off);
                        let w = width.bytes() as i64;
                        let addrs: Option<Vec<i64>> =
                            (0..lanes).map(|l| lane_addr(&form, l, geom)).collect();
                        if let Some(addrs) = addrs {
                            let sectors = sector_count(&addrs, w);
                            let ideal = ((lanes * w + 31) / 32).max(1) as usize;
                            if sectors > 2 * ideal {
                                sink.warn(
                                    pc,
                                    "global-uncoalesced",
                                    format!(
                                        "warp touches {sectors} 32-byte sectors where {ideal} \
                                         would suffice: global access is uncoalesced \
                                         ({}x the ideal DRAM traffic)",
                                        sectors / ideal
                                    ),
                                );
                            }
                        }
                    }
                }
                _ => {}
            }
            pair_transfer(&mut penv, &env, i, geom);
            transfer(&mut env, i, geom, &max);
        }
    }

    crate::finalize(sink, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_isa::{KernelBuilder, Operand, SpecialReg};

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn occupancy_limited_by_shared() {
        let mut b = KernelBuilder::new("big_shared");
        b.shared_alloc(40 * 1024);
        b.exit();
        let k = b.build();
        let geom = LaunchGeometry::new(1u32, 64u32);
        let occ = occupancy(&k, &geom, &PerfLimits::volta());
        // 96 KiB / 40 KiB = 2 CTAs of 2 warps each.
        assert_eq!(occ.ctas_per_sm, 2);
        assert_eq!(occ.warps_per_sm, 4);
        assert_eq!(occ.limiter, "shared");
        assert!(occ.fraction() < 0.25);
    }

    #[test]
    fn occupancy_limited_by_warps() {
        let mut b = KernelBuilder::new("wide");
        b.exit();
        let k = b.build();
        let geom = LaunchGeometry::new(1u32, 1024u32);
        let occ = occupancy(&k, &geom, &PerfLimits::volta());
        assert_eq!(occ.warps_per_cta, 32);
        assert_eq!(occ.ctas_per_sm, 2);
        assert_eq!(occ.warps_per_sm, 64);
        assert_eq!(occ.limiter, "warps");
        assert!((occ.fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_occupancy_flagged_for_shared_hog() {
        let mut b = KernelBuilder::new("hog");
        b.shared_alloc(90 * 1024);
        let r = b.reg();
        b.mov(r, Operand::Imm(1));
        b.exit();
        let k = b.build();
        let diags = check_perf(&k, &LaunchGeometry::new(1u32, 32u32), &PerfLimits::volta());
        assert!(rules(&diags).contains(&"low-occupancy"), "{diags:?}");
        // Over-subscription: one CTA that can never fit.
        let diags = check_perf(&k, &LaunchGeometry::new(1u32, 32u32), &PerfLimits::turing());
        assert!(diags
            .iter()
            .any(|d| d.message.contains("cannot become resident")));
    }

    #[test]
    fn stride_32_shared_load_conflicts() {
        // addr = laneid << 5: lanes 0..7 all map to bank 0 with distinct
        // words — an 8-way conflict.
        let mut b = KernelBuilder::new("conflict");
        b.shared_alloc(1024);
        let t = b.reg();
        let d = b.reg();
        b.mov(t, Operand::Special(SpecialReg::LaneId));
        b.shl(t, t, Operand::Imm(5));
        b.ld_shared(tcsim_isa::MemWidth::B32, d, t, 0);
        b.exit();
        let k = b.build();
        let diags = check_perf(&k, &LaunchGeometry::new(1u32, 32u32), &PerfLimits::volta());
        let conflict = diags
            .iter()
            .find(|d| d.rule == "shared-bank-conflict")
            .unwrap();
        assert!(conflict.message.contains("8 lanes"), "{}", conflict.message);
    }

    #[test]
    fn unit_stride_shared_load_is_clean() {
        let mut b = KernelBuilder::new("clean");
        b.shared_alloc(1024);
        let t = b.reg();
        let d = b.reg();
        b.mov(t, Operand::Special(SpecialReg::LaneId));
        b.shl(t, t, Operand::Imm(2));
        b.ld_shared(tcsim_isa::MemWidth::B32, d, t, 0);
        b.exit();
        let k = b.build();
        let diags = check_perf(&k, &LaunchGeometry::new(1u32, 32u32), &PerfLimits::volta());
        assert!(
            !rules(&diags).contains(&"shared-bank-conflict"),
            "{diags:?}"
        );
    }

    #[test]
    fn strided_global_load_is_uncoalesced() {
        let mut b = KernelBuilder::new("stride");
        let p = b.param_u64("in");
        let base = b.reg_pair();
        b.ld_param(tcsim_isa::MemWidth::B64, base, p);
        let t = b.reg();
        b.mov(t, Operand::Special(SpecialReg::LaneId));
        let addr = b.reg_pair();
        b.imad_wide(addr, t, Operand::Imm(128), base);
        let d = b.reg();
        b.ld_global(tcsim_isa::MemWidth::B32, d, addr, 0);
        b.exit();
        let k = b.build();
        let diags = check_perf(&k, &LaunchGeometry::new(1u32, 32u32), &PerfLimits::volta());
        assert!(rules(&diags).contains(&"global-uncoalesced"), "{diags:?}");
    }

    #[test]
    fn unit_stride_global_load_is_clean() {
        let mut b = KernelBuilder::new("coalesced");
        let p = b.param_u64("in");
        let base = b.reg_pair();
        b.ld_param(tcsim_isa::MemWidth::B64, base, p);
        let t = b.reg();
        b.mov(t, Operand::Special(SpecialReg::LaneId));
        let addr = b.reg_pair();
        b.imad_wide(addr, t, Operand::Imm(4), base);
        let d = b.reg();
        b.ld_global(tcsim_isa::MemWidth::B32, d, addr, 0);
        b.exit();
        let k = b.build();
        let diags = check_perf(&k, &LaunchGeometry::new(1u32, 32u32), &PerfLimits::volta());
        assert!(!rules(&diags).contains(&"global-uncoalesced"), "{diags:?}");
    }
}
