//! Shared-memory race and bounds analysis.
//!
//! Byte addresses of shared accesses are recovered as *affine* forms
//! `Σ cᵢ·symᵢ + [lo, hi]` over the thread-identity special registers
//! (`%tid.*`, `%ctaid.*`, `%laneid`, `%warpid`), propagated through the
//! `Mov/IAdd/ISub/IMul/IMad/Shl/Shr/And/SelP/Xor` chains kernels use for
//! address generation. Three refinements keep real kernels analyzable:
//!
//! * in 1-D CTAs `%tid.x` is recovered directly as `32·%warpid +
//!   %laneid`, so every tid-derived address is already in warp/lane form;
//! * `Shr` by a constant `k` splits each coefficient into an exact
//!   quotient times `2^k` plus a bounded residue (`(32w + lane) >> 3`
//!   becomes `4w + [0, 3]`), and `And` with a constant mask contributes a
//!   bounded `[0, mask]` slack term — which is how generator-style
//!   `v & 63` indices and bit-sliced staging rows stay analyzable;
//! * the double-buffer idiom `xor p, p, STAGE` is modeled with a *stage
//!   toggle*: when a loop-head join sees two incoming values that differ
//!   by exactly a power-of-two constant, the merged value carries a
//!   symbolic phase bit σ (one per join site). A later `xor` with the
//!   same constant flips the value's phase polarity. Toggles are only
//!   introduced at joins whose incoming edges are controlled by
//!   CTA-uniform branches, so σ has one value per CTA at any instant.
//!
//! Accesses are partitioned into *barrier intervals*: two accesses can
//! race only if some interval start (kernel entry or a `bar.sync`) reaches
//! both without crossing another barrier — sound given barrier uniformity,
//! which the barrier lint checks separately. Conflicting pairs across
//! threads are then pruned per phase case: accesses whose toggles share a
//! join site are compared only in equal-σ worlds (both threads of a CTA
//! observe the same stage within one barrier interval), which is what
//! proves double-buffered staging stores disjoint from the compute-side
//! fragment loads of the *other* stage. Within each world the warp-slice
//! argument applies: accesses whose footprints fit inside one
//! `%warpid`-stride window cannot overlap across warps. Same-warp
//! overlaps are *never* reported: warps execute in lockstep with
//! deterministic lane ordering in this model (see `crates/isa/src/exec.rs`),
//! matching what the differential oracle accepts.
//!
//! Soundness caveats (DESIGN.md §4.12): only affine addresses are
//! analyzed — a shared access whose address cannot be recovered gets a
//! `shared-addr` warning and is excluded from the race check; the
//! equal-σ case split assumes two same-interval accesses execute in the
//! same loop iteration, which holds when every loop back edge crosses an
//! unconditional barrier (true for all staged kernels in this repo) but
//! is not itself verified.

use crate::cfg::{instr_succs, Cfg};
use crate::dataflow::{BitSet, Taint};
use crate::{LaunchGeometry, Sink};
use std::collections::HashMap;
use tcsim_isa::{
    FragmentKind, Instr, Kernel, Layout, MemSpace, Op, Operand, SpecialReg, WmmaDirective,
};

pub(crate) const NSYM: usize = 8;
pub(crate) const S_TIDX: usize = 0;
pub(crate) const S_TIDY: usize = 1;
pub(crate) const S_TIDZ: usize = 2;
const S_CTAX: usize = 3;
const S_CTAY: usize = 4;
const S_CTAZ: usize = 5;
pub(crate) const S_LANE: usize = 6;
const S_WARP: usize = 7;

/// How many interval joins a block tolerates before widening drops
/// still-changing entries (guarantees termination of the fixpoint).
const WIDEN_LIMIT: u32 = 16;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Affine {
    pub(crate) c: [i64; NSYM],
    pub(crate) lo: i64,
    pub(crate) hi: i64,
}

impl Affine {
    pub(crate) fn constant(v: i64) -> Affine {
        Affine {
            c: [0; NSYM],
            lo: v,
            hi: v,
        }
    }

    fn sym(i: usize) -> Affine {
        let mut a = Affine::constant(0);
        a.c[i] = 1;
        a
    }

    pub(crate) fn is_const(&self) -> Option<i64> {
        if self.c.iter().all(|&c| c == 0) && self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    pub(crate) fn add(&self, o: &Affine) -> Affine {
        let mut r = *self;
        for i in 0..NSYM {
            r.c[i] = r.c[i].saturating_add(o.c[i]);
        }
        r.lo = r.lo.saturating_add(o.lo);
        r.hi = r.hi.saturating_add(o.hi);
        r
    }

    fn sub(&self, o: &Affine) -> Affine {
        let mut r = *self;
        for i in 0..NSYM {
            r.c[i] = r.c[i].saturating_sub(o.c[i]);
        }
        r.lo = self.lo.saturating_sub(o.hi);
        r.hi = self.hi.saturating_sub(o.lo);
        r
    }

    pub(crate) fn mul_k(&self, k: i64) -> Affine {
        let mut r = *self;
        for i in 0..NSYM {
            r.c[i] = r.c[i].saturating_mul(k);
        }
        let (a, b) = (self.lo.saturating_mul(k), self.hi.saturating_mul(k));
        r.lo = a.min(b);
        r.hi = a.max(b);
        r
    }

    /// Exact right shift: splits every coefficient into `2^k·q + rem` and
    /// folds the residues into the constant interval, using the identity
    /// `(2^k·X + Y) >> k = X + (Y >> k)` for non-negative `X`, `Y`.
    fn shr_k(&self, k: i64, max: &[i64; NSYM]) -> Option<Affine> {
        if self.lo < 0 || self.c.iter().any(|&c| c < 0) {
            return None;
        }
        let mut q = [0i64; NSYM];
        let mut res_hi = self.hi;
        for i in 0..NSYM {
            q[i] = self.c[i] >> k;
            let rem = self.c[i] - (q[i] << k);
            res_hi = res_hi.saturating_add(rem.saturating_mul(max[i]));
        }
        Some(Affine {
            c: q,
            lo: self.lo >> k,
            hi: res_hi >> k,
        })
    }

    /// Interval hull of two forms with identical coefficients.
    fn hull(&self, o: &Affine) -> Option<Affine> {
        if self.c != o.c {
            return None;
        }
        let mut r = *self;
        r.lo = self.lo.min(o.lo);
        r.hi = self.hi.max(o.hi);
        Some(r)
    }

    /// Concrete byte range `[lo, hi]` over all thread identities.
    fn range(&self, max: &[i64; NSYM]) -> (i64, i64) {
        let (mut lo, mut hi) = (self.lo, self.hi);
        for (&c, &m) in self.c.iter().zip(max) {
            let term = c.saturating_mul(m);
            if term >= 0 {
                hi = hi.saturating_add(term);
            } else {
                lo = lo.saturating_add(term);
            }
        }
        (lo, hi)
    }
}

pub(crate) fn sym_max(geom: &LaunchGeometry) -> [i64; NSYM] {
    let threads = geom.threads_per_cta() as i64;
    let mut m = [0i64; NSYM];
    m[S_TIDX] = geom.block.x as i64 - 1;
    m[S_TIDY] = geom.block.y as i64 - 1;
    m[S_TIDZ] = geom.block.z as i64 - 1;
    m[S_CTAX] = geom.grid.x as i64 - 1;
    m[S_CTAY] = geom.grid.y as i64 - 1;
    m[S_CTAZ] = geom.grid.z as i64 - 1;
    m[S_LANE] = (threads - 1).clamp(0, 31);
    m[S_WARP] = geom.warps_per_cta() as i64 - 1;
    m
}

/// A double-buffer stage term: the value is `affine + m` exactly when the
/// phase bit of `site` equals `high_at`. Phase bits are CTA-uniform (one
/// value per join site per barrier interval).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Toggle {
    site: u32,
    m: i64,
    high_at: bool,
}

/// An abstract register value: an affine form plus an optional stage
/// toggle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Val {
    pub(crate) a: Affine,
    pub(crate) t: Option<Toggle>,
}

impl Val {
    fn plain(a: Affine) -> Val {
        Val { a, t: None }
    }

    /// Concretizations: one `(phase, affine)` per reachable world. The
    /// phase is `Some((site, σ))` for toggled values, `None` otherwise.
    fn worlds(&self) -> Vec<(Option<(u32, bool)>, Affine)> {
        match self.t {
            None => vec![(None, self.a)],
            Some(t) => {
                let high = self.a.add(&Affine::constant(t.m));
                vec![
                    (Some((t.site, t.high_at)), high),
                    (Some((t.site, !t.high_at)), self.a),
                ]
            }
        }
    }
}

/// Addition carrying at most one toggle between the operands.
pub(crate) fn val_add(a: &Val, b: &Val) -> Option<Val> {
    let t = match (a.t, b.t) {
        (None, None) => None,
        (Some(t), None) | (None, Some(t)) => Some(t),
        (Some(_), Some(_)) => return None,
    };
    Some(Val {
        a: a.a.add(&b.a),
        t,
    })
}

pub(crate) type Env = HashMap<u16, Val>;

pub(crate) fn eval(op: &Operand, env: &Env, geom: &LaunchGeometry) -> Option<Val> {
    match op {
        Operand::Imm(v) => Some(Val::plain(Affine::constant(*v))),
        Operand::Reg(r) => env.get(&r.0).copied(),
        Operand::Special(s) => Some(Val::plain(match s {
            SpecialReg::TidX => {
                if geom.block.y == 1 && geom.block.z == 1 {
                    // 1-D CTA: tid.x decomposes exactly into warp/lane.
                    let mut a = Affine::constant(0);
                    a.c[S_WARP] = 32;
                    a.c[S_LANE] = 1;
                    a
                } else {
                    Affine::sym(S_TIDX)
                }
            }
            SpecialReg::TidY => Affine::sym(S_TIDY),
            SpecialReg::TidZ => Affine::sym(S_TIDZ),
            SpecialReg::CtaIdX => Affine::sym(S_CTAX),
            SpecialReg::CtaIdY => Affine::sym(S_CTAY),
            SpecialReg::CtaIdZ => Affine::sym(S_CTAZ),
            SpecialReg::LaneId => Affine::sym(S_LANE),
            SpecialReg::WarpId => Affine::sym(S_WARP),
            SpecialReg::NTidX => Affine::constant(geom.block.x as i64),
            SpecialReg::NTidY => Affine::constant(geom.block.y as i64),
            SpecialReg::NCtaIdX => Affine::constant(geom.grid.x as i64),
            SpecialReg::NCtaIdY => Affine::constant(geom.grid.y as i64),
        })),
        Operand::RegPair(_) | Operand::Pred(_) => None,
    }
}

pub(crate) fn transfer(env: &mut Env, i: &Instr, geom: &LaunchGeometry, max: &[i64; NSYM]) {
    let defs = i.def_regs(geom.volta());
    let value: Option<Val> = if i.guard.is_some() || defs.len() != 1 {
        // Guarded writes may not execute; multi-register defs are not
        // tracked (shared addresses are single 32-bit registers).
        None
    } else {
        let s = |n: usize| i.srcs.get(n).and_then(|o| eval(o, env, geom));
        // Most ops only combine toggle-free forms; `sf` enforces that.
        let sf = |n: usize| s(n).filter(|v| v.t.is_none()).map(|v| v.a);
        match i.op {
            Op::Mov => s(0),
            Op::IAdd => s(0).zip(s(1)).and_then(|(a, b)| val_add(&a, &b)),
            Op::ISub => s(0).zip(sf(1)).map(|(a, b)| Val {
                a: a.a.sub(&b),
                t: a.t,
            }),
            Op::IMul => sf(0)
                .zip(sf(1))
                .and_then(|(a, b)| match (a.is_const(), b.is_const()) {
                    (_, Some(k)) => Some(Val::plain(a.mul_k(k))),
                    (Some(k), _) => Some(Val::plain(b.mul_k(k))),
                    _ => None,
                }),
            Op::IMad => sf(0).zip(sf(1)).and_then(|(a, b)| {
                let prod = match (a.is_const(), b.is_const()) {
                    (_, Some(k)) => Some(a.mul_k(k)),
                    (Some(k), _) => Some(b.mul_k(k)),
                    _ => None,
                }?;
                s(2).and_then(|c| val_add(&Val::plain(prod), &c))
            }),
            Op::Shl => sf(1)
                .and_then(|b| b.is_const())
                .filter(|k| (0..32).contains(k))
                .and_then(|k| sf(0).map(|a| Val::plain(a.mul_k(1i64 << k)))),
            Op::Shr | Op::Sar => sf(1)
                .and_then(|b| b.is_const())
                .filter(|k| (0..32).contains(k))
                .and_then(|k| sf(0).and_then(|a| a.shr_k(k, max)).map(Val::plain)),
            Op::And => sf(1)
                .and_then(|b| b.is_const())
                .filter(|m| *m >= 0)
                .map(|m| {
                    // Result bits are a subset of the mask: value ∈ [0, m].
                    match sf(0).and_then(|a| a.is_const()) {
                        Some(v) => Val::plain(Affine::constant(v & m)),
                        None => Val::plain(Affine {
                            c: [0; NSYM],
                            lo: 0,
                            hi: m,
                        }),
                    }
                }),
            Op::Xor => sf(1).and_then(|b| b.is_const()).and_then(|x| {
                let v = s(0)?;
                if x == 0 {
                    return Some(v);
                }
                if x < 0 || x & (x - 1) != 0 {
                    return None; // only single-bit stage strides
                }
                match v.t {
                    // Toggling the stage bit flips the phase polarity —
                    // exact when the low world stays below the bit (then
                    // the high world occupies [x, 2x) and xor is ∓x).
                    Some(t)
                        if t.m == x && {
                            let (lo, hi) = v.a.range(max);
                            lo >= 0 && hi < x
                        } =>
                    {
                        Some(Val {
                            a: v.a,
                            t: Some(Toggle {
                                high_at: !t.high_at,
                                ..t
                            }),
                        })
                    }
                    Some(_) => None,
                    None => {
                        // Bit state determined by the value range: the
                        // xor is an exact ±x.
                        let (lo, hi) = v.a.range(max);
                        if lo >= 0 && hi < x {
                            Some(Val::plain(v.a.add(&Affine::constant(x))))
                        } else if lo >= x && hi < 2 * x {
                            Some(Val::plain(v.a.sub(&Affine::constant(x))))
                        } else {
                            None
                        }
                    }
                }
            }),
            Op::SelP => sf(1)
                .zip(sf(2))
                .and_then(|(a, b)| a.hull(&b))
                .map(Val::plain),
            _ => None,
        }
    };
    for r in &defs {
        env.remove(&r.0);
    }
    if let (Some(v), 1) = (value, defs.len()) {
        env.insert(defs[0].0, v);
    }
}

/// Joins `from` into the running environment of block `site`.
fn join(into: &mut Option<Env>, from: &Env, site: u32, toggle_ok: bool, widen: bool) -> bool {
    match into {
        None => {
            *into = Some(from.clone());
            true
        }
        Some(cur) => {
            let mut changed = false;
            let keys: Vec<u16> = cur.keys().copied().collect();
            for k in keys {
                let c = cur[&k];
                let keep = match from.get(&k) {
                    None => None,
                    Some(f) if c == *f => Some(c),
                    Some(_) if widen => None,
                    Some(f) => join_vals(&c, f, site, toggle_ok),
                };
                match keep {
                    Some(v) if v == c => {}
                    Some(v) => {
                        cur.insert(k, v);
                        changed = true;
                    }
                    None => {
                        cur.remove(&k);
                        changed = true;
                    }
                }
            }
            changed
        }
    }
}

/// Merges two distinct abstract values at a join, introducing or
/// preserving a stage toggle where the shapes allow it.
fn join_vals(c: &Val, f: &Val, site: u32, toggle_ok: bool) -> Option<Val> {
    match (c.t, f.t) {
        (None, None) => {
            if c.a.c != f.a.c {
                return None;
            }
            // Two values a uniform power-of-two apart (the whole interval
            // shifted by d): a stage toggle, provided the merging paths
            // are chosen CTA-uniformly.
            let d = f.a.lo - c.a.lo;
            if toggle_ok && d != 0 && d == f.a.hi - c.a.hi && d.abs() & (d.abs() - 1) == 0 {
                let (low, high_at) = if d > 0 { (c.a, true) } else { (f.a, false) };
                return Some(Val {
                    a: low,
                    t: Some(Toggle {
                        site,
                        m: d.abs(),
                        high_at,
                    }),
                });
            }
            c.a.hull(&f.a).map(Val::plain)
        }
        (Some(tc), Some(tf)) if tc.site == tf.site && tc.m == tf.m && c.a.c == f.a.c => {
            if tc.high_at == tf.high_at {
                c.a.hull(&f.a).map(|a| Val { a, t: Some(tc) })
            } else if c.a.lo == f.a.lo && c.a.hi == f.a.hi {
                // Anti-phase re-entry along the toggling loop's own back
                // edge: every toggled value flipped together, so the
                // established polarity is iteration-invariant.
                Some(*c)
            } else {
                None
            }
        }
        (Some(tc), None) => {
            // An exact incoming value already covered by one phase.
            let high = c.a.add(&Affine::constant(tc.m));
            if f.a == c.a || f.a == high {
                Some(*c)
            } else {
                None
            }
        }
        (None, Some(tf)) => {
            let high = f.a.add(&Affine::constant(tf.m));
            if c.a == f.a || c.a == high {
                Some(*f)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Blocks where stage toggles may be introduced: every reachable
/// predecessor must end outside thread-divergent control flow, with any
/// conditional terminator guarded by a CTA-uniform predicate — then all
/// threads of a CTA funnel through the same incoming edge together and
/// the phase bit is uniform.
fn toggle_ok_blocks(k: &Kernel, cfg: &Cfg, taint: &Taint) -> Vec<bool> {
    let nb = cfg.num_blocks();
    let mut ok = vec![true; nb];
    for p in 0..nb {
        if !cfg.block_reachable(p) || cfg.blocks[p].start == cfg.blocks[p].end {
            continue;
        }
        let last = cfg.blocks[p].end - 1;
        let i = &k.instrs()[last];
        // A conditional terminator is a guarded `bra`/`exit`; its guard
        // predicate decides which successor a thread takes.
        let mut uniform = !taint.divergent[last];
        if let Some((pr, _)) = i.guard {
            uniform &= !taint.pred[pr.0 as usize];
        }
        if !uniform {
            for &s in &cfg.blocks[p].succs {
                ok[s] = false;
            }
        }
    }
    ok
}

pub(crate) fn env_fixpoint(
    k: &Kernel,
    geom: &LaunchGeometry,
    cfg: &Cfg,
    taint: &Taint,
    max: &[i64; NSYM],
) -> Vec<Option<Env>> {
    let nb = cfg.num_blocks();
    let mut inb: Vec<Option<Env>> = vec![None; nb];
    let mut joins = vec![0u32; nb];
    if nb == 0 {
        return inb;
    }
    let toggle_ok = toggle_ok_blocks(k, cfg, taint);
    inb[0] = Some(Env::new());
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            if !cfg.block_reachable(b) {
                continue;
            }
            let Some(mut env) = inb[b].clone() else {
                continue;
            };
            for pc in cfg.blocks[b].start..cfg.blocks[b].end {
                transfer(&mut env, &k.instrs()[pc], geom, max);
            }
            for &s in &cfg.blocks[b].succs {
                if join(
                    &mut inb[s],
                    &env,
                    s as u32,
                    toggle_ok[s],
                    joins[s] > WIDEN_LIMIT,
                ) {
                    joins[s] += 1;
                    changed = true;
                }
            }
        }
    }
    inb
}

/// Per-instruction set of "interval starts" (entry or a barrier) that
/// reach the instruction without crossing an unconditional barrier.
fn interval_starts(k: &Kernel, cfg: &Cfg) -> Vec<BitSet> {
    let instrs = k.instrs();
    let len = instrs.len();
    let mut start_frontiers: Vec<Vec<usize>> = Vec::new();
    if len > 0 {
        start_frontiers.push(vec![0]); // kernel entry
    }
    for (pc, i) in instrs.iter().enumerate() {
        if matches!(i.op, Op::Bar) && cfg.instr_reachable(pc) {
            start_frontiers.push(instr_succs(i, pc, len));
        }
    }
    let ns = start_frontiers.len();
    let mut sets: Vec<BitSet> = (0..len).map(|_| BitSet::empty(ns.max(1))).collect();
    for (sid, frontier) in start_frontiers.into_iter().enumerate() {
        let mut stack = frontier;
        let mut seen = vec![false; len];
        while let Some(pc) = stack.pop() {
            if seen[pc] {
                continue;
            }
            seen[pc] = true;
            sets[pc].insert(sid);
            let i = &instrs[pc];
            // An unguarded barrier ends the interval; a guarded one may be
            // skipped, so traversal continues through it (it is also its
            // own interval start).
            if matches!(i.op, Op::Bar) && i.guard.is_none() {
                continue;
            }
            stack.extend(instr_succs(i, pc, len));
        }
    }
    sets
}

struct Access {
    pc: usize,
    write: bool,
    atomic: bool,
    val: Option<Val>,
    width: i64,
    warp_wide: bool,
}

fn wmma_span_bytes(dir: &WmmaDirective, stride: i64) -> Option<i64> {
    let (frag, shape, layout, ty) = match *dir {
        WmmaDirective::Load {
            frag,
            shape,
            layout,
            ty,
        } => (frag, shape, layout, ty),
        WmmaDirective::Store { shape, layout, ty } => (FragmentKind::D, shape, layout, ty),
        WmmaDirective::Mma { .. } | WmmaDirective::MmaSync { .. } => return None,
    };
    if stride < 1 {
        return None;
    }
    let (rows, cols) = frag.dims(shape);
    let (major, minor) = match layout {
        Layout::Row => (rows as i64, cols as i64),
        Layout::Col => (cols as i64, rows as i64),
    };
    let span_elems = (major - 1).saturating_mul(stride).saturating_add(minor);
    Some((span_elems.saturating_mul(ty.bits() as i64) + 7) / 8)
}

fn collect_accesses(
    k: &Kernel,
    geom: &LaunchGeometry,
    cfg: &Cfg,
    envs: &[Option<Env>],
    max: &[i64; NSYM],
) -> Vec<Access> {
    let mut out = Vec::new();
    for (b, benv) in envs.iter().enumerate() {
        if !cfg.block_reachable(b) {
            continue;
        }
        let Some(mut env) = benv.clone() else {
            continue;
        };
        for pc in cfg.blocks[b].start..cfg.blocks[b].end {
            let i = &k.instrs()[pc];
            let addr_plus_off = |env: &Env| -> Option<Val> {
                let a = eval(i.srcs.first()?, env, geom)?;
                let off = eval(i.srcs.get(1)?, env, geom)?;
                val_add(&a, &off)
            };
            match &i.op {
                Op::Ld {
                    space: MemSpace::Shared,
                    width,
                } => out.push(Access {
                    pc,
                    write: false,
                    atomic: false,
                    val: addr_plus_off(&env),
                    width: width.bytes() as i64,
                    warp_wide: false,
                }),
                Op::St {
                    space: MemSpace::Shared,
                    width,
                } => out.push(Access {
                    pc,
                    write: true,
                    atomic: false,
                    val: addr_plus_off(&env),
                    width: width.bytes() as i64,
                    warp_wide: false,
                }),
                Op::Atom {
                    space: MemSpace::Shared,
                    ..
                } => out.push(Access {
                    pc,
                    write: true,
                    atomic: true,
                    val: addr_plus_off(&env),
                    width: 4,
                    warp_wide: false,
                }),
                Op::Wmma(dir @ (WmmaDirective::Load { .. } | WmmaDirective::Store { .. })) => {
                    if i.srcs.last() != Some(&Operand::Imm(1)) {
                        continue; // global-space wmma access
                    }
                    let stride = i
                        .srcs
                        .get(1)
                        .and_then(|o| eval(o, &env, geom))
                        .filter(|v| v.t.is_none())
                        .and_then(|v| v.a.is_const());
                    let span = stride.and_then(|s| wmma_span_bytes(dir, s));
                    let val = match span {
                        Some(_) => i.srcs.first().and_then(|o| eval(o, &env, geom)),
                        None => None,
                    };
                    out.push(Access {
                        pc,
                        write: matches!(dir, WmmaDirective::Store { .. }),
                        atomic: false,
                        val,
                        width: span.unwrap_or(1),
                        warp_wide: true,
                    });
                }
                _ => {}
            }
            transfer(&mut env, i, geom, max);
        }
    }
    out
}

/// Proves two accesses cannot overlap across distinct warps via the
/// warp-slice argument. Returns `false` when no proof is found.
fn warp_separated(
    a: &Affine,
    aw: i64,
    b: &Affine,
    bw: i64,
    geom: &LaunchGeometry,
    max: &[i64; NSYM],
) -> bool {
    let canon = |f: &Affine| -> Option<Affine> {
        let mut f = *f;
        // tid components that are constantly zero contribute nothing.
        if geom.block.y == 1 {
            f.c[S_TIDY] = 0;
        }
        if geom.block.z == 1 {
            f.c[S_TIDZ] = 0;
        }
        if f.c[S_TIDX] == 0 && f.c[S_TIDY] == 0 && f.c[S_TIDZ] == 0 {
            return Some(f);
        }
        // The tid terms must form an exact multiple of the linear thread
        // id, cx·(tid.z·by·bx + tid.y·bx + tid.x): that is cx·(32·warpid
        // + laneid) under row-major warp formation. A partial combination
        // (e.g. tid.x alone in a 2-D block) has no warp decomposition.
        let cx = f.c[S_TIDX];
        let (bx, by) = (geom.block.x as i64, geom.block.y as i64);
        if cx == 0
            || (geom.block.y != 1 && f.c[S_TIDY] != cx.saturating_mul(bx))
            || (geom.block.z != 1 && f.c[S_TIDZ] != cx.saturating_mul(bx).saturating_mul(by))
        {
            return None;
        }
        f.c[S_WARP] = f.c[S_WARP].saturating_add(cx.saturating_mul(32));
        f.c[S_LANE] = f.c[S_LANE].saturating_add(cx);
        f.c[S_TIDX] = 0;
        f.c[S_TIDY] = 0;
        f.c[S_TIDZ] = 0;
        Some(f)
    };
    let (Some(ca), Some(cb)) = (canon(a), canon(b)) else {
        return false;
    };
    // Both threads live in the same CTA (shared memory and barriers are
    // CTA-scoped), so equal ctaid coefficients cancel in the difference.
    for s in [S_CTAX, S_CTAY, S_CTAZ] {
        if ca.c[s] != cb.c[s] {
            return false;
        }
    }
    let cw = ca.c[S_WARP];
    if cw == 0 || cb.c[S_WARP] != cw {
        return false;
    }
    // Remainder range: everything but the warp term (ctaid cancels).
    let rem = |f: &Affine, w: i64| -> (i64, i64) {
        let mut lo = f.lo;
        let mut hi = f.hi;
        let lane_term = f.c[S_LANE].saturating_mul(max[S_LANE]);
        if lane_term >= 0 {
            hi = hi.saturating_add(lane_term);
        } else {
            lo = lo.saturating_add(lane_term);
        }
        (lo, hi.saturating_add(w))
    };
    let (alo, aend) = rem(&ca, aw);
    let (blo, bend) = rem(&cb, bw);
    aend.max(bend).saturating_sub(alo.min(blo)) <= cw.abs()
}

/// Checks one world pair: disjoint footprints or warp-separated.
fn world_pair_safe(
    fa: &Affine,
    aw: i64,
    fb: &Affine,
    bw: i64,
    geom: &LaunchGeometry,
    max: &[i64; NSYM],
) -> bool {
    let (alo, ahi) = fa.range(max);
    let (blo, bhi) = fb.range(max);
    if ahi.saturating_add(aw) <= blo || bhi.saturating_add(bw) <= alo {
        return true; // footprints disjoint in this world
    }
    warp_separated(fa, aw, fb, bw, geom, max)
}

pub(crate) fn check(k: &Kernel, geom: &LaunchGeometry, cfg: &Cfg, taint: &Taint, sink: &mut Sink) {
    let uses_shared = k.instrs().iter().any(|i| {
        matches!(
            i.op,
            Op::Ld {
                space: MemSpace::Shared,
                ..
            } | Op::St {
                space: MemSpace::Shared,
                ..
            } | Op::Atom {
                space: MemSpace::Shared,
                ..
            }
        ) || (matches!(i.op, Op::Wmma(_)) && i.srcs.last() == Some(&Operand::Imm(1)))
    });
    if !uses_shared {
        return;
    }

    let limit = k.shared_bytes() as i64 + geom.dynamic_shared as i64;
    let max = sym_max(geom);
    let envs = env_fixpoint(k, geom, cfg, taint, &max);
    let accesses = collect_accesses(k, geom, cfg, &envs, &max);

    // Bounds + address-recovery diagnostics.
    let mut warned = std::collections::HashSet::new();
    for a in &accesses {
        match &a.val {
            None => {
                if warned.insert(a.pc) {
                    sink.warn(
                        a.pc,
                        "shared-addr",
                        format!(
                            "shared-memory address at #{} is not affine-recoverable; \
                             bounds and race analysis skip this access",
                            a.pc
                        ),
                    );
                }
            }
            Some(v) => {
                for (_, f) in v.worlds() {
                    let (lo, hi) = f.range(&max);
                    let end = hi.saturating_add(a.width);
                    if lo < 0 || end > limit {
                        sink.error(
                            a.pc,
                            "shared-oob",
                            format!(
                                "shared-memory access at #{} may touch bytes [{lo}, {end}) but \
                                 only [0, {limit}) are allocated (static {} + dynamic {})",
                                a.pc,
                                k.shared_bytes(),
                                geom.dynamic_shared
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }

    // Cross-warp race detection. With a single warp per CTA every pair is
    // intra-warp and therefore deterministic under lockstep execution.
    if geom.warps_per_cta() <= 1 {
        return;
    }
    let starts = interval_starts(k, cfg);
    for ai in 0..accesses.len() {
        for bi in ai..accesses.len() {
            let (a, b) = (&accesses[ai], &accesses[bi]);
            if !(a.write || b.write) || (a.atomic && b.atomic) {
                continue;
            }
            if ai == bi && !a.write {
                continue;
            }
            if !starts[a.pc].intersects(&starts[b.pc]) {
                continue; // always in different barrier intervals
            }
            let (Some(va), Some(vb)) = (&a.val, &b.val) else {
                continue;
            };
            // Case split over stage phases. Phase bits are CTA-uniform
            // within one barrier interval, so worlds with the same site
            // but opposite σ cannot co-occur.
            let mut safe = true;
            'worlds: for (pa, fa) in va.worlds() {
                for (pb, fb) in vb.worlds() {
                    if let (Some((sa, ba)), Some((sb, bb))) = (pa, pb) {
                        if sa == sb && ba != bb {
                            continue; // anti-correlated phases
                        }
                    }
                    if !world_pair_safe(&fa, a.width, &fb, b.width, geom, &max) {
                        safe = false;
                        break 'worlds;
                    }
                }
            }
            if safe {
                continue;
            }
            let hull_range = |v: &Val, w: i64| -> (i64, i64) {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for (_, f) in v.worlds() {
                    let (l, h) = f.range(&max);
                    lo = lo.min(l);
                    hi = hi.max(h.saturating_add(w));
                }
                (lo, hi)
            };
            let (alo, aend) = hull_range(va, a.width);
            let (blo, bend) = hull_range(vb, b.width);
            let kind = match (a.write, b.write) {
                (true, true) => "write-write",
                (true, false) => "write-read",
                (false, true) => "read-write",
                (false, false) => unreachable!(),
            };
            let what = if a.warp_wide || b.warp_wide {
                "warp-level footprints"
            } else {
                "accesses"
            };
            sink.error(
                b.pc,
                "shared-race",
                format!(
                    "possible cross-warp shared-memory {kind} race: {what} at #{} \
                     (bytes [{alo}, {aend})) and #{} (bytes [{blo}, {bend})) may overlap within \
                     one barrier interval",
                    a.pc, b.pc
                ),
            );
        }
    }
}
