//! Barrier-divergence lints.
//!
//! `bar.sync` is CTA-wide: every thread of the block must arrive
//! (`__syncthreads` semantics). The executor models the barrier per warp
//! and panics on a divergent branch without a reconvergence point
//! (`crates/isa/src/exec.rs`), so statically we flag:
//!
//! * a barrier guarded by a thread-varying predicate — some threads
//!   would skip it and the rest deadlock;
//! * a barrier inside a divergent branch region — only a subset of the
//!   block reaches it before reconvergence;
//! * a potentially divergent branch (thread-varying guard) carrying no
//!   reconvergence point — the executor panics the moment it actually
//!   diverges.

use crate::cfg::Cfg;
use crate::dataflow::Taint;
use crate::Sink;
use tcsim_isa::{Kernel, Op};

pub(crate) fn check(k: &Kernel, cfg: &Cfg, taint: &Taint, sink: &mut Sink) {
    for (pc, i) in k.instrs().iter().enumerate() {
        if !cfg.instr_reachable(pc) {
            continue;
        }
        match i.op {
            Op::Bar => {
                if let Some((p, sense)) = i.guard {
                    if taint.pred[p.0 as usize] {
                        sink.error(
                            pc,
                            "barrier-divergence",
                            format!(
                                "bar.sync at #{pc} is guarded by thread-varying predicate \
                                 @{}p{}; threads that skip a CTA-wide barrier deadlock the rest",
                                if sense { "" } else { "!" },
                                p.0
                            ),
                        );
                        continue;
                    }
                }
                if taint.divergent[pc] {
                    let from = taint.divergent_from[pc]
                        .map(|b| format!(" (divergent branch at #{b})"))
                        .unwrap_or_default();
                    sink.error(
                        pc,
                        "barrier-divergence",
                        format!(
                            "bar.sync at #{pc} is reachable under thread-divergent control \
                             flow{from}; only part of the CTA would arrive"
                        ),
                    );
                }
            }
            Op::Bra => {
                if let Some((p, _)) = i.guard {
                    if taint.pred[p.0 as usize] && i.reconv.is_none() {
                        sink.error(
                            pc,
                            "no-reconvergence",
                            format!(
                                "branch at #{pc} is guarded by thread-varying predicate p{} \
                                 but has no reconvergence point; the executor panics if it \
                                 diverges (use bra.div with an explicit reconvergence label)",
                                p.0
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}
