//! Register dataflow: a must-initialize (reaching-definitions style)
//! analysis that flags reads of never-written registers, and a
//! thread-variance ("taint") analysis that classifies registers and
//! predicates as uniform or potentially thread-varying, including the
//! control-dependent variance induced by divergent branch regions.
//!
//! # Soundness notes
//!
//! * The executor zero-resets the register file per launch, so nothing is
//!   ever *dynamically* uninitialized; the uninit lint flags the logical
//!   bug of reading a register that no path has written. A def under a
//!   guard counts as initializing: whichever way the guard goes the value
//!   is deterministic (write or the architectural zero).
//! * Predicate registers are not tracked by the uninit lint at all —
//!   reading a never-written predicate yields the reset value `false`, an
//!   idiom the kernel generator relies on for guards.
//! * Variance is a may-analysis: over-approximating "thread-varying"
//!   keeps the barrier/WMMA divergence lints sound. Geometry is used to
//!   refine it (e.g. `%warpid` is uniform in a single-warp CTA).

use crate::cfg::{instr_succs, Cfg};
use crate::LaunchGeometry;
use tcsim_isa::{Kernel, MemSpace, Op, Operand, SpecialReg};

/// A fixed-capacity bitset used for per-block register states.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn empty(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub(crate) fn full(n: usize) -> BitSet {
        let mut s = BitSet {
            words: vec![u64::MAX; n.div_ceil(64)],
        };
        if !n.is_multiple_of(64) && !s.words.is_empty() {
            let last = s.words.len() - 1;
            s.words[last] = (1u64 << (n % 64)) - 1;
        }
        s
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    pub(crate) fn intersect_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    pub(crate) fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }
}

/// Runs the must-initialize analysis and reports each read of a register
/// that is uninitialized along some path, via `report(pc, missing)`.
pub(crate) fn check_uninit(
    k: &Kernel,
    geom: &LaunchGeometry,
    cfg: &Cfg,
    mut report: impl FnMut(usize, &[u16]),
) {
    let instrs = k.instrs();
    if instrs.is_empty() {
        return;
    }
    let nregs = k.num_regs() as usize;
    let volta = geom.volta();
    let nb = cfg.num_blocks();

    // Per-block transfer: the set of registers defined in the block.
    let gen: Vec<BitSet> = (0..nb)
        .map(|b| {
            let mut g = BitSet::empty(nregs);
            for i in &instrs[cfg.blocks[b].start..cfg.blocks[b].end] {
                for r in i.def_regs(volta) {
                    if (r.0 as usize) < nregs {
                        g.insert(r.0 as usize);
                    }
                }
            }
            g
        })
        .collect();

    // Forward must-analysis: IN[b] = ∩ OUT[preds]; entry starts empty,
    // everything else starts at ⊤ and shrinks.
    let mut inb: Vec<BitSet> = (0..nb)
        .map(|b| {
            if b == 0 {
                BitSet::empty(nregs)
            } else {
                BitSet::full(nregs)
            }
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..nb {
            if !cfg.block_reachable(b) {
                continue;
            }
            let mut out = inb[b].clone();
            for (w, g) in out.words.iter_mut().zip(&gen[b].words) {
                *w |= g;
            }
            for &s in &cfg.blocks[b].succs {
                let mut new = inb[s].clone();
                new.intersect_with(&out);
                if new != inb[s] {
                    inb[s] = new;
                    changed = true;
                }
            }
        }
    }

    // Report reads of registers not definitely initialized.
    for (b, binit) in inb.iter().enumerate() {
        if !cfg.block_reachable(b) {
            continue;
        }
        let mut init = binit.clone();
        let block = &cfg.blocks[b];
        for (pc, i) in instrs.iter().enumerate().take(block.end).skip(block.start) {
            let missing: Vec<u16> = i
                .use_regs(volta)
                .into_iter()
                .filter(|r| (r.0 as usize) < nregs && !init.contains(r.0 as usize))
                .map(|r| r.0)
                .collect();
            if !missing.is_empty() {
                report(pc, &missing);
            }
            for r in i.def_regs(volta) {
                if (r.0 as usize) < nregs {
                    init.insert(r.0 as usize);
                }
            }
        }
    }
}

/// Result of the thread-variance analysis.
#[derive(Clone, Debug)]
pub struct Taint {
    /// Whether each 32-bit register may hold a thread-varying value.
    pub reg: Vec<bool>,
    /// Whether each predicate register (`p0`–`p7`) may be thread-varying.
    pub pred: Vec<bool>,
    /// Whether each instruction lies inside a divergent branch region
    /// (between a thread-varying guarded branch and its reconvergence).
    pub divergent: Vec<bool>,
    /// The branch instruction that opened each divergent region.
    pub divergent_from: Vec<Option<usize>>,
}

fn special_varying(s: SpecialReg, geom: &LaunchGeometry) -> bool {
    match s {
        SpecialReg::TidX => geom.block.x > 1,
        SpecialReg::TidY => geom.block.y > 1,
        SpecialReg::TidZ => geom.block.z > 1,
        SpecialReg::LaneId => geom.threads_per_cta() > 1,
        SpecialReg::WarpId => geom.warps_per_cta() > 1,
        // Uniform across all threads of one CTA; barriers and shared
        // memory are CTA-scoped, so these never cause divergence.
        SpecialReg::CtaIdX
        | SpecialReg::CtaIdY
        | SpecialReg::CtaIdZ
        | SpecialReg::NTidX
        | SpecialReg::NTidY
        | SpecialReg::NCtaIdX
        | SpecialReg::NCtaIdY => false,
    }
}

impl Taint {
    /// Computes register/predicate variance and divergent regions for `k`
    /// under `geom` to a combined fixpoint.
    pub fn compute(k: &Kernel, geom: &LaunchGeometry, cfg: &Cfg) -> Taint {
        let instrs = k.instrs();
        let len = instrs.len();
        let nregs = k.num_regs() as usize;
        let volta = geom.volta();
        let mut t = Taint {
            reg: vec![false; nregs],
            pred: vec![false; 8],
            divergent: vec![false; len],
            divergent_from: vec![None; len],
        };
        loop {
            // Inner fixpoint: propagate variance through data dependences.
            let mut changed = true;
            while changed {
                changed = false;
                for (pc, i) in instrs.iter().enumerate() {
                    if !cfg.instr_reachable(pc) {
                        continue;
                    }
                    let mut varying = t.divergent[pc];
                    varying |= matches!(
                        i.op,
                        Op::Ld {
                            space: MemSpace::Global | MemSpace::Shared | MemSpace::Local,
                            ..
                        } | Op::Atom { .. }
                            | Op::Shfl { .. }
                            | Op::Clock
                    );
                    if let Some((p, _)) = i.guard {
                        varying |= t.pred[p.0 as usize];
                    }
                    varying |= i
                        .use_regs(volta)
                        .iter()
                        .any(|r| (r.0 as usize) < nregs && t.reg[r.0 as usize]);
                    for s in &i.srcs {
                        match s {
                            Operand::Special(sr) => varying |= special_varying(*sr, geom),
                            Operand::Pred(p) => varying |= t.pred[p.0 as usize],
                            _ => {}
                        }
                    }
                    if varying {
                        for r in i.def_regs(volta) {
                            let r = r.0 as usize;
                            if r < nregs && !t.reg[r] {
                                t.reg[r] = true;
                                changed = true;
                            }
                        }
                        if let Some(p) = i.pred_dst {
                            let p = p.0 as usize;
                            if !t.pred[p] {
                                t.pred[p] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }

            // Recompute divergent regions from varying-guarded branches;
            // defs inside feed back into variance, so iterate to fixpoint.
            let (divergent, divergent_from) = divergent_regions(k, cfg, &t);
            if divergent == t.divergent {
                break;
            }
            t.divergent = divergent;
            t.divergent_from = divergent_from;
        }
        t
    }
}

/// Marks every instruction between a thread-varying guarded branch and its
/// reconvergence point (exclusive) as divergent.
fn divergent_regions(k: &Kernel, cfg: &Cfg, t: &Taint) -> (Vec<bool>, Vec<Option<usize>>) {
    let instrs = k.instrs();
    let len = instrs.len();
    let mut divergent = vec![false; len];
    let mut from = vec![None; len];
    for (pc, i) in instrs.iter().enumerate() {
        if !cfg.instr_reachable(pc) || !i.is_branch() {
            continue;
        }
        let Some((p, _)) = i.guard else { continue };
        if !t.pred[p.0 as usize] {
            continue;
        }
        // Both sides of the branch may execute with a partial warp until
        // the reconvergence point pops the SIMT stack. With no
        // reconvergence point recorded the divergence never ends (the
        // executor panics there; flagged by the barrier lint).
        let stop = i.reconv;
        let mut stack = instr_succs(i, pc, len);
        while let Some(n) = stack.pop() {
            if Some(n) == stop || divergent[n] {
                continue;
            }
            divergent[n] = true;
            from[n] = Some(pc);
            stack.extend(instr_succs(&instrs[n], n, len));
        }
    }
    (divergent, from)
}
