//! Unit tests for the static analyses on hand-built kernels: CFG and
//! dominator construction, must-initialize dataflow across loops and
//! predicated branches (one known-uninit case per register class),
//! barrier-divergence lints, WMMA well-formedness, and the shared-memory
//! race/bounds checks.

use tcsim_isa::{
    CmpOp, DataType, FragmentKind, Instr, KernelBuilder, Layout, MemSpace, MemWidth, Op, Operand,
    SpecialReg, WmmaShape, WmmaType,
};
use tcsim_verify::{cfg::Cfg, check, has_errors, LaunchGeometry, Severity};

fn geom_warps(warps: u32) -> LaunchGeometry {
    LaunchGeometry::new(1u32, 32 * warps)
}

fn rules(diags: &[tcsim_verify::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- CFG --

/// A counted loop: entry block, loop body with back-edge, exit block.
fn loop_kernel() -> tcsim_isa::Kernel {
    let mut b = KernelBuilder::new("loop");
    let i = b.reg();
    b.mov(i, Operand::Imm(0)); // 0
    let top = b.label();
    b.place(top);
    b.iadd(i, i, Operand::Imm(1)); // 1
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::S32, i, Operand::Imm(10)); // 2
    b.bra_if(p, true, top); // 3
    b.exit(); // 4
    b.build()
}

#[test]
fn cfg_blocks_and_dominators_of_a_loop() {
    let k = loop_kernel();
    let cfg = Cfg::build(&k);
    assert_eq!(cfg.num_blocks(), 3);
    assert_eq!((cfg.blocks[0].start, cfg.blocks[0].end), (0, 1));
    assert_eq!((cfg.blocks[1].start, cfg.blocks[1].end), (1, 4));
    assert_eq!((cfg.blocks[2].start, cfg.blocks[2].end), (4, 5));
    assert_eq!(cfg.blocks[0].succs, vec![1]);
    assert_eq!(cfg.blocks[1].succs, vec![1, 2]); // back-edge + fall-through
    assert!(cfg.blocks[2].succs.is_empty());
    // Entry dominates everything; the loop header dominates the exit;
    // the exit dominates nothing but itself.
    for b in 0..3 {
        assert!(cfg.dominates(0, b));
        assert!(cfg.dominates(b, b));
    }
    assert!(cfg.dominates(1, 2));
    assert!(!cfg.dominates(2, 1));
    // Instruction granularity: program order within a block.
    assert!(cfg.dominates_instr(1, 3));
    assert!(!cfg.dominates_instr(3, 1));
    assert!(cfg.dominates_instr(0, 4));
}

#[test]
fn uniform_counted_loop_verifies_clean() {
    let diags = check(&loop_kernel(), &geom_warps(2));
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}

#[test]
fn dead_code_after_exit_is_ignored() {
    let mut b = KernelBuilder::new("dead");
    let r = b.reg();
    let d = b.reg();
    b.mov(r, Operand::Imm(1)); // 0
    b.exit(); // 1
    b.iadd(d, d, Operand::Imm(1)); // 2: unreachable read of d
    let k = b.build();
    let cfg = Cfg::build(&k);
    assert!(!cfg.instr_reachable(2));
    assert!(check(&k, &geom_warps(1)).is_empty());
}

// ---------------------------------------------------- uninitialized regs --

#[test]
fn uninit_32bit_register_read_is_flagged() {
    let mut b = KernelBuilder::new("u32");
    let r = b.reg();
    let d = b.reg();
    b.iadd(d, r, Operand::Imm(1)); // 0: r never written
    b.exit();
    let diags = check(&b.build(), &geom_warps(1));
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "uninit-reg");
    assert_eq!(diags[0].index, 0);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("r0"), "{}", diags[0].message);
    assert!(!diags[0].snippet.is_empty());
}

#[test]
fn uninit_register_pair_half_is_flagged() {
    let mut b = KernelBuilder::new("pair");
    let src = b.reg_pair();
    let dst = b.reg_pair();
    b.mov(src, Operand::Imm(7)); // 0: writes only the low register
    b.iadd64(dst, src, Operand::Imm(4)); // 1: reads both halves
    b.exit();
    let diags = check(&b.build(), &geom_warps(1));
    assert_eq!(rules(&diags), vec!["uninit-reg"]);
    assert_eq!(diags[0].index, 1);
    assert!(
        diags[0].message.contains(&format!("r{}", src.0 + 1)),
        "{}",
        diags[0].message
    );
}

#[test]
fn uninit_wmma_fragment_group_is_flagged() {
    let mut b = KernelBuilder::new("frag");
    let inp = b.param_u64("in");
    let addr = b.reg_pair();
    b.ld_param(MemWidth::B64, addr, inp); // 0
    let a = b.reg_block(8);
    let bb = b.reg_block(8);
    let c = b.reg_block(8);
    let d = b.reg_block(8);
    b.wmma_load(
        FragmentKind::A,
        WmmaShape::M16N16K16,
        Layout::Row,
        WmmaType::F16,
        MemSpace::Global,
        a,
        Operand::RegPair(addr),
        Operand::Imm(16),
    ); // 1: A defined, B and C never loaded
    b.wmma_mma(
        WmmaShape::M16N16K16,
        Layout::Row,
        Layout::Col,
        WmmaType::F16,
        WmmaType::F32,
        WmmaType::F32,
        d,
        a,
        bb,
        c,
    ); // 2
    b.exit();
    let diags = check(&b.build(), &geom_warps(1));
    let uninit: Vec<_> = diags.iter().filter(|d| d.rule == "uninit-reg").collect();
    assert_eq!(uninit.len(), 1, "{diags:?}");
    assert_eq!(uninit[0].index, 2);
    // All 16 registers of the B and C fragments are uninitialized.
    assert!(uninit[0].message.contains(&format!("r{}", bb.0)));
    assert!(uninit[0].message.contains(&format!("r{}", c.0 + 7)));
}

#[test]
fn def_on_only_one_branch_arm_is_flagged_at_the_join() {
    let mut b = KernelBuilder::new("diamond");
    let t = b.reg();
    let r = b.reg();
    let d = b.reg();
    let p = b.pred();
    b.mov(t, Operand::Special(SpecialReg::TidX)); // 0
    b.setp(p, CmpOp::Lt, DataType::S32, t, Operand::Imm(16)); // 1
    let skip = b.label();
    let merge = b.label();
    b.bra_div(p, false, skip, merge); // 2: skip the def when !p
    b.mov(r, Operand::Imm(5)); // 3: only on the p-true path
    b.place(skip);
    b.place(merge);
    b.iadd(d, r, Operand::Imm(1)); // 4: r uninit when p is false
    b.exit();
    let diags = check(&b.build(), &geom_warps(2));
    assert_eq!(rules(&diags), vec!["uninit-reg"]);
    assert_eq!(diags[0].index, 4);
}

#[test]
fn guarded_def_counts_as_initializing() {
    // The register file is zero-reset per launch; whichever way the guard
    // goes the value is deterministic, so a guarded def is "initialized".
    let mut b = KernelBuilder::new("guarded");
    let r = b.reg();
    let d = b.reg();
    let p = b.pred();
    b.emit(
        Instr::new(Op::Mov)
            .with_dst(r)
            .with_srcs(vec![Operand::Imm(1)])
            .with_guard(p, true),
    );
    b.iadd(d, r, Operand::Imm(1));
    b.exit();
    assert!(check(&b.build(), &geom_warps(1)).is_empty());
}

// ------------------------------------------------------ barrier lints --

#[test]
fn barrier_under_varying_guard_is_an_error() {
    let mut b = KernelBuilder::new("bar_guard");
    let t = b.reg();
    let p = b.pred();
    b.mov(t, Operand::Special(SpecialReg::TidX)); // 0
    b.setp(p, CmpOp::Lt, DataType::S32, t, Operand::Imm(16)); // 1
    b.emit(Instr::new(Op::Bar).with_guard(p, true)); // 2
    b.exit();
    let diags = check(&b.build(), &geom_warps(2));
    assert_eq!(rules(&diags), vec!["barrier-divergence"]);
    assert_eq!(diags[0].index, 2);
    assert!(diags[0].message.contains("#2"));
}

#[test]
fn barrier_inside_divergent_region_is_an_error() {
    let mut b = KernelBuilder::new("bar_div");
    let t = b.reg();
    let p = b.pred();
    b.mov(t, Operand::Special(SpecialReg::TidX)); // 0
    b.setp(p, CmpOp::Lt, DataType::S32, t, Operand::Imm(16)); // 1
    let end = b.label();
    b.bra_div(p, false, end, end); // 2
    b.bar(); // 3: executed by a partial CTA
    b.place(end);
    b.exit(); // 4
    let diags = check(&b.build(), &geom_warps(2));
    assert_eq!(rules(&diags), vec!["barrier-divergence"]);
    assert_eq!(diags[0].index, 3);
    assert!(
        diags[0].message.contains("divergent branch at #2"),
        "{}",
        diags[0].message
    );
}

#[test]
fn barrier_in_uniform_loop_is_clean() {
    let mut b = KernelBuilder::new("bar_loop");
    let i = b.reg();
    b.mov(i, Operand::Imm(0));
    let top = b.label();
    b.place(top);
    b.bar();
    b.iadd(i, i, Operand::Imm(1));
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::S32, i, Operand::Imm(4));
    b.bra_if(p, true, top);
    b.exit();
    let diags = check(&b.build(), &geom_warps(2));
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}

#[test]
fn varying_branch_without_reconvergence_is_an_error() {
    let mut b = KernelBuilder::new("no_reconv");
    let t = b.reg();
    let p = b.pred();
    b.mov(t, Operand::Special(SpecialReg::TidX)); // 0
    b.setp(p, CmpOp::Lt, DataType::S32, t, Operand::Imm(16)); // 1
    let end = b.label();
    b.bra_if(p, true, end); // 2: divergent, no reconvergence point
    b.place(end);
    b.exit();
    let diags = check(&b.build(), &geom_warps(2));
    assert!(rules(&diags).contains(&"no-reconvergence"), "{diags:?}");
    assert!(has_errors(&diags));
}

// --------------------------------------------------------- WMMA lints --

#[test]
fn turing_shape_on_volta_is_flagged() {
    let mut b = KernelBuilder::new("volta_mode");
    let inp = b.param_u64("in");
    let addr = b.reg_pair();
    b.ld_param(MemWidth::B64, addr, inp);
    let a = b.reg_block(16);
    b.wmma_load(
        FragmentKind::A,
        WmmaShape::M32N8K16,
        Layout::Row,
        WmmaType::F16,
        MemSpace::Global,
        a,
        Operand::RegPair(addr),
        Operand::Imm(16),
    );
    b.exit();
    let diags = check(&b.build(), &geom_warps(1)); // Volta geometry
    assert!(rules(&diags).contains(&"wmma-mode"), "{diags:?}");
}

#[test]
fn fragment_shape_mismatch_between_load_and_mma_is_flagged() {
    let mut b = KernelBuilder::new("frag_mismatch");
    let inp = b.param_u64("in");
    let addr = b.reg_pair();
    b.ld_param(MemWidth::B64, addr, inp);
    let a = b.reg_block(16);
    let bb = b.reg_block(16);
    let c = b.reg_block(8);
    let d = b.reg_block(8);
    let load = |b: &mut KernelBuilder, frag, ty, dst| {
        b.wmma_load(
            frag,
            WmmaShape::M16N16K16,
            Layout::Row,
            ty,
            MemSpace::Global,
            dst,
            Operand::RegPair(addr),
            Operand::Imm(32),
        );
    };
    load(&mut b, FragmentKind::A, WmmaType::F16, a);
    load(&mut b, FragmentKind::B, WmmaType::F16, bb);
    load(&mut b, FragmentKind::C, WmmaType::F32, c);
    // The mma uses a different (Turing-valid) shape than the loads.
    b.wmma_mma(
        WmmaShape::M32N8K16,
        Layout::Row,
        Layout::Col,
        WmmaType::F16,
        WmmaType::F32,
        WmmaType::F32,
        d,
        a,
        bb,
        c,
    );
    b.exit();
    let diags = check(&b.build(), &geom_warps(1).turing());
    let frag: Vec<_> = diags.iter().filter(|d| d.rule == "wmma-frag").collect();
    assert!(!frag.is_empty(), "{diags:?}");
    assert!(frag[0].message.contains("m16n16k16"), "{}", frag[0].message);
}

#[test]
fn misaligned_fragment_base_is_a_warning() {
    let mut b = KernelBuilder::new("misaligned");
    let inp = b.param_u64("in");
    let addr = b.reg_pair();
    b.ld_param(MemWidth::B64, addr, inp);
    for _ in 0..8 {
        b.reg(); // ensure enough registers past the odd base
    }
    b.emit(
        Instr::new(Op::Wmma(tcsim_isa::WmmaDirective::Load {
            frag: FragmentKind::A,
            shape: WmmaShape::M16N16K16,
            layout: Layout::Row,
            ty: WmmaType::F16,
        }))
        .with_dst(tcsim_isa::Reg(3)) // 4-register fragment at an odd base
        .with_srcs(vec![
            Operand::RegPair(addr),
            Operand::Imm(16),
            Operand::Imm(0),
        ]),
    );
    b.exit();
    let diags = check(&b.build(), &geom_warps(1).turing());
    let warns: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "wmma-frag-align")
        .collect();
    assert_eq!(warns.len(), 1, "{diags:?}");
    assert_eq!(warns[0].severity, Severity::Warn);
}

// ------------------------------------------------------- shared memory --

#[test]
fn shared_out_of_bounds_store_is_flagged() {
    let mut b = KernelBuilder::new("oob");
    b.shared_alloc(64);
    let a = b.reg();
    let d = b.reg();
    b.mov(a, Operand::Imm(100)); // past the 64-byte allocation
    b.mov(d, Operand::Imm(1));
    b.st_shared(MemWidth::B32, a, 0, d);
    b.exit();
    let diags = check(&b.build(), &geom_warps(1));
    assert_eq!(rules(&diags), vec!["shared-oob"]);
    assert!(
        diags[0].message.contains("[100, 104)"),
        "{}",
        diags[0].message
    );
}

#[test]
fn uniform_address_cross_warp_store_is_a_race() {
    let mut b = KernelBuilder::new("race");
    b.shared_alloc(64);
    let a = b.reg();
    let d = b.reg();
    b.mov(a, Operand::Imm(0));
    b.mov(d, Operand::Special(SpecialReg::TidX));
    b.st_shared(MemWidth::B32, a, 0, d); // every thread writes byte 0
    b.exit();
    let diags = check(&b.build(), &geom_warps(2));
    assert_eq!(rules(&diags), vec!["shared-race"]);
    assert!(diags[0].message.contains("write-write"));
    // The same kernel on a single-warp CTA is lockstep-deterministic.
    let mut b = KernelBuilder::new("race1w");
    b.shared_alloc(64);
    let a = b.reg();
    let d = b.reg();
    b.mov(a, Operand::Imm(0));
    b.mov(d, Operand::Special(SpecialReg::TidX));
    b.st_shared(MemWidth::B32, a, 0, d);
    b.exit();
    assert!(check(&b.build(), &geom_warps(1)).is_empty());
}

#[test]
fn per_thread_sliced_stores_are_clean() {
    let mut b = KernelBuilder::new("sliced");
    b.shared_alloc(256);
    let t = b.reg();
    let a = b.reg();
    b.mov(t, Operand::Special(SpecialReg::TidX));
    b.shl(a, t, Operand::Imm(2)); // addr = tid*4 — disjoint per thread
    b.st_shared(MemWidth::B32, a, 0, t);
    b.ld_shared(MemWidth::B32, t, a, 0);
    b.exit();
    let diags = check(&b.build(), &geom_warps(2));
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}

#[test]
fn barrier_separates_write_from_read() {
    // Each warp writes its own slot, sync, then every thread reads slot 0:
    // the cross-warp write/read pair is separated by the barrier.
    let build = |with_bar: bool| {
        let mut b = KernelBuilder::new("bar_sep");
        b.shared_alloc(16);
        let w = b.reg();
        let a = b.reg();
        let d = b.reg();
        b.mov(w, Operand::Special(SpecialReg::WarpId));
        b.shl(a, w, Operand::Imm(2)); // addr = warpid*4 — warp-disjoint
        b.st_shared(MemWidth::B32, a, 0, w);
        if with_bar {
            b.bar();
        }
        b.mov(a, Operand::Imm(0));
        b.ld_shared(MemWidth::B32, d, a, 0); // all threads read slot 0
        b.exit();
        b.build()
    };
    let diags = check(&build(true), &geom_warps(2));
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
    // Without the barrier, warp 0's write to slot 0 races warp 1's read.
    let diags = check(&build(false), &geom_warps(2));
    assert_eq!(rules(&diags), vec!["shared-race"]);
    assert!(
        diags[0].message.contains("write-read"),
        "{}",
        diags[0].message
    );
}

#[test]
fn masked_generator_style_slices_are_clean() {
    // The fuzzer's shared idiom: sbase = warpid*256; addr = (v & 63)*4 +
    // sbase — per-warp 256-byte slices, any v.
    let mut b = KernelBuilder::new("gen_style");
    b.shared_alloc(2 * 256);
    let w = b.reg();
    let sbase = b.reg();
    let v = b.reg();
    let s = b.reg();
    b.mov(w, Operand::Special(SpecialReg::WarpId));
    b.imul(sbase, w, Operand::Imm(256));
    b.mov(v, Operand::Special(SpecialReg::TidX));
    b.imul(v, v, Operand::Imm(2654435761i64 as i32 as i64)); // scrambled
    b.and(s, v, Operand::Imm(63));
    b.imad(s, s, Operand::Imm(4), Operand::Reg(sbase));
    b.st_shared(MemWidth::B32, s, 0, v);
    b.ld_shared(MemWidth::B32, v, s, 0);
    b.exit();
    let diags = check(&b.build(), &geom_warps(2));
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}

#[test]
fn diagnostics_render_with_snippets() {
    let mut b = KernelBuilder::new("render");
    let r = b.reg();
    let d = b.reg();
    b.iadd(d, r, Operand::Imm(1));
    b.exit();
    let diags = check(&b.build(), &geom_warps(1));
    let text = diags[0].to_string();
    assert!(text.contains("error[uninit-reg]"), "{text}");
    assert!(text.contains("-->"), "{text}");
}
