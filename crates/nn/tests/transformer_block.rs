//! End-to-end checks for the transformer encoder block: differential
//! accuracy per stage, chained-vs-parallel cycle equivalence, and
//! deterministic reports.

use tcsim_nn::models::{encoder, input_for, ENCODER_D_MODEL, ENCODER_SEQ};
use tcsim_nn::{run_chained, run_parallel};
use tcsim_sim::GpuConfig;

#[test]
fn encoder_block_runs_end_to_end_within_tolerance() {
    let net = encoder(3, 2);
    assert_eq!(net.final_shape(), &[2 * ENCODER_SEQ, ENCODER_D_MODEL]);
    let input = input_for(&net, 3);
    let report = run_chained(&net, &input, GpuConfig::mini(), false);
    report.assert_within_tolerance();
    assert!(report.total_cycles() > 0);
    // The composite layers expand to per-stage records: 2 layernorms +
    // attention (qkv/scores/softmax/ctx/proj/residual) + mlp
    // (fc1/gelu/fc2/residual).
    assert_eq!(report.layers.len(), 2 + 6 + 4);
    for l in &report.layers {
        assert!(l.cycles > 0, "{} has no cycles", l.name);
    }
    // The GEMM stages keep the HMMA pipe busy; softmax must not touch it.
    let qkv = report
        .layers
        .iter()
        .find(|l| l.name.ends_with("/qkv"))
        .unwrap();
    assert!(
        qkv.kernel.contains("wmma") || qkv.kernel.contains("gemm"),
        "{}",
        qkv.kernel
    );
}

#[test]
fn chained_and_parallel_agree_on_cycles() {
    let net = encoder(7, 1);
    let input = input_for(&net, 7);
    let chained = run_chained(&net, &input, GpuConfig::mini(), false);
    let parallel = run_parallel(&net, &input, GpuConfig::mini(), false, 2);
    chained.assert_within_tolerance();
    parallel.assert_within_tolerance();
    assert_eq!(chained.layers.len(), parallel.layers.len());
    // Kernel timing is data-independent and each launch starts cold, so
    // the two modes must agree cycle-for-cycle, stage by stage.
    for (c, p) in chained.layers.iter().zip(&parallel.layers) {
        assert_eq!(c.name, p.name);
        assert_eq!(c.kernel, p.kernel);
        assert_eq!(
            (c.cycles, c.instructions),
            (p.cycles, p.instructions),
            "stage {} diverged between chained and parallel",
            c.name
        );
    }
}

#[test]
fn encoder_report_is_deterministic() {
    let net = encoder(11, 1);
    let input = input_for(&net, 11);
    let a = run_chained(&net, &input, GpuConfig::mini(), false);
    let b = run_chained(&net, &input, GpuConfig::mini(), false);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn traced_encoder_reports_hmma_occupancy_on_gemm_stages() {
    let net = encoder(5, 1);
    let input = input_for(&net, 5);
    let report = run_chained(&net, &input, GpuConfig::mini(), true);
    report.assert_within_tolerance();
    for l in &report.layers {
        let occ = l
            .hmma_occupancy
            .unwrap_or_else(|| panic!("{} untraced", l.name));
        if l.name.ends_with("/qkv") || l.name.ends_with("/proj") || l.name.contains("/fc") {
            assert!(occ > 0.0, "{} occupancy {occ}", l.name);
        }
        if l.name.ends_with("/softmax") || l.name.ends_with("/gelu") {
            assert_eq!(occ, 0.0, "{} should not issue HMMA", l.name);
        }
    }
}
