//! Property test: implicit-GEMM convolution (host im2col + WMMA GEMM on
//! the simulated tensor cores) must match a direct f32 convolution
//! reference computed here, independently of the crate's own reference
//! executor — over randomized shapes, including dimensions that are not
//! multiples of the 16-wide WMMA tile (exercising the zero-padding
//! path).

use tcsim_f16::F16;
use tcsim_nn::{gemm_tolerance, lower, run_chained, GraphBuilder, LoweredOp, Tensor};
use tcsim_sim::GpuConfig;

// Deterministic inputs from the workspace's canonical PRNG (same
// xorshift64* recurrence the local copy used, so sequences are unchanged).
use tcsim_check::rng::XorShift64Star as Rng;

/// Uniform size in `[0, bound)`.
fn below(rng: &mut Rng, bound: u64) -> usize {
    rng.below(bound) as usize
}

/// f16-exact value: a multiple of 1/8 in [-2, 2).
fn operand(rng: &mut Rng) -> f32 {
    (below(rng, 32) as f32 - 16.0) / 8.0
}

/// Tensor of f16-exact random operands.
fn tensor(rng: &mut Rng, shape: Vec<usize>) -> Tensor {
    let n = shape.iter().product();
    Tensor::new(shape, (0..n).map(|_| operand(rng)).collect())
}

/// Direct stride-1 valid convolution with the device's numeric boundary:
/// operands quantized through f16, accumulation in f32.
fn direct_conv(
    input: &Tensor,
    weight: &Tensor, // [out_c, in_c·k·k], rows = flattened filters
    in_c: usize,
    out_c: usize,
    k: usize,
) -> Tensor {
    let (h, w) = (input.shape()[1], input.shape()[2]);
    let (oh, ow) = (h - k + 1, w - k + 1);
    let q = |v: f32| F16::from_f32(v).to_f32();
    Tensor::from_fn(vec![out_c, oh, ow], |i| {
        let f = i / (oh * ow);
        let oy = (i / ow) % oh;
        let ox = i % ow;
        let mut acc = 0f32;
        for c in 0..in_c {
            for dy in 0..k {
                for dx in 0..k {
                    let iv = q(input.data()[(c * h + oy + dy) * w + ox + dx]);
                    let wv = q(weight.data()[f * in_c * k * k + (c * k + dy) * k + dx]);
                    acc += iv * wv;
                }
            }
        }
        acc
    })
}

#[test]
fn im2col_wmma_gemm_matches_direct_convolution() {
    let mut rng = Rng::new(0x1A2C01);
    let mut saw_padded_m = false;
    let mut saw_padded_k = false;
    for case in 0..10 {
        // Random shape; most draws make oh·ow and in_c·k² non-multiples
        // of 16, so A and B both need zero padding.
        let in_c = 1 + below(&mut rng, 4);
        let out_c = 1 + below(&mut rng, 12);
        let k = 1 + below(&mut rng, 3);
        let h = k + 2 + below(&mut rng, 9);
        let w = k + 2 + below(&mut rng, 9);

        let weight = tensor(&mut rng, vec![out_c, in_c * k * k]);
        let input = tensor(&mut rng, vec![in_c, h, w]);
        let graph = GraphBuilder::new(format!("conv_case{case}"), vec![in_c, h, w])
            .conv2d(in_c, out_c, k, weight.clone())
            .build();

        let plan = lower(&graph);
        let LoweredOp::Gemm(g) = &plan[0].op else {
            panic!("conv must lower to a GEMM")
        };
        saw_padded_m |= g.pm != g.m;
        saw_padded_k |= g.pk != g.k;

        let report = run_chained(&graph, &input, GpuConfig::mini(), false);
        report.assert_within_tolerance();

        let want = direct_conv(&input, &weight, in_c, out_c, k);
        // Re-derive the device output from the reference-checked report:
        // run_chained already compared against the crate's reference;
        // here we compare that same reference against the INDEPENDENT
        // direct convolution, closing the loop device == direct.
        let tol = gemm_tolerance(g.k);
        let dev_vs_direct =
            report.layers[0].max_err + want.max_abs_diff(&crate_reference(&graph, &input));
        assert!(
            dev_vs_direct <= 2.0 * tol,
            "case {case} ({in_c}x{h}x{w} * {out_c} filters {k}x{k}): |device - direct| bound {dev_vs_direct} > {tol}",
        );
    }
    assert!(
        saw_padded_m,
        "at least one case must pad M to a 16 multiple"
    );
    assert!(
        saw_padded_k,
        "at least one case must pad K to a 16 multiple"
    );
}

fn crate_reference(graph: &tcsim_nn::Graph, input: &Tensor) -> Tensor {
    tcsim_nn::reference::run_graph(graph, input)
        .pop()
        .expect("one layer")
}

#[test]
fn fused_epilogue_conv_matches_direct_plus_bias_relu() {
    // conv+bias+relu fused into one launch: device output must equal
    // max(direct_conv + bias, 0) within the GEMM tolerance.
    let mut rng = Rng::new(0xE91106);
    for case in 0..4 {
        let in_c = 1 + below(&mut rng, 3);
        let out_c = 2 + below(&mut rng, 6);
        let k = 2 + below(&mut rng, 2);
        let h = k + 3 + below(&mut rng, 6);
        let w = k + 3 + below(&mut rng, 6);
        let weight = tensor(&mut rng, vec![out_c, in_c * k * k]);
        let bias = tensor(&mut rng, vec![out_c]);
        let input = tensor(&mut rng, vec![in_c, h, w]);

        let graph = GraphBuilder::new(format!("fused_case{case}"), vec![in_c, h, w])
            .conv2d(in_c, out_c, k, weight.clone())
            .bias(bias.clone())
            .relu()
            .build();
        let plan = lower(&graph);
        assert_eq!(plan.len(), 1, "bias+relu must fuse into the conv GEMM");

        let report = run_chained(&graph, &input, GpuConfig::mini(), false);
        report.assert_within_tolerance();

        let direct = direct_conv(&input, &weight, in_c, out_c, k);
        let (oh, ow) = (h - k + 1, w - k + 1);
        let want = Tensor::from_fn(direct.shape().to_vec(), |i| {
            (direct.data()[i] + bias.data()[i / (oh * ow)]).max(0.0)
        });
        let reference = crate_reference(&graph, &input);
        let tol = gemm_tolerance(in_c * k * k);
        assert!(
            want.max_abs_diff(&reference) + report.layers[0].max_err <= 2.0 * tol,
            "case {case}: fused epilogue drifted from direct conv + bias + relu",
        );
    }
}
