//! Pin: the analytically modeled tile choice never cycles-regresses the
//! largest-divisor heuristic on the shipped model zoo.
//!
//! For every GEMM shape lenet/mlp/encoder lower to (top-level conv and
//! linear GEMMs from the plan, attention/MLP block GEMMs derived from
//! the layer parameters exactly as `block.rs` pads them), both the
//! heuristic and the modeled tile are computed; wherever they disagree,
//! both kernels run the padded problem on the cycle-level simulator and
//! the modeled choice must not be slower.

use std::collections::BTreeSet;

use tcsim_cutlass::{run_gemm, CutlassConfig, GemmKernel, GemmPrecision, GemmProblem};
use tcsim_nn::models::{encoder, lenet, mlp};
use tcsim_nn::{lower, lower_modeled, pad16, Graph, LoweredOp, Tile};
use tcsim_sim::{Gpu, GpuConfig};

fn kernel_for(tile: Tile) -> GemmKernel {
    match tile {
        Tile::Simple => GemmKernel::WmmaSimple,
        Tile::Shared => GemmKernel::WmmaShared,
        Tile::Cutlass => GemmKernel::Cutlass(CutlassConfig::default_64x64()),
    }
}

/// Every padded GEMM shape the graph's launch plan contains.
fn gemm_shapes(graph: &Graph) -> Vec<(usize, usize, usize)> {
    let mut shapes = Vec::new();
    for layer in lower(graph) {
        let rows = layer.output_shape[0];
        match &layer.op {
            LoweredOp::Gemm(g) => shapes.push((g.pm, g.pn, g.pk)),
            LoweredOp::Attention(a) => {
                let (d, hd) = (a.d_model, a.d_model / a.heads);
                // QKV projection, per-head score/context, output proj —
                // padded the same way block.rs does per launch_gemm.
                shapes.push((pad16(rows), pad16(3 * d), pad16(d)));
                shapes.push((pad16(a.seq), pad16(a.seq), pad16(hd)));
                shapes.push((pad16(a.seq), pad16(hd), pad16(a.seq)));
                shapes.push((pad16(rows), pad16(d), pad16(d)));
            }
            LoweredOp::Mlp(m) => {
                shapes.push((pad16(rows), pad16(m.d_ff), pad16(m.d_model)));
                shapes.push((pad16(rows), pad16(m.d_model), pad16(m.d_ff)));
            }
            _ => {}
        }
    }
    shapes
}

#[test]
fn modeled_tiles_never_regress_the_heuristic() {
    let gpu = GpuConfig::mini();
    let mut shapes: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    for graph in [lenet(1), mlp(1), encoder(1, 2)] {
        shapes.extend(gemm_shapes(&graph));
    }
    assert!(!shapes.is_empty());

    let mut disagreements = 0;
    for (pm, pn, pk) in shapes {
        let heuristic = Tile::select(pm, pn);
        let modeled = Tile::select_modeled(pm, pn, pk, &gpu);
        if heuristic == modeled {
            continue;
        }
        disagreements += 1;
        let problem = GemmProblem {
            m: pm,
            n: pn,
            k: pk,
            precision: GemmPrecision::MixedF32,
        };
        let sim = |tile| {
            let mut g = Gpu::new(gpu.clone());
            run_gemm(&mut g, problem, kernel_for(tile), false)
                .stats
                .cycles
        };
        let (hc, mc) = (sim(heuristic), sim(modeled));
        assert!(
            mc <= hc,
            "{pm}x{pn}x{pk}: modeled {} = {mc} cycles regresses heuristic {} = {hc} cycles",
            modeled.name(),
            heuristic.name(),
        );
    }
    // The model zoo is built to exercise the larger tiles; the modeled
    // chooser should actually deviate somewhere (else this test pins
    // nothing) — mlp's 64-row GEMMs are exactly where small problems
    // beat the biggest-divisor choice.
    assert!(
        disagreements > 0,
        "modeled selection never deviated; pin is vacuous"
    );
}

#[test]
fn lower_modeled_only_changes_tiles() {
    let gpu = GpuConfig::mini();
    let graph = mlp(1);
    let base = lower(&graph);
    let modeled = lower_modeled(&graph, &gpu);
    assert_eq!(base.len(), modeled.len());
    for (b, m) in base.iter().zip(&modeled) {
        assert_eq!(b.name, m.name);
        if let (LoweredOp::Gemm(bg), LoweredOp::Gemm(mg)) = (&b.op, &m.op) {
            assert_eq!((bg.pm, bg.pn, bg.pk), (mg.pm, mg.pn, mg.pk));
        }
    }
}
