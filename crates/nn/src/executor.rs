//! Graph executor: runs a lowered plan on the simulated GPU with a
//! per-layer differential check against the f32 reference.
//!
//! Two modes:
//!
//! * [`run_chained`] — the real inference schedule: every launch runs in
//!   order on ONE [`Gpu`] inside a [`Session`], each layer consuming the
//!   previous layer's device output. Per-layer trace windows give
//!   cycles/IPC/tensor-occupancy per launch.
//! * [`run_parallel`] — a what-if schedule for sweep-style throughput
//!   studies: layer inputs are pre-computed host-side by the reference
//!   executor, which breaks the data dependence and lets every launch run
//!   as an independent [`Sweep`] job (fresh GPU each). Cycle counts per
//!   layer are identical to the chained mode (launch boundaries are cold,
//!   see `tcsim_sim::Session`); only wall-clock simulation time changes.
//!
//! Every device output is checked against the reference: GEMM layers
//! within [`gemm_tolerance`] of the quantized-f16/f32-accumulate oracle,
//! elementwise layers bit-exact.

use crate::block::{exec_attention, exec_mlp, ExecMode};
use crate::graph::Graph;
use crate::kernels::{
    bias_grid, bias_kernel, elems_grid, gelu_kernel, layernorm_kernel, maxpool_grid,
    maxpool_kernel, relu_grid, relu_kernel, rowred_grid, softmax_kernel, BLOCK,
};
use crate::lower::{
    gemm_tolerance, layernorm_tolerance, lower, softmax_tolerance, GemmOp, GemmSource,
    LoweredLayer, LoweredOp,
};
use crate::reference::run_layer;
use crate::tensor::Tensor;
use tcsim_f16::F16;
use tcsim_sim::{Gpu, GpuConfig, JsonWriter, LaunchBuilder, LaunchStats, Session, Sweep};
use tcsim_trace::RingTracer;

/// Per-layer execution record: timing, the kernel it dispatched to, and
/// the differential-check result.
#[derive(Clone, Debug)]
pub struct LayerReport {
    /// Lowered-layer name (fused names joined with `+`).
    pub name: String,
    /// Device kernel name, or `host` for reshape-only steps.
    pub kernel: String,
    /// Problem dimensions, human-readable.
    pub dims: String,
    /// Simulated cycles (0 for host steps).
    pub cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// HMMA pipe occupancy from the per-launch trace window, if traced.
    pub hmma_occupancy: Option<f64>,
    /// Largest |device − reference| over the layer output.
    pub max_err: f32,
    /// Permitted bound for `max_err`.
    pub tolerance: f32,
}

impl LayerReport {
    /// Warp instructions per cycle (0 for host steps).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("name", &self.name);
        w.field_str("kernel", &self.kernel);
        w.field_str("dims", &self.dims);
        w.field_u64("cycles", self.cycles);
        w.field_u64("instructions", self.instructions);
        w.field_f64("ipc", self.ipc());
        match self.hmma_occupancy {
            Some(o) => w.field_f64("hmma_occupancy", o),
            None => w.raw_field("hmma_occupancy", "null"),
        }
        w.field_f64("max_err", f64::from(self.max_err));
        w.field_f64("tolerance", f64::from(self.tolerance));
        w.finish()
    }
}

/// Whole-network inference result.
#[derive(Clone, Debug)]
pub struct InferenceReport {
    /// Network name.
    pub network: String,
    /// `chained` or `parallel`.
    pub mode: String,
    /// One record per lowered layer, in execution order.
    pub layers: Vec<LayerReport>,
    /// Final activation (device output in chained mode; reference output
    /// in parallel mode, where device activations are not propagated).
    pub output: Vec<f32>,
}

impl InferenceReport {
    /// Sum of simulated cycles over all launches.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Worst layer error relative to its own tolerance (≤ 1 means every
    /// layer passed).
    pub fn worst_rel_err(&self) -> f32 {
        self.layers
            .iter()
            .filter(|l| l.tolerance > 0.0 || l.max_err > 0.0)
            .map(|l| {
                if l.tolerance == 0.0 {
                    if l.max_err == 0.0 {
                        0.0
                    } else {
                        f32::INFINITY
                    }
                } else {
                    l.max_err / l.tolerance
                }
            })
            .fold(0.0, f32::max)
    }

    /// Panics if any layer's device output drifted beyond its tolerance.
    pub fn assert_within_tolerance(&self) {
        for l in &self.layers {
            assert!(
                l.max_err <= l.tolerance,
                "{}: layer {} max_err {} exceeds tolerance {}",
                self.network,
                l.name,
                l.max_err,
                l.tolerance
            );
        }
    }

    /// Deterministic JSON (no wall-clock fields).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("network", &self.network);
        w.field_str("mode", &self.mode);
        w.field_u64("total_cycles", self.total_cycles());
        w.field_f64("worst_rel_err", f64::from(self.worst_rel_err()));
        let layers: Vec<String> = self.layers.iter().map(LayerReport::to_json).collect();
        w.raw_field("layers", &format!("[{}]", layers.join(",")));
        let out: Vec<String> = self.output.iter().map(|v| format!("{v:.6}")).collect();
        w.raw_field("output", &format!("[{}]", out.join(",")));
        w.finish()
    }
}

/// Applies the reference executor over the graph layers a lowered step
/// covers, producing the oracle for that step's device output.
fn reference_span(graph: &Graph, span: &std::ops::Range<usize>, input: &Tensor) -> Tensor {
    let mut act = input.clone();
    for idx in span.clone() {
        act = run_layer(&graph.layers()[idx].1, &act);
    }
    act
}

fn upload_f32(gpu: &mut Gpu, data: &[f32]) -> u64 {
    let p = gpu.alloc((data.len() * 4) as u64);
    for (i, &v) in data.iter().enumerate() {
        gpu.write_u32(p + (i * 4) as u64, v.to_bits());
    }
    p
}

/// Packs the A operand (padded `pm × pk`, f16): im2col for conv, the
/// activation verbatim for linear. Padding rows/columns stay zero
/// (untouched device memory reads 0).
fn pack_a(gpu: &mut Gpu, g: &GemmOp, act: &Tensor) -> u64 {
    let pa = gpu.alloc((g.pm * g.pk * 2) as u64);
    match &g.source {
        GemmSource::Conv {
            in_c,
            kh,
            kw,
            h,
            w,
            oh,
            ow,
        } => {
            for oy in 0..*oh {
                for ox in 0..*ow {
                    let row = oy * ow + ox;
                    for c in 0..*in_c {
                        for dy in 0..*kh {
                            for dx in 0..*kw {
                                let col = (c * kh + dy) * kw + dx;
                                let v = act.data()[(c * h + oy + dy) * w + ox + dx];
                                gpu.write_u16(
                                    pa + ((row * g.pk + col) * 2) as u64,
                                    F16::from_f32(v).to_bits(),
                                );
                            }
                        }
                    }
                }
            }
        }
        GemmSource::Linear => {
            for r in 0..g.m {
                for c in 0..g.k {
                    gpu.write_u16(
                        pa + ((r * g.pk + c) * 2) as u64,
                        F16::from_f32(act.data()[r * g.k + c]).to_bits(),
                    );
                }
            }
        }
    }
    pa
}

/// Packs the B operand (padded `pk × pn`, f16) from the lowered `[k, n]`
/// weight.
fn pack_b(gpu: &mut Gpu, g: &GemmOp) -> u64 {
    let pb = gpu.alloc((g.pk * g.pn * 2) as u64);
    for r in 0..g.k {
        for c in 0..g.n {
            gpu.write_u16(
                pb + ((r * g.pn + c) * 2) as u64,
                F16::from_f32(g.weight.data()[r * g.n + c]).to_bits(),
            );
        }
    }
    pb
}

/// Packs the C operand: a length-`pn` f32 bias vector when the epilogue
/// carries one, else an (implicitly zero) `pm × pn` accumulator input.
fn pack_c(gpu: &mut Gpu, g: &GemmOp) -> u64 {
    match &g.bias {
        Some(bias) => {
            let pc = gpu.alloc((g.pn * 4) as u64);
            for (i, &v) in bias.data().iter().enumerate() {
                gpu.write_u32(pc + (i * 4) as u64, v.to_bits());
            }
            pc
        }
        None => gpu.alloc((g.pm * g.pn * 4) as u64),
    }
}

/// Reads the padded `pm × pn` D matrix back, cropping the padding and
/// transposing implicit-GEMM output (`[pixel][filter]`) to `[c, h, w]`.
fn read_gemm(gpu: &Gpu, g: &GemmOp, pd: u64, shape: &[usize]) -> Tensor {
    let at =
        |row: usize, col: usize| f32::from_bits(gpu.read_u32(pd + ((row * g.pn + col) * 4) as u64));
    match &g.source {
        GemmSource::Conv { oh, ow, .. } => Tensor::from_fn(shape.to_vec(), |i| {
            let (f, rest) = (i / (oh * ow), i % (oh * ow));
            at(rest, f)
        }),
        GemmSource::Linear => Tensor::from_fn(shape.to_vec(), |i| at(i / g.n, i % g.n)),
    }
}

/// Uploads, builds and describes one lowered launch. Returns the launch
/// builder (without tracer), the output pointer, and the dims string.
fn prepare_launch(
    gpu: &mut Gpu,
    op: &LoweredOp,
    act: &Tensor,
) -> (LaunchBuilder, u64, String, String) {
    match op {
        LoweredOp::Gemm(g) => {
            let pa = pack_a(gpu, g, act);
            let pb = pack_b(gpu, g);
            let pc = pack_c(gpu, g);
            let pd = gpu.alloc((g.pm * g.pn * 4) as u64);
            let kernel = g.tile.kernel(g.epilogue);
            let kname = kernel.name().to_string();
            let dims = format!(
                "gemm {}x{}x{} pad {}x{}x{} ",
                g.m, g.n, g.k, g.pm, g.pn, g.pk
            );
            let b = LaunchBuilder::new(kernel)
                .grid(g.tile.grid(g.pm, g.pn))
                .block(g.tile.block())
                .param_u64(pa)
                .param_u64(pb)
                .param_u64(pc)
                .param_u64(pd)
                .param_u32(g.pn as u32)
                .param_u32(g.pk as u32);
            (b, pd, kname, dims + g.tile.name())
        }
        LoweredOp::MaxPool(p) => {
            let (c, h, w) = (act.shape()[0], act.shape()[1], act.shape()[2]);
            let pin = upload_f32(gpu, act.data());
            let pout = gpu.alloc((c * (h / p.k) * (w / p.k) * 4) as u64);
            let kernel = maxpool_kernel(c, h, w, p.k);
            let kname = kernel.name().to_string();
            let b = LaunchBuilder::new(kernel)
                .grid(maxpool_grid(c, h, w, p.k))
                .block(BLOCK)
                .param_u64(pin)
                .param_u64(pout);
            (b, pout, kname, format!("pool {c}x{h}x{w} k{}", p.k))
        }
        LoweredOp::Relu => {
            let pin = upload_f32(gpu, act.data());
            let pout = gpu.alloc((act.len() * 4) as u64);
            let kernel = relu_kernel(act.len());
            let kname = kernel.name().to_string();
            let b = LaunchBuilder::new(kernel)
                .grid(relu_grid(act.len()))
                .block(BLOCK)
                .param_u64(pin)
                .param_u64(pout);
            (b, pout, kname, format!("relu {}", act.len()))
        }
        LoweredOp::Bias(bias) => {
            let (rows, cols, per_row) = match act.shape() {
                [c, h, w] => (*c, h * w, true),
                [b, f] => (*b, *f, false),
                other => panic!("bias on rank-{} activation", other.len()),
            };
            let pin = upload_f32(gpu, act.data());
            let pbias = upload_f32(gpu, bias.data());
            let pout = gpu.alloc((act.len() * 4) as u64);
            let kernel = bias_kernel(rows, cols, per_row);
            let kname = kernel.name().to_string();
            let b = LaunchBuilder::new(kernel)
                .grid(bias_grid(rows, cols))
                .block(BLOCK)
                .param_u64(pin)
                .param_u64(pbias)
                .param_u64(pout);
            (b, pout, kname, format!("bias {rows}x{cols}"))
        }
        LoweredOp::Softmax { cols, scale } => {
            let rows = act.shape()[0];
            let pin = upload_f32(gpu, act.data());
            let pout = gpu.alloc((act.len() * 4) as u64);
            let kernel = softmax_kernel(*cols, *scale);
            let kname = kernel.name().to_string();
            let b = LaunchBuilder::new(kernel)
                .grid(rowred_grid(rows))
                .block(BLOCK)
                .param_u64(pin)
                .param_u64(pout);
            (b, pout, kname, format!("softmax {rows}x{cols}"))
        }
        LoweredOp::LayerNorm(ln) => {
            let rows = act.shape()[0];
            let pin = upload_f32(gpu, act.data());
            let pgamma = upload_f32(gpu, ln.gamma.data());
            let pbeta = upload_f32(gpu, ln.beta.data());
            let pout = gpu.alloc((act.len() * 4) as u64);
            let kernel = layernorm_kernel(ln.dim, ln.eps);
            let kname = kernel.name().to_string();
            let b = LaunchBuilder::new(kernel)
                .grid(rowred_grid(rows))
                .block(BLOCK)
                .param_u64(pin)
                .param_u64(pgamma)
                .param_u64(pbeta)
                .param_u64(pout);
            (b, pout, kname, format!("layernorm {rows}x{}", ln.dim))
        }
        LoweredOp::Gelu => {
            let pin = upload_f32(gpu, act.data());
            let pout = gpu.alloc((act.len() * 4) as u64);
            let kernel = gelu_kernel(act.len());
            let kname = kernel.name().to_string();
            let b = LaunchBuilder::new(kernel)
                .grid(elems_grid(act.len()))
                .block(BLOCK)
                .param_u64(pin)
                .param_u64(pout);
            (b, pout, kname, format!("gelu {}", act.len()))
        }
        LoweredOp::Reshape => unreachable!("reshape never launches"),
        LoweredOp::Attention(_) | LoweredOp::Mlp(_) => {
            unreachable!("composite ops execute through crate::block")
        }
    }
}

/// Reads a lowered launch's output back into a host tensor.
fn read_output(gpu: &Gpu, op: &LoweredOp, pout: u64, shape: &[usize]) -> Tensor {
    match op {
        LoweredOp::Gemm(g) => read_gemm(gpu, g, pout, shape),
        LoweredOp::Reshape => unreachable!("reshape never launches"),
        _ => {
            let n: usize = shape.iter().product();
            Tensor::new(
                shape.to_vec(),
                (0..n)
                    .map(|i| f32::from_bits(gpu.read_u32(pout + (i * 4) as u64)))
                    .collect(),
            )
        }
    }
}

fn tolerance_of(op: &LoweredOp) -> f32 {
    match op {
        LoweredOp::Gemm(g) => gemm_tolerance(g.k),
        LoweredOp::Softmax { cols, .. } => softmax_tolerance(*cols),
        LoweredOp::LayerNorm(ln) => layernorm_tolerance(ln.dim),
        _ => 0.0,
    }
}

/// Runs a composite lowered op (attention / MLP) through its staged
/// executor, returning the per-stage reports and the final activation.
fn run_composite(
    exec: &mut ExecMode,
    ll: &LoweredLayer,
    act: &Tensor,
) -> (Vec<LayerReport>, Tensor) {
    match &ll.op {
        LoweredOp::Attention(a) => exec_attention(exec, &ll.name, a, act),
        LoweredOp::Mlp(m) => exec_mlp(exec, &ll.name, m, act),
        other => unreachable!("not a composite op: {other:?}"),
    }
}

fn is_composite(op: &LoweredOp) -> bool {
    matches!(op, LoweredOp::Attention(_) | LoweredOp::Mlp(_))
}

fn host_report(ll: &LoweredLayer, act: &Tensor) -> LayerReport {
    LayerReport {
        name: ll.name.clone(),
        kernel: "host".into(),
        dims: format!("reshape {} elems", act.len()),
        cycles: 0,
        instructions: 0,
        hmma_occupancy: None,
        max_err: 0.0,
        tolerance: 0.0,
    }
}

fn report_from_stats(
    ll: &LoweredLayer,
    kname: String,
    dims: String,
    stats: &LaunchStats,
    max_err: f32,
) -> LayerReport {
    LayerReport {
        name: ll.name.clone(),
        kernel: kname,
        dims,
        cycles: stats.cycles,
        instructions: stats.instructions,
        hmma_occupancy: stats.trace.as_ref().map(|t| t.hmma_occupancy()),
        max_err,
        tolerance: tolerance_of(&ll.op),
    }
}

/// Runs the network as a real inference would: one GPU, launches in
/// dependency order, device activations flowing layer to layer.
pub fn run_chained(graph: &Graph, input: &Tensor, cfg: GpuConfig, trace: bool) -> InferenceReport {
    let plan = lower(graph);
    let mut session = Session::new(Gpu::new(cfg.clone())).with_tracing(trace);
    let mut act = input.clone();
    let mut layers = Vec::with_capacity(plan.len());
    for ll in &plan {
        if !ll.op.is_launch() {
            act = act.reshape(ll.output_shape.clone());
            layers.push(host_report(ll, &act));
            continue;
        }
        if is_composite(&ll.op) {
            // Composite ops check each stage internally (against
            // references computed from the device-produced stage inputs)
            // and run on a private fresh GPU so their launch-address
            // sequence — and thus the address-hashed partition mapping —
            // matches parallel mode exactly (see `crate::block`).
            let mut gpu = Gpu::new(cfg.clone());
            let mut exec = ExecMode::new(&mut gpu, trace);
            let (reports, out) = run_composite(&mut exec, ll, &act);
            layers.extend(reports);
            act = out;
            continue;
        }
        let expected = reference_span(graph, &ll.span, &act);
        let (builder, pout, kname, dims) = prepare_launch(session.gpu(), &ll.op, &act);
        let stats = session.run(&ll.name, builder).stats.clone();
        let out = read_output(session.gpu(), &ll.op, pout, &ll.output_shape);
        let max_err = out.max_abs_diff(&expected);
        layers.push(report_from_stats(ll, kname, dims, &stats, max_err));
        act = out;
    }
    InferenceReport {
        network: graph.name.clone(),
        mode: "chained".into(),
        layers,
        output: act.data().to_vec(),
    }
}

/// Runs every launch as an independent sweep job (per-layer parallelism):
/// layer inputs come from the host reference, so the jobs share nothing.
/// `threads = 1` runs serially; per-layer cycle counts match
/// [`run_chained`] either way.
pub fn run_parallel(
    graph: &Graph,
    input: &Tensor,
    cfg: GpuConfig,
    trace: bool,
    threads: usize,
) -> InferenceReport {
    let plan = lower(graph);
    // Pre-compute each step's input (and oracle output) on the host.
    let mut acts = vec![input.clone()];
    for ll in &plan {
        let next = reference_span(graph, &ll.span, acts.last().unwrap());
        acts.push(next);
    }

    let mut sweep: Sweep<Vec<LayerReport>> = Sweep::new();
    for (i, ll) in plan.iter().enumerate() {
        if !ll.op.is_launch() {
            continue;
        }
        let weight = match &ll.op {
            LoweredOp::Gemm(g) => (g.pm * g.pn * g.pk) as u64,
            LoweredOp::Attention(a) => (acts[i].len() * a.d_model * 6) as u64,
            LoweredOp::Mlp(m) => (acts[i].len() * m.d_ff * 2) as u64,
            _ => acts[i].len() as u64,
        };
        let (ll, act, expected) = (ll.clone(), acts[i].clone(), acts[i + 1].clone());
        sweep.add_weighted(cfg.clone(), weight, move |gpu| {
            if is_composite(&ll.op) {
                let mut exec = ExecMode::new(gpu, trace);
                return run_composite(&mut exec, &ll, &act).0;
            }
            let (mut builder, pout, kname, dims) = prepare_launch(gpu, &ll.op, &act);
            if trace {
                builder = builder.tracer(RingTracer::new());
            }
            let stats = builder.launch(gpu);
            let out = read_output(gpu, &ll.op, pout, &ll.output_shape);
            vec![report_from_stats(
                &ll,
                kname,
                dims,
                &stats,
                out.max_abs_diff(&expected),
            )]
        });
    }
    let outcome = if threads <= 1 {
        sweep.run_serial()
    } else {
        sweep.run_parallel(threads)
    };

    // Re-interleave host-only steps with the sweep results (which come
    // back in submission order).
    let mut results = outcome.results.into_iter();
    let mut layers = Vec::with_capacity(plan.len());
    for (i, ll) in plan.iter().enumerate() {
        if ll.op.is_launch() {
            layers.extend(results.next().expect("one result per launch"));
        } else {
            layers.push(host_report(ll, &acts[i + 1]));
        }
    }
    InferenceReport {
        network: graph.name.clone(),
        mode: "parallel".into(),
        layers,
        output: acts.last().unwrap().data().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::models;

    fn tiny_net() -> (Graph, Tensor) {
        let g = models::tiny(7);
        let input = models::input_for(&g, 7);
        (g, input)
    }

    #[test]
    fn chained_runs_tiny_net_within_tolerance() {
        let (g, x) = tiny_net();
        let report = run_chained(&g, &x, GpuConfig::mini(), true);
        report.assert_within_tolerance();
        assert!(report.total_cycles() > 0);
        // Every GEMM layer got a trace window with HMMA samples.
        for l in report
            .layers
            .iter()
            .filter(|l| l.kernel.contains("wmma") || l.kernel.contains("cutlass"))
        {
            assert!(l.hmma_occupancy.is_some(), "{} untraced", l.name);
        }
        tcsim_trace::validate_json(&report.to_json()).expect("valid JSON");
    }

    #[test]
    fn parallel_matches_chained_cycles() {
        let (g, x) = tiny_net();
        let chained = run_chained(&g, &x, GpuConfig::mini(), false);
        let parallel = run_parallel(&g, &x, GpuConfig::mini(), false, 2);
        parallel.assert_within_tolerance();
        assert_eq!(chained.layers.len(), parallel.layers.len());
        for (c, p) in chained.layers.iter().zip(&parallel.layers) {
            assert_eq!(c.cycles, p.cycles, "layer {} cycle mismatch", c.name);
            assert_eq!(c.instructions, p.instructions, "layer {}", c.name);
        }
    }

    #[test]
    fn chained_is_deterministic() {
        let (g, x) = tiny_net();
        let a = run_chained(&g, &x, GpuConfig::mini(), true);
        let b = run_chained(&g, &x, GpuConfig::mini(), true);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn standalone_elementwise_layers_run_on_device() {
        // A graph that defeats fusion: pool between conv and bias.
        let w = Tensor::from_fn(vec![4, 4], |i| (i as f32 - 8.0) / 8.0);
        let g = GraphBuilder::new("nofuse", vec![1, 5, 5])
            .conv2d(1, 4, 2, w)
            .maxpool(2)
            .bias(Tensor::from_fn(vec![4], |i| i as f32 / 4.0))
            .relu()
            .build();
        let x = Tensor::from_fn(vec![1, 5, 5], |i| ((i % 7) as f32 - 3.0) / 4.0);
        let report = run_chained(&g, &x, GpuConfig::mini(), false);
        report.assert_within_tolerance();
        let kernels: Vec<&str> = report.layers.iter().map(|l| l.kernel.as_str()).collect();
        assert!(kernels[1].starts_with("nn_maxpool"));
        assert!(kernels[2].starts_with("nn_bias"));
        assert!(kernels[3].starts_with("nn_relu"));
    }
}
