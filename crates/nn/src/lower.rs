//! Lowering pass: layer graph → device launch plan.
//!
//! Each GEMM-backed layer ([`Layer::Conv2d`] via implicit GEMM / im2col,
//! [`Layer::Linear`] as a batched GEMM) greedily fuses a directly
//! following [`Layer::Bias`] and [`Layer::ReLU`] into the kernel's
//! [`Epilogue`], so a `conv → bias → relu` triple becomes ONE launch.
//! Standalone bias/ReLU/max-pool layers lower to dedicated elementwise
//! kernels ([`crate::kernels`]); [`Layer::Flatten`] is a host-side
//! reshape and costs nothing on the device.
//!
//! GEMM dimensions are padded up to multiples of 16 (the WMMA tile edge);
//! the padding is zero-filled so it cannot perturb results, and the
//! executor crops it back off after readback.

use crate::graph::Graph;
use crate::layer::{Attention, Conv2d, Layer, LayerNorm, Linear, MaxPool, Mlp};
use crate::tensor::Tensor;
use tcsim_cutlass::{
    cutlass_gemm_ep, wmma_shared_gemm_ep, wmma_simple_gemm_ep, CutlassConfig, Epilogue,
};
use tcsim_isa::Kernel;
use tcsim_model::{gemm_roofline, TilePlan};
use tcsim_sim::GpuConfig;

/// Rounds a GEMM dimension up to the WMMA tile edge.
pub fn pad16(x: usize) -> usize {
    x.div_ceil(16) * 16
}

/// Absolute tolerance for a device GEMM of reduction depth `k` against
/// the f32 reference: FEDP rounding grows with the number of partial-sum
/// merges (same bound `tcsim-cutlass` uses for its own verification).
pub fn gemm_tolerance(k: usize) -> f32 {
    1e-3 + k as f32 * 1e-4
}

/// Absolute tolerance for the device softmax against the textbook f32
/// reference. Both sides compute `exp2((x·scale − max)·log2e) / Σ`; the
/// device reduces max and Σ with a `shfl.bfly` butterfly while the
/// reference sums sequentially, so partial sums round in a different
/// order. Outputs lie in `[0, 1]` and a reordered n-term f32 sum drifts
/// by at most ~n·ε relative (ε = 2⁻²⁴ ≈ 6e−8), plus one `frcp`-vs-divide
/// ulp — comfortably inside `1e−6 + n·2.4e−7` with ~4× margin.
pub fn softmax_tolerance(cols: usize) -> f32 {
    1e-6 + cols as f32 * 2.4e-7
}

/// Absolute tolerance for the device layernorm against the textbook f32
/// reference. Error sources: butterfly-vs-sequential reduction order in
/// the two moments (~n·ε relative, amplified by `|x − μ| · rsqrt`), and
/// the device's `fex2(−½·flg2(v))` rsqrt vs the host's `1/sqrt(v)` (a
/// couple of ulp of a value near 1 after gamma scaling). For activations
/// of magnitude O(1) the bound `1e−5 + n·1e−6` holds with an order of
/// magnitude to spare; rows with near-zero variance are excluded by the
/// `eps` floor.
pub fn layernorm_tolerance(cols: usize) -> f32 {
    1e-5 + cols as f32 * 1e-6
}

/// Which WMMA GEMM kernel family a lowered GEMM dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tile {
    /// One 16×16 tile per warp, global loads only.
    Simple,
    /// 32×32 CTA tiles staged through shared memory.
    Shared,
    /// CUTLASS-style 64×64 CTA tiles, double-buffered.
    Cutlass,
}

impl Tile {
    /// Picks the largest tile that divides the padded problem.
    pub fn select(pm: usize, pn: usize) -> Tile {
        if pm.is_multiple_of(64) && pn.is_multiple_of(64) {
            Tile::Cutlass
        } else if pm.is_multiple_of(32) && pn.is_multiple_of(32) {
            Tile::Shared
        } else {
            Tile::Simple
        }
    }

    /// Candidate tiles whose edge divides the padded problem, largest
    /// first — the heuristic's preference order, which also breaks
    /// roofline ties in [`Tile::select_modeled`].
    pub fn candidates(pm: usize, pn: usize) -> Vec<Tile> {
        [Tile::Cutlass, Tile::Shared, Tile::Simple]
            .into_iter()
            .filter(|t| pm.is_multiple_of(t.edge()) && pn.is_multiple_of(t.edge()))
            .collect()
    }

    /// The resource shape `tcsim-model`'s closed-form GEMM roofline
    /// scores for this tile family. CTA dimensions come from the tile
    /// edge; register and shared-memory budgets are read off the real
    /// kernel rather than hand-entered.
    pub fn plan(&self) -> TilePlan {
        let k = self.kernel(Epilogue::None);
        let e = self.edge() as u64;
        TilePlan {
            cta_m: e,
            cta_n: e,
            threads: self.block() as u64,
            shared_bytes: k.shared_bytes() as u64,
            regs_per_thread: k.num_regs() as u64,
            staged: !matches!(self, Tile::Simple),
        }
    }

    /// Picks the candidate the analytical roofline ranks fastest for the
    /// padded `pm×pn×pk` problem on `gpu`. Ties go to the largest tile
    /// (the [`Tile::select`] heuristic's choice).
    pub fn select_modeled(pm: usize, pn: usize, pk: usize, gpu: &GpuConfig) -> Tile {
        Tile::candidates(pm, pn)
            .into_iter()
            .min_by_key(|t| gemm_roofline(pm as u64, pn as u64, pk as u64, &t.plan(), gpu).cycles)
            .expect("the 16-element tile always divides a padded problem")
    }

    /// Kernel-family name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Tile::Simple => "wmma_simple",
            Tile::Shared => "wmma_shared",
            Tile::Cutlass => "cutlass_64x64",
        }
    }

    /// Builds the FP32-accumulate kernel with the fused epilogue.
    pub fn kernel(&self, ep: Epilogue) -> Kernel {
        match self {
            Tile::Simple => wmma_simple_gemm_ep(false, ep),
            Tile::Shared => wmma_shared_gemm_ep(false, ep),
            Tile::Cutlass => cutlass_gemm_ep(CutlassConfig::default_64x64(), ep),
        }
    }

    /// Grid dimensions for a padded `pm × pn` problem.
    pub fn grid(&self, pm: usize, pn: usize) -> (u32, u32) {
        let t = self.edge();
        ((pn / t) as u32, (pm / t) as u32)
    }

    /// CTA size in threads.
    pub fn block(&self) -> u32 {
        match self {
            Tile::Simple => 32,
            Tile::Shared => 128,
            Tile::Cutlass => CutlassConfig::default_64x64().threads() as u32,
        }
    }

    fn edge(&self) -> usize {
        match self {
            Tile::Simple => 16,
            Tile::Shared => 32,
            Tile::Cutlass => 64,
        }
    }
}

/// How the A operand of a lowered GEMM is produced from the input
/// activation.
#[derive(Clone, Debug)]
pub enum GemmSource {
    /// Implicit-GEMM convolution: A rows are im2col patches of a
    /// `[in_c, h, w]` activation; the GEMM output is `[pixel][filter]`
    /// and gets transposed back to `[out_c, oh, ow]` on readback.
    Conv {
        /// Input channels.
        in_c: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Input activation height.
        h: usize,
        /// Input activation width.
        w: usize,
        /// Output height (`h - kh + 1`).
        oh: usize,
        /// Output width (`w - kw + 1`).
        ow: usize,
    },
    /// Fully connected: A is the `[batch, in_f]` activation verbatim.
    Linear,
}

/// One GEMM launch: `D[m×n] = A[m×k] × B[k×n]` plus fused epilogue.
#[derive(Clone, Debug)]
pub struct GemmOp {
    /// How A is packed from the activation.
    pub source: GemmSource,
    /// Logical rows (output pixels / batch).
    pub m: usize,
    /// Logical columns (filters / output features).
    pub n: usize,
    /// Logical reduction depth.
    pub k: usize,
    /// Padded dimensions (multiples of 16).
    pub pm: usize,
    /// Padded columns.
    pub pn: usize,
    /// Padded reduction depth.
    pub pk: usize,
    /// Kernel family the problem dispatches to.
    pub tile: Tile,
    /// Fused epilogue.
    pub epilogue: Epilogue,
    /// B operand in logical `[k, n]` layout (conv weights are transposed
    /// into this layout here, at lowering time).
    pub weight: Tensor,
    /// Length-`n` bias vector when the epilogue carries one.
    pub bias: Option<Tensor>,
}

/// One step of the lowered plan.
#[derive(Clone, Debug)]
pub enum LoweredOp {
    /// A WMMA GEMM launch (conv or linear, with fused epilogue).
    Gemm(GemmOp),
    /// Dedicated max-pool kernel launch.
    MaxPool(MaxPool),
    /// Dedicated elementwise ReLU kernel launch.
    Relu,
    /// Dedicated broadcast-bias kernel launch.
    Bias(Tensor),
    /// Host-only reshape: no device work.
    Reshape,
    /// Warp-per-row softmax launch over `rows × cols` (scale baked in).
    Softmax {
        /// Row width.
        cols: usize,
        /// Pre-softmax multiplier (1 for a standalone layer).
        scale: f32,
    },
    /// Warp-per-row layer-normalization launch.
    LayerNorm(LayerNorm),
    /// Elementwise tanh-GELU launch.
    Gelu,
    /// Composite multi-head attention: a staged sequence of GEMM,
    /// softmax and (optionally) residual-add launches executed by the
    /// crate-private `block` module.
    Attention(Attention),
    /// Composite feed-forward block: two bias-fused GEMMs around a GELU,
    /// plus an optional residual add.
    Mlp(Mlp),
}

impl LoweredOp {
    /// Whether this op launches a kernel (everything but [`LoweredOp::Reshape`]).
    pub fn is_launch(&self) -> bool {
        !matches!(self, LoweredOp::Reshape)
    }
}

/// One lowered step with provenance back into the graph.
#[derive(Clone, Debug)]
pub struct LoweredLayer {
    /// Display name: the fused graph-layer names joined with `+`
    /// (e.g. `conv2d0+bias1+relu2`).
    pub name: String,
    /// The device work.
    pub op: LoweredOp,
    /// Half-open range of graph-layer indices this step covers.
    pub span: std::ops::Range<usize>,
    /// Activation shape after this step.
    pub output_shape: Vec<usize>,
}

fn epilogue_for(bias: bool, relu: bool) -> Epilogue {
    match (bias, relu) {
        (false, false) => Epilogue::None,
        (true, false) => Epilogue::Bias,
        (false, true) => Epilogue::Relu,
        (true, true) => Epilogue::BiasRelu,
    }
}

/// Transposes a conv filter bank `[out_c, k]` into GEMM-B `[k, out_c]`.
fn conv_weight_to_b(c: &Conv2d) -> Tensor {
    let k = c.in_c * c.kh * c.kw;
    Tensor::from_fn(vec![k, c.out_c], |i| {
        let (row, f) = (i / c.out_c, i % c.out_c);
        c.weight.data()[f * k + row]
    })
}

/// Fuses a following `Bias` (then `ReLU`) into the GEMM at `layers[i]`,
/// returning `(epilogue, bias, fused_names, next_index)`.
fn fuse_epilogue(
    layers: &[(String, Layer)],
    i: usize,
) -> (Epilogue, Option<Tensor>, Vec<String>, usize) {
    let mut names = vec![layers[i].0.clone()];
    let mut j = i + 1;
    let mut bias = None;
    if let Some((bname, Layer::Bias(b))) = layers.get(j).map(|(n, l)| (n, l)) {
        bias = Some(b.bias.clone());
        names.push(bname.clone());
        j += 1;
    }
    let mut relu = false;
    if let Some((rname, Layer::ReLU)) = layers.get(j).map(|(n, l)| (n, l)) {
        relu = true;
        names.push(rname.clone());
        j += 1;
    }
    (epilogue_for(bias.is_some(), relu), bias, names, j)
}

/// Lowers a validated graph into an ordered launch plan using the
/// largest-divisor tile heuristic ([`Tile::select`]).
pub fn lower(graph: &Graph) -> Vec<LoweredLayer> {
    lower_with(graph, &|pm, pn, _pk| Tile::select(pm, pn))
}

/// Lowers a validated graph picking each GEMM's tile with the
/// analytical performance model ([`Tile::select_modeled`]) instead of
/// the largest-divisor heuristic.
pub fn lower_modeled(graph: &Graph, gpu: &GpuConfig) -> Vec<LoweredLayer> {
    lower_with(graph, &|pm, pn, pk| Tile::select_modeled(pm, pn, pk, gpu))
}

/// Lowering with a pluggable `(pm, pn, pk) → Tile` chooser.
fn lower_with(graph: &Graph, select: &dyn Fn(usize, usize, usize) -> Tile) -> Vec<LoweredLayer> {
    let layers = graph.layers();
    let mut plan = Vec::new();
    let mut i = 0;
    while i < layers.len() {
        let (name, layer) = &layers[i];
        let (op, names, next) = match layer {
            Layer::Conv2d(c) => {
                let input = if i == 0 {
                    &graph.input_shape
                } else {
                    graph.output_shape(i - 1)
                };
                let (h, w) = (input[1], input[2]);
                let (oh, ow) = (h - c.kh + 1, w - c.kw + 1);
                let (m, n, k) = (oh * ow, c.out_c, c.in_c * c.kh * c.kw);
                let (ep, bias, names, next) = fuse_epilogue(layers, i);
                let (pm, pn) = (pad16(m), pad16(n));
                let op = LoweredOp::Gemm(GemmOp {
                    source: GemmSource::Conv {
                        in_c: c.in_c,
                        kh: c.kh,
                        kw: c.kw,
                        h,
                        w,
                        oh,
                        ow,
                    },
                    m,
                    n,
                    k,
                    pm,
                    pn,
                    pk: pad16(k),
                    tile: select(pm, pn, pad16(k)),
                    epilogue: ep,
                    weight: conv_weight_to_b(c),
                    bias,
                });
                (op, names, next)
            }
            Layer::Linear(Linear {
                in_f,
                out_f,
                weight,
            }) => {
                let batch = if i == 0 {
                    graph.input_shape[0]
                } else {
                    graph.output_shape(i - 1)[0]
                };
                let (m, n, k) = (batch, *out_f, *in_f);
                let (ep, bias, names, next) = fuse_epilogue(layers, i);
                let (pm, pn) = (pad16(m), pad16(n));
                let op = LoweredOp::Gemm(GemmOp {
                    source: GemmSource::Linear,
                    m,
                    n,
                    k,
                    pm,
                    pn,
                    pk: pad16(k),
                    tile: select(pm, pn, pad16(k)),
                    epilogue: ep,
                    weight: weight.clone(),
                    bias,
                });
                (op, names, next)
            }
            Layer::Bias(b) => (LoweredOp::Bias(b.bias.clone()), vec![name.clone()], i + 1),
            Layer::ReLU => (LoweredOp::Relu, vec![name.clone()], i + 1),
            Layer::MaxPool(p) => (LoweredOp::MaxPool(*p), vec![name.clone()], i + 1),
            Layer::Flatten => (LoweredOp::Reshape, vec![name.clone()], i + 1),
            Layer::Softmax => {
                let cols = graph.output_shape(i)[1];
                (
                    LoweredOp::Softmax { cols, scale: 1.0 },
                    vec![name.clone()],
                    i + 1,
                )
            }
            Layer::LayerNorm(ln) => (LoweredOp::LayerNorm(ln.clone()), vec![name.clone()], i + 1),
            Layer::Gelu => (LoweredOp::Gelu, vec![name.clone()], i + 1),
            Layer::Attention(a) => (LoweredOp::Attention(a.clone()), vec![name.clone()], i + 1),
            Layer::Mlp(m) => (LoweredOp::Mlp(m.clone()), vec![name.clone()], i + 1),
        };
        plan.push(LoweredLayer {
            name: names.join("+"),
            op,
            span: i..next,
            output_shape: graph.output_shape(next - 1).to_vec(),
        });
        i = next;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn toy() -> Graph {
        GraphBuilder::new("toy", vec![1, 16, 16])
            .conv2d(1, 8, 3, Tensor::zeros(vec![8, 9]))
            .bias(Tensor::zeros(vec![8]))
            .relu()
            .maxpool(2)
            .flatten()
            .linear(8 * 7 * 7, 10, Tensor::zeros(vec![392, 10]))
            .bias(Tensor::zeros(vec![10]))
            .build()
    }

    #[test]
    fn conv_bias_relu_fuses_into_one_gemm() {
        let plan = lower(&toy());
        let names: Vec<&str> = plan.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "conv2d0+bias1+relu2",
                "maxpool3",
                "flatten4",
                "linear5+bias6"
            ]
        );
        let LoweredOp::Gemm(g) = &plan[0].op else {
            panic!("expected gemm")
        };
        assert_eq!((g.m, g.n, g.k), (196, 8, 9));
        assert_eq!((g.pm, g.pn, g.pk), (208, 16, 16));
        assert_eq!(g.epilogue, Epilogue::BiasRelu);
        assert_eq!(g.tile, Tile::Simple);
        assert_eq!(plan[0].span, 0..3);
        assert_eq!(plan[0].output_shape, vec![8, 14, 14]);
        let LoweredOp::Gemm(l) = &plan[3].op else {
            panic!("expected gemm")
        };
        assert_eq!(l.epilogue, Epilogue::Bias);
        assert_eq!((l.m, l.n, l.k), (1, 10, 392));
    }

    #[test]
    fn tile_selection_prefers_the_largest_divisor() {
        assert_eq!(Tile::select(64, 128), Tile::Cutlass);
        assert_eq!(Tile::select(32, 64), Tile::Shared);
        assert_eq!(Tile::select(208, 16), Tile::Simple);
        assert_eq!(Tile::Cutlass.grid(64, 128), (2, 1));
        assert_eq!(Tile::Cutlass.block(), 128);
    }

    #[test]
    fn conv_weight_transposes_to_b_layout() {
        // 2 filters over k=3: weight[f][k], B[k][f].
        let c = Conv2d {
            in_c: 3,
            out_c: 2,
            kh: 1,
            kw: 1,
            weight: Tensor::new(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        };
        let b = conv_weight_to_b(&c);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn reshape_is_not_a_launch() {
        let plan = lower(&toy());
        assert!(!plan[2].op.is_launch());
        assert!(plan[0].op.is_launch());
    }
}
