//! Elementwise device kernels for layers that don't lower to GEMM:
//! max-pool, standalone ReLU and standalone bias.
//!
//! Shapes are folded into the generated kernels as immediates (one kernel
//! per layer instance — the same specialization style real frameworks get
//! from template instantiation), so the only runtime parameters are the
//! buffer pointers. Out-of-range lanes are clamped onto the last valid
//! element with `imin` instead of branched around: the duplicate work is
//! idempotent (same value stored to the same address), which keeps the
//! kernels divergence-free.

use tcsim_isa::{
    CmpOp, DataType, Kernel, KernelBuilder, MemWidth, Operand, Reg, SpecialReg,
};

/// Threads per CTA for all elementwise kernels.
pub const BLOCK: u32 = 32;

/// Emits `dst = max(dst, v)` on f32 via compare-and-select.
fn emit_fmax(b: &mut KernelBuilder, dst: Reg, v: Reg) {
    let p = b.pred();
    b.setp(p, CmpOp::Gt, DataType::F32, v, Operand::Reg(dst));
    b.selp(dst, p, Operand::Reg(v), Operand::Reg(dst));
}

/// `out[ch][oy][ox] = max over a k×k window of in[ch]` for a `[c, h, w]`
/// f32 activation. Grid `(⌈ow/32⌉, oh, c)`, block [`BLOCK`].
pub fn maxpool_kernel(c: usize, h: usize, w: usize, k: usize) -> Kernel {
    let (oh, ow) = (h / k, w / k);
    assert!(oh > 0 && ow > 0, "pool window exceeds input");
    let mut b = KernelBuilder::new(format!("nn_maxpool_c{c}_{h}x{w}_k{k}"));
    let p_in = b.param_u64("in");
    let p_out = b.param_u64("out");
    let base_in = b.reg_pair();
    b.ld_param(MemWidth::B64, base_in, p_in);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let cta_x = b.reg();
    b.mov(cta_x, Operand::Special(SpecialReg::CtaIdX));
    let ox = b.reg();
    b.imad(ox, cta_x, Operand::Imm(i64::from(BLOCK)), Operand::Reg(tid));
    b.imin(ox, ox, Operand::Imm(ow as i64 - 1));
    let oy = b.reg();
    b.mov(oy, Operand::Special(SpecialReg::CtaIdY));
    let ch = b.reg();
    b.mov(ch, Operand::Special(SpecialReg::CtaIdZ));

    // Window origin: ((ch·h + oy·k)·w + ox·k) elements into the input.
    let idx = b.reg();
    b.imad(idx, ch, Operand::Imm(h as i64), Operand::Imm(0));
    b.imad(idx, oy, Operand::Imm(k as i64), Operand::Reg(idx));
    b.imad(idx, idx, Operand::Imm(w as i64), Operand::Imm(0));
    b.imad(idx, ox, Operand::Imm(k as i64), Operand::Reg(idx));
    let addr = b.reg_pair();
    b.imad_wide(addr, idx, Operand::Imm(4), base_in);

    let m = b.reg();
    b.ld_global(MemWidth::B32, m, addr, 0);
    let v = b.reg();
    for dy in 0..k {
        for dx in 0..k {
            if dy == 0 && dx == 0 {
                continue;
            }
            b.ld_global(MemWidth::B32, v, addr, ((dy * w + dx) * 4) as i64);
            emit_fmax(&mut b, m, v);
        }
    }

    let oidx = b.reg();
    b.imad(oidx, ch, Operand::Imm(oh as i64), Operand::Reg(oy));
    b.imad(oidx, oidx, Operand::Imm(ow as i64), Operand::Reg(ox));
    let oaddr = b.reg_pair();
    b.imad_wide(oaddr, oidx, Operand::Imm(4), base_out);
    b.st_global(MemWidth::B32, oaddr, 0, m);
    b.exit();
    b.build()
}

/// Grid for [`maxpool_kernel`] over a `[c, h, w]` input.
pub fn maxpool_grid(c: usize, h: usize, w: usize, k: usize) -> (u32, u32, u32) {
    (((w / k).div_ceil(BLOCK as usize)) as u32, (h / k) as u32, c as u32)
}

/// `out[i] = max(in[i], 0)` over a flat f32 buffer of `len` elements.
/// Grid `⌈len/32⌉`, block [`BLOCK`].
pub fn relu_kernel(len: usize) -> Kernel {
    assert!(len > 0, "empty relu");
    let mut b = KernelBuilder::new(format!("nn_relu_{len}"));
    let p_in = b.param_u64("in");
    let p_out = b.param_u64("out");
    let base_in = b.reg_pair();
    b.ld_param(MemWidth::B64, base_in, p_in);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let gid = b.reg();
    b.imad(gid, cta, Operand::Imm(i64::from(BLOCK)), Operand::Reg(tid));
    b.imin(gid, gid, Operand::Imm(len as i64 - 1));

    let addr = b.reg_pair();
    b.imad_wide(addr, gid, Operand::Imm(4), base_in);
    let v = b.reg();
    b.ld_global(MemWidth::B32, v, addr, 0);
    let p = b.pred();
    b.setp(p, CmpOp::Gt, DataType::F32, v, Operand::fimm(0.0));
    b.selp(v, p, Operand::Reg(v), Operand::fimm(0.0));
    let oaddr = b.reg_pair();
    b.imad_wide(oaddr, gid, Operand::Imm(4), base_out);
    b.st_global(MemWidth::B32, oaddr, 0, v);
    b.exit();
    b.build()
}

/// Grid for [`relu_kernel`].
pub fn relu_grid(len: usize) -> u32 {
    len.div_ceil(BLOCK as usize) as u32
}

/// `out[r][c] = in[r][c] + bias[r or c]` over a `rows × cols` f32 matrix.
/// `per_row` selects the broadcast axis: `true` adds `bias[row]`
/// (per-channel bias on a `[c, h·w]` view), `false` adds `bias[col]`
/// (per-feature bias on `[batch, features]`). Grid `(⌈cols/32⌉, rows)`,
/// block [`BLOCK`].
pub fn bias_kernel(rows: usize, cols: usize, per_row: bool) -> Kernel {
    assert!(rows > 0 && cols > 0, "empty bias");
    let axis = if per_row { "row" } else { "col" };
    let mut b = KernelBuilder::new(format!("nn_bias_{rows}x{cols}_{axis}"));
    let p_in = b.param_u64("in");
    let p_bias = b.param_u64("bias");
    let p_out = b.param_u64("out");
    let base_in = b.reg_pair();
    b.ld_param(MemWidth::B64, base_in, p_in);
    let base_bias = b.reg_pair();
    b.ld_param(MemWidth::B64, base_bias, p_bias);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let col = b.reg();
    b.imad(col, cta, Operand::Imm(i64::from(BLOCK)), Operand::Reg(tid));
    b.imin(col, col, Operand::Imm(cols as i64 - 1));
    let row = b.reg();
    b.mov(row, Operand::Special(SpecialReg::CtaIdY));

    let idx = b.reg();
    b.imad(idx, row, Operand::Imm(cols as i64), Operand::Reg(col));
    let addr = b.reg_pair();
    b.imad_wide(addr, idx, Operand::Imm(4), base_in);
    let v = b.reg();
    b.ld_global(MemWidth::B32, v, addr, 0);

    let baddr = b.reg_pair();
    b.imad_wide(baddr, if per_row { row } else { col }, Operand::Imm(4), base_bias);
    let bv = b.reg();
    b.ld_global(MemWidth::B32, bv, baddr, 0);
    b.fadd(v, v, Operand::Reg(bv));

    let oaddr = b.reg_pair();
    b.imad_wide(oaddr, idx, Operand::Imm(4), base_out);
    b.st_global(MemWidth::B32, oaddr, 0, v);
    b.exit();
    b.build()
}

/// Grid for [`bias_kernel`].
pub fn bias_grid(rows: usize, cols: usize) -> (u32, u32) {
    (cols.div_ceil(BLOCK as usize) as u32, rows as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Bias, Layer, MaxPool};
    use crate::reference::run_layer;
    use crate::tensor::Tensor;
    use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};

    fn upload(gpu: &mut Gpu, t: &Tensor) -> u64 {
        let p = gpu.alloc((t.len() * 4) as u64);
        for (i, &v) in t.data().iter().enumerate() {
            gpu.write_u32(p + (i * 4) as u64, v.to_bits());
        }
        p
    }

    fn download(gpu: &Gpu, p: u64, shape: Vec<usize>) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::new(
            shape,
            (0..n).map(|i| f32::from_bits(gpu.read_u32(p + (i * 4) as u64))).collect(),
        )
    }

    #[test]
    fn maxpool_matches_reference() {
        // 3 channels of 6x6, window 2 — ow=3 exercises the imin clamp.
        let x = Tensor::from_fn(vec![3, 6, 6], |i| ((i * 37 % 19) as f32) - 9.0);
        let want = run_layer(&Layer::MaxPool(MaxPool { k: 2 }), &x);
        let mut gpu = Gpu::new(GpuConfig::mini());
        let pin = upload(&mut gpu, &x);
        let pout = gpu.alloc((want.len() * 4) as u64);
        LaunchBuilder::new(maxpool_kernel(3, 6, 6, 2))
            .grid(maxpool_grid(3, 6, 6, 2))
            .block(BLOCK)
            .param_u64(pin)
            .param_u64(pout)
            .launch(&mut gpu);
        let got = download(&gpu, pout, want.shape().to_vec());
        assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    #[test]
    fn relu_matches_reference() {
        // 70 elements: not a multiple of the 32-thread block.
        let x = Tensor::from_fn(vec![70], |i| (i as f32) - 35.5);
        let want = run_layer(&Layer::ReLU, &x);
        let mut gpu = Gpu::new(GpuConfig::mini());
        let pin = upload(&mut gpu, &x);
        let pout = gpu.alloc((x.len() * 4) as u64);
        LaunchBuilder::new(relu_kernel(70))
            .grid(relu_grid(70))
            .block(BLOCK)
            .param_u64(pin)
            .param_u64(pout)
            .launch(&mut gpu);
        let got = download(&gpu, pout, vec![70]);
        assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    #[test]
    fn bias_broadcasts_along_both_axes() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        // Per-channel ([c,h,w] viewed as rows=c, cols=h·w).
        let x = Tensor::from_fn(vec![2, 3, 3], |i| i as f32);
        let bias = Tensor::new(vec![2], vec![10.0, -10.0]);
        let want = run_layer(&Layer::Bias(Bias { bias: bias.clone() }), &x);
        let pin = upload(&mut gpu, &x);
        let pb = upload(&mut gpu, &bias);
        let pout = gpu.alloc((x.len() * 4) as u64);
        LaunchBuilder::new(bias_kernel(2, 9, true))
            .grid(bias_grid(2, 9))
            .block(BLOCK)
            .param_u64(pin)
            .param_u64(pb)
            .param_u64(pout)
            .launch(&mut gpu);
        assert_eq!(download(&gpu, pout, vec![2, 3, 3]).max_abs_diff(&want), 0.0);

        // Per-feature ([batch, f], bias indexed by column).
        let x2 = Tensor::from_fn(vec![3, 4], |i| i as f32);
        let bias2 = Tensor::new(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let want2 = run_layer(&Layer::Bias(Bias { bias: bias2.clone() }), &x2);
        let pin2 = upload(&mut gpu, &x2);
        let pb2 = upload(&mut gpu, &bias2);
        let pout2 = gpu.alloc((x2.len() * 4) as u64);
        LaunchBuilder::new(bias_kernel(3, 4, false))
            .grid(bias_grid(3, 4))
            .block(BLOCK)
            .param_u64(pin2)
            .param_u64(pb2)
            .param_u64(pout2)
            .launch(&mut gpu);
        assert_eq!(download(&gpu, pout2, vec![3, 4]).max_abs_diff(&want2), 0.0);
    }
}
