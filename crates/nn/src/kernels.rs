//! Elementwise and row-reduction device kernels for layers that don't
//! lower to GEMM: max-pool, standalone ReLU/bias, GELU, residual add,
//! and the warp-per-row softmax/layernorm reductions of the transformer
//! block.
//!
//! Shapes are folded into the generated kernels as immediates (one kernel
//! per layer instance — the same specialization style real frameworks get
//! from template instantiation), so the only runtime parameters are the
//! buffer pointers. Out-of-range lanes are clamped onto the last valid
//! element with `imin` instead of branched around: the duplicate work is
//! idempotent (same value stored to the same address), which keeps the
//! kernels divergence-free.
//!
//! The row-wise reductions ([`softmax_kernel`], [`layernorm_kernel`]) run
//! one warp per row and reduce with a `shfl.bfly` butterfly (xor-pattern
//! all-reduce) instead of shared memory — straight-line code, no
//! barriers, no divergence. Out-of-range lanes contribute the reduction
//! identity (−∞ for max, 0 for sum) via `selp`, so padding never
//! perturbs the result.

use tcsim_isa::{
    CmpOp, DataType, Kernel, KernelBuilder, MemWidth, Operand, PredReg, Reg, ShflMode, SpecialReg,
};

/// Threads per CTA for all elementwise kernels.
pub const BLOCK: u32 = 32;

/// Emits `dst = max(dst, v)` on f32 via compare-and-select.
fn emit_fmax(b: &mut KernelBuilder, dst: Reg, v: Reg) {
    let p = b.pred();
    b.setp(p, CmpOp::Gt, DataType::F32, v, Operand::Reg(dst));
    b.selp(dst, p, Operand::Reg(v), Operand::Reg(dst));
}

/// `out[ch][oy][ox] = max over a k×k window of in[ch]` for a `[c, h, w]`
/// f32 activation. Grid `(⌈ow/32⌉, oh, c)`, block [`BLOCK`].
pub fn maxpool_kernel(c: usize, h: usize, w: usize, k: usize) -> Kernel {
    let (oh, ow) = (h / k, w / k);
    assert!(oh > 0 && ow > 0, "pool window exceeds input");
    let mut b = KernelBuilder::new(format!("nn_maxpool_c{c}_{h}x{w}_k{k}"));
    let p_in = b.param_u64("in");
    let p_out = b.param_u64("out");
    let base_in = b.reg_pair();
    b.ld_param(MemWidth::B64, base_in, p_in);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let cta_x = b.reg();
    b.mov(cta_x, Operand::Special(SpecialReg::CtaIdX));
    let ox = b.reg();
    b.imad(ox, cta_x, Operand::Imm(i64::from(BLOCK)), Operand::Reg(tid));
    b.imin(ox, ox, Operand::Imm(ow as i64 - 1));
    let oy = b.reg();
    b.mov(oy, Operand::Special(SpecialReg::CtaIdY));
    let ch = b.reg();
    b.mov(ch, Operand::Special(SpecialReg::CtaIdZ));

    // Window origin: ((ch·h + oy·k)·w + ox·k) elements into the input.
    let idx = b.reg();
    b.imad(idx, ch, Operand::Imm(h as i64), Operand::Imm(0));
    b.imad(idx, oy, Operand::Imm(k as i64), Operand::Reg(idx));
    b.imad(idx, idx, Operand::Imm(w as i64), Operand::Imm(0));
    b.imad(idx, ox, Operand::Imm(k as i64), Operand::Reg(idx));
    let addr = b.reg_pair();
    b.imad_wide(addr, idx, Operand::Imm(4), base_in);

    let m = b.reg();
    b.ld_global(MemWidth::B32, m, addr, 0);
    let v = b.reg();
    for dy in 0..k {
        for dx in 0..k {
            if dy == 0 && dx == 0 {
                continue;
            }
            b.ld_global(MemWidth::B32, v, addr, ((dy * w + dx) * 4) as i64);
            emit_fmax(&mut b, m, v);
        }
    }

    let oidx = b.reg();
    b.imad(oidx, ch, Operand::Imm(oh as i64), Operand::Reg(oy));
    b.imad(oidx, oidx, Operand::Imm(ow as i64), Operand::Reg(ox));
    let oaddr = b.reg_pair();
    b.imad_wide(oaddr, oidx, Operand::Imm(4), base_out);
    b.st_global(MemWidth::B32, oaddr, 0, m);
    b.exit();
    b.build()
}

/// Grid for [`maxpool_kernel`] over a `[c, h, w]` input.
pub fn maxpool_grid(c: usize, h: usize, w: usize, k: usize) -> (u32, u32, u32) {
    (
        ((w / k).div_ceil(BLOCK as usize)) as u32,
        (h / k) as u32,
        c as u32,
    )
}

/// `out[i] = max(in[i], 0)` over a flat f32 buffer of `len` elements.
/// Grid `⌈len/32⌉`, block [`BLOCK`].
pub fn relu_kernel(len: usize) -> Kernel {
    assert!(len > 0, "empty relu");
    let mut b = KernelBuilder::new(format!("nn_relu_{len}"));
    let p_in = b.param_u64("in");
    let p_out = b.param_u64("out");
    let base_in = b.reg_pair();
    b.ld_param(MemWidth::B64, base_in, p_in);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let gid = b.reg();
    b.imad(gid, cta, Operand::Imm(i64::from(BLOCK)), Operand::Reg(tid));
    b.imin(gid, gid, Operand::Imm(len as i64 - 1));

    let addr = b.reg_pair();
    b.imad_wide(addr, gid, Operand::Imm(4), base_in);
    let v = b.reg();
    b.ld_global(MemWidth::B32, v, addr, 0);
    let p = b.pred();
    b.setp(p, CmpOp::Gt, DataType::F32, v, Operand::fimm(0.0));
    b.selp(v, p, Operand::Reg(v), Operand::fimm(0.0));
    let oaddr = b.reg_pair();
    b.imad_wide(oaddr, gid, Operand::Imm(4), base_out);
    b.st_global(MemWidth::B32, oaddr, 0, v);
    b.exit();
    b.build()
}

/// Grid for [`relu_kernel`].
pub fn relu_grid(len: usize) -> u32 {
    len.div_ceil(BLOCK as usize) as u32
}

/// `out[r][c] = in[r][c] + bias[r or c]` over a `rows × cols` f32 matrix.
/// `per_row` selects the broadcast axis: `true` adds `bias[row]`
/// (per-channel bias on a `[c, h·w]` view), `false` adds `bias[col]`
/// (per-feature bias on `[batch, features]`). Grid `(⌈cols/32⌉, rows)`,
/// block [`BLOCK`].
pub fn bias_kernel(rows: usize, cols: usize, per_row: bool) -> Kernel {
    assert!(rows > 0 && cols > 0, "empty bias");
    let axis = if per_row { "row" } else { "col" };
    let mut b = KernelBuilder::new(format!("nn_bias_{rows}x{cols}_{axis}"));
    let p_in = b.param_u64("in");
    let p_bias = b.param_u64("bias");
    let p_out = b.param_u64("out");
    let base_in = b.reg_pair();
    b.ld_param(MemWidth::B64, base_in, p_in);
    let base_bias = b.reg_pair();
    b.ld_param(MemWidth::B64, base_bias, p_bias);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let col = b.reg();
    b.imad(col, cta, Operand::Imm(i64::from(BLOCK)), Operand::Reg(tid));
    b.imin(col, col, Operand::Imm(cols as i64 - 1));
    let row = b.reg();
    b.mov(row, Operand::Special(SpecialReg::CtaIdY));

    let idx = b.reg();
    b.imad(idx, row, Operand::Imm(cols as i64), Operand::Reg(col));
    let addr = b.reg_pair();
    b.imad_wide(addr, idx, Operand::Imm(4), base_in);
    let v = b.reg();
    b.ld_global(MemWidth::B32, v, addr, 0);

    let baddr = b.reg_pair();
    b.imad_wide(
        baddr,
        if per_row { row } else { col },
        Operand::Imm(4),
        base_bias,
    );
    let bv = b.reg();
    b.ld_global(MemWidth::B32, bv, baddr, 0);
    b.fadd(v, v, Operand::Reg(bv));

    let oaddr = b.reg_pair();
    b.imad_wide(oaddr, idx, Operand::Imm(4), base_out);
    b.st_global(MemWidth::B32, oaddr, 0, v);
    b.exit();
    b.build()
}

/// Grid for [`bias_kernel`].
pub fn bias_grid(rows: usize, cols: usize) -> (u32, u32) {
    (cols.div_ceil(BLOCK as usize) as u32, rows as u32)
}

/// log₂(e): `exp(x) = exp2(x · LOG2E)`, so the MUFU `fex2` unit covers
/// softmax/GELU exponentials (single-instruction `exp2`, the same
/// transform CUDA kernels use to reach `EX2`).
pub const LOG2E: f32 = std::f32::consts::LOG2_E;

/// √(2/π), the tanh-GELU constant.
pub const SQRT_2_OVER_PI: f32 = 0.797_884_6_f32;

/// Emits `v ← op(v, shfl.bfly(v, s))` for s ∈ {16, 8, 4, 2, 1}: a
/// butterfly all-reduce leaving the full warp reduction in every lane.
fn emit_warp_allreduce(
    b: &mut KernelBuilder,
    v: Reg,
    t: Reg,
    op: fn(&mut KernelBuilder, Reg, Reg),
) {
    for s in [16i64, 8, 4, 2, 1] {
        b.shfl(ShflMode::Bfly, t, v, Operand::Imm(s));
        op(b, v, t);
    }
}

/// Emits address arithmetic for element `chunk·32 + lane` of the current
/// row: `col` gets the clamped column, `valid` is true for in-range
/// lanes, `addr` points at `base[rowbase + col]` (f32 elements). `tmp`
/// is scratch.
#[allow(clippy::too_many_arguments)]
fn emit_row_elem(
    b: &mut KernelBuilder,
    chunk: usize,
    cols: usize,
    lane: Reg,
    rowbase: Reg,
    base: Reg,
    col: Reg,
    tmp: Reg,
    addr: Reg,
    valid: PredReg,
) {
    b.iadd(col, lane, Operand::Imm((chunk * BLOCK as usize) as i64));
    b.setp(
        valid,
        CmpOp::Lt,
        DataType::S32,
        col,
        Operand::Imm(cols as i64),
    );
    b.imin(col, col, Operand::Imm(cols as i64 - 1));
    b.iadd(tmp, col, Operand::Reg(rowbase));
    b.imad_wide(addr, tmp, Operand::Imm(4), base);
}

/// Row-wise scaled softmax: `out[r] = softmax(in[r] · scale)` over a
/// `rows × cols` f32 matrix. One warp per row (grid `rows`, block
/// [`BLOCK`]); lanes cover strided columns, reduce max and Σexp with
/// `shfl.bfly` butterflies, and exponentiate through `fex2` with the
/// LOG2E fold. Three passes over the row (max, sum, write) keep register
/// pressure constant in `cols`. `scale` is baked in (1 for a standalone
/// softmax layer, 1/√d_h inside attention).
pub fn softmax_kernel(cols: usize, scale: f32) -> Kernel {
    assert!(cols > 0, "empty softmax row");
    let chunks = cols.div_ceil(BLOCK as usize);
    let mut b = KernelBuilder::new(format!("nn_softmax_c{cols}_s{:08x}", scale.to_bits()));
    let p_in = b.param_u64("in");
    let p_out = b.param_u64("out");
    let base_in = b.reg_pair();
    b.ld_param(MemWidth::B64, base_in, p_in);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let lane = b.reg();
    b.mov(lane, Operand::Special(SpecialReg::TidX));
    let row = b.reg();
    b.mov(row, Operand::Special(SpecialReg::CtaIdX));
    let rowbase = b.reg();
    b.imad(rowbase, row, Operand::Imm(cols as i64), Operand::Imm(0));

    let (col, tmp, x, t) = (b.reg(), b.reg(), b.reg(), b.reg());
    let addr = b.reg_pair();
    let valid = b.pred();

    // Pass 1: row max of the scaled elements (identity −∞ off the edge).
    let m = b.reg();
    b.mov(m, Operand::fimm(f32::NEG_INFINITY));
    for c in 0..chunks {
        emit_row_elem(
            &mut b, c, cols, lane, rowbase, base_in, col, tmp, addr, valid,
        );
        b.ld_global(MemWidth::B32, x, addr, 0);
        b.fmul(x, x, Operand::fimm(scale));
        b.selp(x, valid, Operand::Reg(x), Operand::fimm(f32::NEG_INFINITY));
        b.fmax(m, m, Operand::Reg(x));
    }
    emit_warp_allreduce(&mut b, m, t, |b, v, t| b.fmax(v, v, Operand::Reg(t)));

    // Pass 2: Σ exp2((x·scale − m)·log2e) (identity 0 off the edge).
    let nm = b.reg();
    b.fmul(nm, m, Operand::fimm(-1.0));
    let s = b.reg();
    b.mov(s, Operand::fimm(0.0));
    let e = b.reg();
    for c in 0..chunks {
        emit_row_elem(
            &mut b, c, cols, lane, rowbase, base_in, col, tmp, addr, valid,
        );
        b.ld_global(MemWidth::B32, x, addr, 0);
        b.fmul(x, x, Operand::fimm(scale));
        b.fadd(e, x, Operand::Reg(nm));
        b.fmul(e, e, Operand::fimm(LOG2E));
        b.fex2(e, e);
        b.selp(e, valid, Operand::Reg(e), Operand::fimm(0.0));
        b.fadd(s, s, Operand::Reg(e));
    }
    emit_warp_allreduce(&mut b, s, t, |b, v, t| b.fadd(v, v, Operand::Reg(t)));
    let inv = b.reg();
    b.frcp(inv, s);

    // Pass 3: normalize and store. Out-of-range lanes recompute the
    // clamped (last) element's true value — idempotent duplicate stores.
    for c in 0..chunks {
        emit_row_elem(
            &mut b, c, cols, lane, rowbase, base_in, col, tmp, addr, valid,
        );
        b.ld_global(MemWidth::B32, x, addr, 0);
        b.fmul(x, x, Operand::fimm(scale));
        b.fadd(e, x, Operand::Reg(nm));
        b.fmul(e, e, Operand::fimm(LOG2E));
        b.fex2(e, e);
        b.fmul(e, e, Operand::Reg(inv));
        b.imad_wide(addr, tmp, Operand::Imm(4), base_out);
        b.st_global(MemWidth::B32, addr, 0, e);
    }
    b.exit();
    b.build()
}

/// Grid for [`softmax_kernel`] (and [`layernorm_kernel`]): one warp-wide
/// CTA per row.
pub fn rowred_grid(rows: usize) -> u32 {
    rows as u32
}

/// Row-wise layer normalization over a `rows × cols` f32 matrix:
/// `out[r][c] = (x − μ_r) · rsqrt(σ²_r + eps) · gamma[c] + beta[c]`.
/// Same warp-per-row / butterfly-reduce scheme as [`softmax_kernel`];
/// the two moments take one butterfly each, and `rsqrt` is synthesized
/// as `fex2(−½·flg2(v))` on the MUFU path. Params: `in, gamma, beta,
/// out`.
pub fn layernorm_kernel(cols: usize, eps: f32) -> Kernel {
    assert!(cols > 0, "empty layernorm row");
    let chunks = cols.div_ceil(BLOCK as usize);
    let inv_n = 1.0 / cols as f32;
    let mut b = KernelBuilder::new(format!("nn_layernorm_c{cols}_e{:08x}", eps.to_bits()));
    let p_in = b.param_u64("in");
    let p_gamma = b.param_u64("gamma");
    let p_beta = b.param_u64("beta");
    let p_out = b.param_u64("out");
    let base_in = b.reg_pair();
    b.ld_param(MemWidth::B64, base_in, p_in);
    let base_gamma = b.reg_pair();
    b.ld_param(MemWidth::B64, base_gamma, p_gamma);
    let base_beta = b.reg_pair();
    b.ld_param(MemWidth::B64, base_beta, p_beta);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let lane = b.reg();
    b.mov(lane, Operand::Special(SpecialReg::TidX));
    let row = b.reg();
    b.mov(row, Operand::Special(SpecialReg::CtaIdX));
    let rowbase = b.reg();
    b.imad(rowbase, row, Operand::Imm(cols as i64), Operand::Imm(0));

    let (col, tmp, x, t) = (b.reg(), b.reg(), b.reg(), b.reg());
    let addr = b.reg_pair();
    let valid = b.pred();

    // Pass 1: mean.
    let s = b.reg();
    b.mov(s, Operand::fimm(0.0));
    for c in 0..chunks {
        emit_row_elem(
            &mut b, c, cols, lane, rowbase, base_in, col, tmp, addr, valid,
        );
        b.ld_global(MemWidth::B32, x, addr, 0);
        b.selp(x, valid, Operand::Reg(x), Operand::fimm(0.0));
        b.fadd(s, s, Operand::Reg(x));
    }
    emit_warp_allreduce(&mut b, s, t, |b, v, t| b.fadd(v, v, Operand::Reg(t)));
    let nmean = b.reg();
    b.fmul(nmean, s, Operand::fimm(-inv_n)); // −μ

    // Pass 2: variance around the mean.
    let v = b.reg();
    b.mov(v, Operand::fimm(0.0));
    let d = b.reg();
    for c in 0..chunks {
        emit_row_elem(
            &mut b, c, cols, lane, rowbase, base_in, col, tmp, addr, valid,
        );
        b.ld_global(MemWidth::B32, x, addr, 0);
        b.fadd(d, x, Operand::Reg(nmean));
        b.fmul(d, d, Operand::Reg(d));
        b.selp(d, valid, Operand::Reg(d), Operand::fimm(0.0));
        b.fadd(v, v, Operand::Reg(d));
    }
    emit_warp_allreduce(&mut b, v, t, |b, v, t| b.fadd(v, v, Operand::Reg(t)));
    let rstd = b.reg();
    b.fmul(rstd, v, Operand::fimm(inv_n));
    b.fadd(rstd, rstd, Operand::fimm(eps));
    b.flg2(rstd, rstd);
    b.fmul(rstd, rstd, Operand::fimm(-0.5));
    b.fex2(rstd, rstd); // rsqrt(σ² + eps) = 2^(−½·log2)

    // Pass 3: normalize, scale by gamma, shift by beta.
    let (gv, bv) = (b.reg(), b.reg());
    let gaddr = b.reg_pair();
    for c in 0..chunks {
        emit_row_elem(
            &mut b, c, cols, lane, rowbase, base_in, col, tmp, addr, valid,
        );
        b.ld_global(MemWidth::B32, x, addr, 0);
        b.fadd(d, x, Operand::Reg(nmean));
        b.fmul(d, d, Operand::Reg(rstd));
        b.imad_wide(gaddr, col, Operand::Imm(4), base_gamma);
        b.ld_global(MemWidth::B32, gv, gaddr, 0);
        b.imad_wide(gaddr, col, Operand::Imm(4), base_beta);
        b.ld_global(MemWidth::B32, bv, gaddr, 0);
        b.ffma(d, d, Operand::Reg(gv), Operand::Reg(bv));
        b.imad_wide(addr, tmp, Operand::Imm(4), base_out);
        b.st_global(MemWidth::B32, addr, 0, d);
    }
    b.exit();
    b.build()
}

/// Elementwise tanh-GELU over a flat f32 buffer:
/// `out[i] = ½·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`, with
/// `tanh(t) = 1 − 2/(exp2(2t·log2e) + 1)` so the transcendental is one
/// `fex2` plus one `frcp`. The op sequence is mirrored exactly by
/// [`crate::reference::gelu_ref`], so the differential check is
/// bit-exact. Grid `⌈len/32⌉`, block [`BLOCK`].
pub fn gelu_kernel(len: usize) -> Kernel {
    assert!(len > 0, "empty gelu");
    let mut b = KernelBuilder::new(format!("nn_gelu_{len}"));
    let p_in = b.param_u64("in");
    let p_out = b.param_u64("out");
    let base_in = b.reg_pair();
    b.ld_param(MemWidth::B64, base_in, p_in);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let gid = b.reg();
    b.imad(gid, cta, Operand::Imm(i64::from(BLOCK)), Operand::Reg(tid));
    b.imin(gid, gid, Operand::Imm(len as i64 - 1));

    let addr = b.reg_pair();
    b.imad_wide(addr, gid, Operand::Imm(4), base_in);
    let x = b.reg();
    b.ld_global(MemWidth::B32, x, addr, 0);

    let u = b.reg();
    b.fmul(u, x, Operand::Reg(x));
    b.fmul(u, u, Operand::Reg(x)); // x³
    b.ffma(u, u, Operand::fimm(0.044715), Operand::Reg(x));
    b.fmul(u, u, Operand::fimm(SQRT_2_OVER_PI)); // t
    b.fmul(u, u, Operand::fimm(2.0 * LOG2E));
    b.fex2(u, u); // exp(2t)
    b.fadd(u, u, Operand::fimm(1.0));
    b.frcp(u, u);
    b.ffma(u, u, Operand::fimm(-2.0), Operand::fimm(1.0)); // tanh(t)
    let half = b.reg();
    b.fmul(half, x, Operand::fimm(0.5));
    b.ffma(u, half, Operand::Reg(u), Operand::Reg(half));

    let oaddr = b.reg_pair();
    b.imad_wide(oaddr, gid, Operand::Imm(4), base_out);
    b.st_global(MemWidth::B32, oaddr, 0, u);
    b.exit();
    b.build()
}

/// Elementwise residual add `out[i] = a[i] + b[i]` over flat f32 buffers
/// (the skip connections of the transformer block). Bit-exact vs the
/// host (both are one f32 add). Grid `⌈len/32⌉`, block [`BLOCK`].
pub fn add_kernel(len: usize) -> Kernel {
    assert!(len > 0, "empty add");
    let mut b = KernelBuilder::new(format!("nn_add_{len}"));
    let p_a = b.param_u64("a");
    let p_b = b.param_u64("b");
    let p_out = b.param_u64("out");
    let base_a = b.reg_pair();
    b.ld_param(MemWidth::B64, base_a, p_a);
    let base_b = b.reg_pair();
    b.ld_param(MemWidth::B64, base_b, p_b);
    let base_out = b.reg_pair();
    b.ld_param(MemWidth::B64, base_out, p_out);

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let gid = b.reg();
    b.imad(gid, cta, Operand::Imm(i64::from(BLOCK)), Operand::Reg(tid));
    b.imin(gid, gid, Operand::Imm(len as i64 - 1));

    let addr = b.reg_pair();
    b.imad_wide(addr, gid, Operand::Imm(4), base_a);
    let va = b.reg();
    b.ld_global(MemWidth::B32, va, addr, 0);
    b.imad_wide(addr, gid, Operand::Imm(4), base_b);
    let vb = b.reg();
    b.ld_global(MemWidth::B32, vb, addr, 0);
    b.fadd(va, va, Operand::Reg(vb));
    b.imad_wide(addr, gid, Operand::Imm(4), base_out);
    b.st_global(MemWidth::B32, addr, 0, va);
    b.exit();
    b.build()
}

/// Grid for the flat elementwise kernels ([`gelu_kernel`],
/// [`add_kernel`]; same shape as [`relu_grid`]).
pub fn elems_grid(len: usize) -> u32 {
    len.div_ceil(BLOCK as usize) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Bias, Layer, MaxPool};
    use crate::reference::run_layer;
    use crate::tensor::Tensor;
    use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};

    fn upload(gpu: &mut Gpu, t: &Tensor) -> u64 {
        let p = gpu.alloc((t.len() * 4) as u64);
        for (i, &v) in t.data().iter().enumerate() {
            gpu.write_u32(p + (i * 4) as u64, v.to_bits());
        }
        p
    }

    fn download(gpu: &Gpu, p: u64, shape: Vec<usize>) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::new(
            shape,
            (0..n)
                .map(|i| f32::from_bits(gpu.read_u32(p + (i * 4) as u64)))
                .collect(),
        )
    }

    #[test]
    fn maxpool_matches_reference() {
        // 3 channels of 6x6, window 2 — ow=3 exercises the imin clamp.
        let x = Tensor::from_fn(vec![3, 6, 6], |i| ((i * 37 % 19) as f32) - 9.0);
        let want = run_layer(&Layer::MaxPool(MaxPool { k: 2 }), &x);
        let mut gpu = Gpu::new(GpuConfig::mini());
        let pin = upload(&mut gpu, &x);
        let pout = gpu.alloc((want.len() * 4) as u64);
        LaunchBuilder::new(maxpool_kernel(3, 6, 6, 2))
            .grid(maxpool_grid(3, 6, 6, 2))
            .block(BLOCK)
            .param_u64(pin)
            .param_u64(pout)
            .launch(&mut gpu);
        let got = download(&gpu, pout, want.shape().to_vec());
        assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    #[test]
    fn relu_matches_reference() {
        // 70 elements: not a multiple of the 32-thread block.
        let x = Tensor::from_fn(vec![70], |i| (i as f32) - 35.5);
        let want = run_layer(&Layer::ReLU, &x);
        let mut gpu = Gpu::new(GpuConfig::mini());
        let pin = upload(&mut gpu, &x);
        let pout = gpu.alloc((x.len() * 4) as u64);
        LaunchBuilder::new(relu_kernel(70))
            .grid(relu_grid(70))
            .block(BLOCK)
            .param_u64(pin)
            .param_u64(pout)
            .launch(&mut gpu);
        let got = download(&gpu, pout, vec![70]);
        assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    #[test]
    fn bias_broadcasts_along_both_axes() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        // Per-channel ([c,h,w] viewed as rows=c, cols=h·w).
        let x = Tensor::from_fn(vec![2, 3, 3], |i| i as f32);
        let bias = Tensor::new(vec![2], vec![10.0, -10.0]);
        let want = run_layer(&Layer::Bias(Bias { bias: bias.clone() }), &x);
        let pin = upload(&mut gpu, &x);
        let pb = upload(&mut gpu, &bias);
        let pout = gpu.alloc((x.len() * 4) as u64);
        LaunchBuilder::new(bias_kernel(2, 9, true))
            .grid(bias_grid(2, 9))
            .block(BLOCK)
            .param_u64(pin)
            .param_u64(pb)
            .param_u64(pout)
            .launch(&mut gpu);
        assert_eq!(download(&gpu, pout, vec![2, 3, 3]).max_abs_diff(&want), 0.0);

        // Per-feature ([batch, f], bias indexed by column).
        let x2 = Tensor::from_fn(vec![3, 4], |i| i as f32);
        let bias2 = Tensor::new(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let want2 = run_layer(
            &Layer::Bias(Bias {
                bias: bias2.clone(),
            }),
            &x2,
        );
        let pin2 = upload(&mut gpu, &x2);
        let pb2 = upload(&mut gpu, &bias2);
        let pout2 = gpu.alloc((x2.len() * 4) as u64);
        LaunchBuilder::new(bias_kernel(3, 4, false))
            .grid(bias_grid(3, 4))
            .block(BLOCK)
            .param_u64(pin2)
            .param_u64(pb2)
            .param_u64(pout2)
            .launch(&mut gpu);
        assert_eq!(download(&gpu, pout2, vec![3, 4]).max_abs_diff(&want2), 0.0);
    }

    #[test]
    fn softmax_matches_reference_within_tolerance() {
        use crate::lower::softmax_tolerance;
        use crate::reference::softmax_row;
        // 5 rows of 50: cols spans two 32-lane chunks with a ragged tail,
        // so the -inf/0 reduction identities and the clamp both fire.
        let (rows, cols) = (5usize, 50usize);
        let scale = 0.25f32;
        let x = Tensor::from_fn(vec![rows, cols], |i| ((i * 29 % 23) as f32) - 11.0);
        let mut want = x.clone();
        for r in want.data_mut().chunks_mut(cols) {
            softmax_row(r, scale);
        }
        let mut gpu = Gpu::new(GpuConfig::mini());
        let pin = upload(&mut gpu, &x);
        let pout = gpu.alloc((x.len() * 4) as u64);
        LaunchBuilder::new(softmax_kernel(cols, scale))
            .grid(rowred_grid(rows))
            .block(BLOCK)
            .param_u64(pin)
            .param_u64(pout)
            .launch(&mut gpu);
        let got = download(&gpu, pout, vec![rows, cols]);
        let err = got.max_abs_diff(&want);
        assert!(err <= softmax_tolerance(cols), "err {err}");
        // Rows sum to ~1.
        for r in got.data().chunks(cols) {
            assert!((r.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn layernorm_matches_reference_within_tolerance() {
        use crate::layer::LayerNorm;
        use crate::lower::layernorm_tolerance;
        let (rows, cols) = (4usize, 40usize);
        let x = Tensor::from_fn(vec![rows, cols], |i| ((i * 31 % 17) as f32) / 4.0 - 2.0);
        let gamma = Tensor::from_fn(vec![cols], |i| 1.0 + (i as f32) / 64.0);
        let beta = Tensor::from_fn(vec![cols], |i| (i as f32) / 32.0 - 0.5);
        let ln = LayerNorm {
            dim: cols,
            gamma: gamma.clone(),
            beta: beta.clone(),
            eps: 1e-5,
        };
        let want = run_layer(&Layer::LayerNorm(ln), &x);
        let mut gpu = Gpu::new(GpuConfig::mini());
        let pin = upload(&mut gpu, &x);
        let pg = upload(&mut gpu, &gamma);
        let pb = upload(&mut gpu, &beta);
        let pout = gpu.alloc((x.len() * 4) as u64);
        LaunchBuilder::new(layernorm_kernel(cols, 1e-5))
            .grid(rowred_grid(rows))
            .block(BLOCK)
            .param_u64(pin)
            .param_u64(pg)
            .param_u64(pb)
            .param_u64(pout)
            .launch(&mut gpu);
        let got = download(&gpu, pout, vec![rows, cols]);
        let err = got.max_abs_diff(&want);
        assert!(err <= layernorm_tolerance(cols), "err {err}");
    }

    #[test]
    fn gelu_is_bit_exact_against_host_mirror() {
        use crate::reference::gelu_ref;
        // 70 elements: ragged tail past two 32-lane blocks.
        let x = Tensor::from_fn(vec![70], |i| (i as f32) / 8.0 - 4.0);
        let want = Tensor::new(vec![70], x.data().iter().map(|&v| gelu_ref(v)).collect());
        let mut gpu = Gpu::new(GpuConfig::mini());
        let pin = upload(&mut gpu, &x);
        let pout = gpu.alloc((x.len() * 4) as u64);
        LaunchBuilder::new(gelu_kernel(70))
            .grid(elems_grid(70))
            .block(BLOCK)
            .param_u64(pin)
            .param_u64(pout)
            .launch(&mut gpu);
        // The device kernel and gelu_ref execute the same float ops in
        // the same order, so the match is exact, not approximate.
        assert_eq!(download(&gpu, pout, vec![70]).max_abs_diff(&want), 0.0);
    }

    #[test]
    fn add_is_exact() {
        let a = Tensor::from_fn(vec![70], |i| i as f32);
        let b = Tensor::from_fn(vec![70], |i| 0.5 - (i as f32) / 3.0);
        let want = Tensor::new(
            vec![70],
            a.data()
                .iter()
                .zip(b.data())
                .map(|(&x, &y)| x + y)
                .collect(),
        );
        let mut gpu = Gpu::new(GpuConfig::mini());
        let pa = upload(&mut gpu, &a);
        let pb = upload(&mut gpu, &b);
        let pout = gpu.alloc((a.len() * 4) as u64);
        LaunchBuilder::new(add_kernel(70))
            .grid(elems_grid(70))
            .block(BLOCK)
            .param_u64(pa)
            .param_u64(pb)
            .param_u64(pout)
            .launch(&mut gpu);
        assert_eq!(download(&gpu, pout, vec![70]).max_abs_diff(&want), 0.0);
    }
}
