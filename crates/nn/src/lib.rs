//! DNN inference workloads on the simulated WMMA stack.
//!
//! This crate turns small neural networks into sequences of kernel
//! launches on the `tcsim` GPU model, the way cuDNN-era frameworks drive
//! real tensor cores (paper §I, §II-B):
//!
//! * a typed layer IR ([`Layer`]: conv2d, linear, bias, ReLU, max-pool,
//!   flatten, plus transformer layers — softmax, layernorm, GELU,
//!   multi-head [`Attention`], [`Mlp`]) with a shape-checked sequential
//!   [`GraphBuilder`];
//! * a lowering pass ([`mod@lower`]) that maps `Conv2d` to implicit GEMM via
//!   host-side im2col and `Linear` to a batched GEMM, greedily fusing
//!   trailing bias/ReLU layers into the GEMM kernels' [`Epilogue`] — a
//!   `conv → bias → relu` triple is ONE launch;
//! * dedicated elementwise kernels ([`kernels`]) for layers that don't
//!   fuse;
//! * a host-side f32 reference executor ([`mod@reference`]) mirroring the
//!   device's numeric boundary (f16 operand quantization, f32
//!   accumulation), and an executor ([`run_chained`] / [`run_parallel`])
//!   that differentially checks every device launch against it;
//! * canned networks ([`models`]) with deterministic f16-exact weights.
//!
//! # Example
//!
//! ```
//! use tcsim_nn::{models, run_chained};
//! use tcsim_sim::GpuConfig;
//!
//! let net = models::tiny(1);
//! let input = models::input_for(&net, 1);
//! let report = run_chained(&net, &input, GpuConfig::mini(), false);
//! report.assert_within_tolerance();
//! assert!(report.total_cycles() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod block;
pub mod executor;
pub mod graph;
pub mod kernels;
pub mod layer;
pub mod lower;
pub mod models;
pub mod reference;
pub mod tensor;

pub use executor::{run_chained, run_parallel, InferenceReport, LayerReport};
pub use graph::{Graph, GraphBuilder, GraphError};
pub use layer::{Attention, Bias, Conv2d, Layer, LayerNorm, Linear, MaxPool, Mlp};
pub use lower::{
    gemm_tolerance, layernorm_tolerance, lower, lower_modeled, pad16, softmax_tolerance, GemmOp,
    GemmSource, LoweredLayer, LoweredOp, Tile,
};
pub use tcsim_cutlass::Epilogue;
pub use tensor::Tensor;
