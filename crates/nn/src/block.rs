//! Composite-layer execution: multi-head attention and the feed-forward
//! block as staged launch sequences.
//!
//! [`Layer::Attention`](crate::layer::Attention) and
//! [`Layer::Mlp`](crate::layer::Mlp) cannot be a single launch: attention
//! needs the V rows two stages after the QKV projection produced them,
//! and the MLP's GELU sits between two GEMMs. Each composite therefore
//! executes as an ordered sequence of *stages* — GEMMs on the WMMA tile
//! kernels, softmax/GELU/residual on the dedicated SIMT kernels — with
//! every stage's device output read back, differentially checked against
//! a host reference computed from the same (device-produced) inputs, and
//! reported as its own [`LayerReport`] row (`attention0/qkv`,
//! `attention0/scores`, …).
//!
//! The per-head score and context GEMMs are batched: one launch per
//! `(batch, head)` pair, aggregated into a single report row (cycles and
//! instructions summed, HMMA occupancy cycle-weighted).
//!
//! Composite stages always run on a **private fresh [`Gpu`]** — in the
//! chained executor just as in sweep mode. A composite uploads its
//! activation from the host and reads every stage back, so it never
//! touches the session's device memory; running it on a fresh GPU makes
//! the allocation sequence (and with it the address-hashed L2/DRAM
//! partition mapping, see `MemSystem::partition_of`) identical in both
//! modes, which is what pins chained and parallel execution to the same
//! per-stage cycle counts in `tests/transformer_block.rs`.

use crate::executor::LayerReport;
use crate::kernels::{add_kernel, elems_grid, gelu_kernel, rowred_grid, softmax_kernel, BLOCK};
use crate::layer::{Attention, Mlp};
use crate::lower::{gemm_tolerance, pad16, softmax_tolerance, Tile};
use crate::reference::{gelu_ref, ref_gemm, softmax_row};
use crate::tensor::Tensor;
use tcsim_cutlass::Epilogue;
use tcsim_f16::F16;
use tcsim_sim::{Gpu, LaunchBuilder, LaunchStats};
use tcsim_trace::RingTracer;

/// Runs composite stages on a private GPU, optionally attaching a ring
/// tracer to each launch so stage reports carry HMMA occupancy.
pub(crate) struct ExecMode<'a> {
    gpu: &'a mut Gpu,
    trace: bool,
}

impl<'a> ExecMode<'a> {
    /// Wraps the composite's private GPU. `trace` attaches a
    /// [`RingTracer`] window to every stage launch.
    pub(crate) fn new(gpu: &'a mut Gpu, trace: bool) -> ExecMode<'a> {
        ExecMode { gpu, trace }
    }

    pub(crate) fn gpu(&mut self) -> &mut Gpu {
        self.gpu
    }

    pub(crate) fn run(&mut self, builder: LaunchBuilder) -> LaunchStats {
        let builder = if self.trace {
            builder.tracer(RingTracer::new())
        } else {
            builder
        };
        builder.launch(self.gpu)
    }
}

/// Folds one or more launches of a stage into a single report row.
fn stage_report(
    name: String,
    kernel: String,
    dims: String,
    stats: &[LaunchStats],
    max_err: f32,
    tolerance: f32,
) -> LayerReport {
    let cycles: u64 = stats.iter().map(|s| s.cycles).sum();
    let instructions: u64 = stats.iter().map(|s| s.instructions).sum();
    let hmma_occupancy = if stats.iter().all(|s| s.trace.is_some()) && cycles > 0 {
        let weighted: f64 = stats
            .iter()
            .map(|s| s.trace.as_ref().map_or(0.0, |t| t.hmma_occupancy()) * s.cycles as f64)
            .sum();
        Some(weighted / cycles as f64)
    } else {
        None
    };
    LayerReport {
        name,
        kernel,
        dims,
        cycles,
        instructions,
        hmma_occupancy,
        max_err,
        tolerance,
    }
}

fn max_diff(got: &[f32], want: &[f32]) -> f32 {
    got.iter()
        .zip(want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max)
}

/// Uploads an `rows × cols` f16 operand zero-padded to `prow × pcol`
/// (untouched device memory reads 0).
fn upload_f16(
    gpu: &mut Gpu,
    prow: usize,
    pcol: usize,
    rows: usize,
    cols: usize,
    get: impl Fn(usize, usize) -> f32,
) -> u64 {
    let p = gpu.alloc((prow * pcol * 2) as u64);
    for r in 0..rows {
        for c in 0..cols {
            gpu.write_u16(
                p + ((r * pcol + c) * 2) as u64,
                F16::from_f32(get(r, c)).to_bits(),
            );
        }
    }
    p
}

fn upload_f32(gpu: &mut Gpu, data: &[f32]) -> u64 {
    let p = gpu.alloc((data.len() * 4) as u64);
    for (i, &v) in data.iter().enumerate() {
        gpu.write_u32(p + (i * 4) as u64, v.to_bits());
    }
    p
}

/// Launches one `m×n×k` GEMM on the tile family the padded problem
/// selects, returning the launch stats and the cropped `m·n` output.
/// `bias` switches the epilogue to [`Epilogue::Bias`].
fn launch_gemm(
    exec: &mut ExecMode,
    (m, n, k): (usize, usize, usize),
    a: &dyn Fn(usize, usize) -> f32,
    b: &dyn Fn(usize, usize) -> f32,
    bias: Option<&[f32]>,
) -> (LaunchStats, Vec<f32>, Tile) {
    let (pm, pn, pk) = (pad16(m), pad16(n), pad16(k));
    let tile = Tile::select(pm, pn);
    let gpu = exec.gpu();
    let pa = upload_f16(gpu, pm, pk, m, k, a);
    let pb = upload_f16(gpu, pk, pn, k, n, b);
    let (ep, pc) = match bias {
        Some(bv) => {
            let pc = gpu.alloc((pn * 4) as u64);
            for (i, &v) in bv.iter().enumerate() {
                gpu.write_u32(pc + (i * 4) as u64, v.to_bits());
            }
            (Epilogue::Bias, pc)
        }
        None => (Epilogue::None, gpu.alloc((pm * pn * 4) as u64)),
    };
    let pd = gpu.alloc((pm * pn * 4) as u64);
    let builder = LaunchBuilder::new(tile.kernel(ep))
        .grid(tile.grid(pm, pn))
        .block(tile.block())
        .param_u64(pa)
        .param_u64(pb)
        .param_u64(pc)
        .param_u64(pd)
        .param_u32(pn as u32)
        .param_u32(pk as u32);
    let stats = exec.run(builder);
    let gpu = exec.gpu();
    let mut out = vec![0f32; m * n];
    for r in 0..m {
        for c in 0..n {
            out[r * n + c] = f32::from_bits(gpu.read_u32(pd + ((r * pn + c) * 4) as u64));
        }
    }
    (stats, out, tile)
}

/// Launches the residual add `y + x`, checked bit-exact (both sides are
/// one f32 add per element).
fn residual_stage(
    exec: &mut ExecMode,
    name: String,
    y: &[f32],
    x: &[f32],
) -> (LayerReport, Vec<f32>) {
    let len = y.len();
    let gpu = exec.gpu();
    let pa = upload_f32(gpu, y);
    let pb = upload_f32(gpu, x);
    let pout = gpu.alloc((len * 4) as u64);
    let kernel = add_kernel(len);
    let kname = kernel.name().to_string();
    let builder = LaunchBuilder::new(kernel)
        .grid(elems_grid(len))
        .block(BLOCK)
        .param_u64(pa)
        .param_u64(pb)
        .param_u64(pout);
    let stats = exec.run(builder);
    let gpu = exec.gpu();
    let out: Vec<f32> = (0..len)
        .map(|i| f32::from_bits(gpu.read_u32(pout + (i * 4) as u64)))
        .collect();
    let want: Vec<f32> = y.iter().zip(x).map(|(a, b)| a + b).collect();
    let err = max_diff(&out, &want);
    let rep = stage_report(name, kname, format!("add {len}"), &[stats], err, 0.0);
    (rep, out)
}

/// Runs multi-head attention as a staged launch sequence, returning one
/// report per stage and the final `[rows, d_model]` activation.
pub(crate) fn exec_attention(
    exec: &mut ExecMode,
    lname: &str,
    a: &Attention,
    act: &Tensor,
) -> (Vec<LayerReport>, Tensor) {
    let rows = act.shape()[0];
    let d = a.d_model;
    let (batch, seq) = (rows / a.seq, a.seq);
    let dh = d / a.heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let x = act.data().to_vec();
    let mut reports = Vec::new();

    // Stage 1: fused QKV projection — one [rows × 3d × d] GEMM.
    let wqkv = a.wqkv.data();
    let (stats, qkv, tile) = launch_gemm(
        exec,
        (rows, 3 * d, d),
        &|r, c| x[r * d + c],
        &|r, c| wqkv[r * 3 * d + c],
        None,
    );
    let want = ref_gemm(
        rows,
        3 * d,
        d,
        |r, c| x[r * d + c],
        |r, c| wqkv[r * 3 * d + c],
        None,
    );
    let err = max_diff(&qkv, &want);
    reports.push(stage_report(
        format!("{lname}/qkv"),
        tile.name().into(),
        format!("gemm {rows}x{}x{d}", 3 * d),
        &[stats],
        err,
        gemm_tolerance(d),
    ));

    // Stage 2: per-(batch, head) scaled-score GEMMs Q_bh · K_bhᵀ,
    // batched into one report row. K is transposed at pack time.
    let mut score_stats = Vec::new();
    let mut scores = vec![0f32; batch * a.heads * seq * seq];
    let mut err = 0f32;
    let mut stile = Tile::Simple;
    for bi in 0..batch {
        for h in 0..a.heads {
            let q_at = |r: usize, c: usize| qkv[(bi * seq + r) * 3 * d + h * dh + c];
            let k_at = |r: usize, c: usize| qkv[(bi * seq + c) * 3 * d + d + h * dh + r];
            let (stats, s_bh, tile) = launch_gemm(exec, (seq, seq, dh), &q_at, &k_at, None);
            let want = ref_gemm(seq, seq, dh, q_at, k_at, None);
            err = err.max(max_diff(&s_bh, &want));
            scores[((bi * a.heads + h) * seq) * seq..((bi * a.heads + h) * seq + seq) * seq]
                .copy_from_slice(&s_bh);
            score_stats.push(stats);
            stile = tile;
        }
    }
    reports.push(stage_report(
        format!("{lname}/scores"),
        stile.name().into(),
        format!("gemm {seq}x{seq}x{dh} x{}", batch * a.heads),
        &score_stats,
        err,
        gemm_tolerance(dh),
    ));

    // Stage 3: row-wise softmax over all batch·heads·seq score rows,
    // with the 1/√d_h scale folded into the kernel.
    let sm_rows = batch * a.heads * seq;
    let gpu = exec.gpu();
    let pin = upload_f32(gpu, &scores);
    let pout = gpu.alloc((scores.len() * 4) as u64);
    let kernel = softmax_kernel(seq, scale);
    let kname = kernel.name().to_string();
    let builder = LaunchBuilder::new(kernel)
        .grid(rowred_grid(sm_rows))
        .block(BLOCK)
        .param_u64(pin)
        .param_u64(pout);
    let stats = exec.run(builder);
    let gpu = exec.gpu();
    let probs: Vec<f32> = (0..scores.len())
        .map(|i| f32::from_bits(gpu.read_u32(pout + (i * 4) as u64)))
        .collect();
    let mut want = scores.clone();
    for row in want.chunks_mut(seq) {
        softmax_row(row, scale);
    }
    let err = max_diff(&probs, &want);
    reports.push(stage_report(
        format!("{lname}/softmax"),
        kname,
        format!("softmax {sm_rows}x{seq}"),
        &[stats],
        err,
        softmax_tolerance(seq),
    ));

    // Stage 4: per-(batch, head) context GEMMs P_bh · V_bh, heads
    // concatenated back into [rows, d_model].
    let mut ctx_stats = Vec::new();
    let mut ctx = vec![0f32; rows * d];
    let mut err = 0f32;
    let mut ctile = Tile::Simple;
    for bi in 0..batch {
        for h in 0..a.heads {
            let p_at = |r: usize, c: usize| probs[((bi * a.heads + h) * seq + r) * seq + c];
            let v_at = |r: usize, c: usize| qkv[(bi * seq + r) * 3 * d + 2 * d + h * dh + c];
            let (stats, o_bh, tile) = launch_gemm(exec, (seq, dh, seq), &p_at, &v_at, None);
            let want = ref_gemm(seq, dh, seq, p_at, v_at, None);
            err = err.max(max_diff(&o_bh, &want));
            for r in 0..seq {
                for c in 0..dh {
                    ctx[(bi * seq + r) * d + h * dh + c] = o_bh[r * dh + c];
                }
            }
            ctx_stats.push(stats);
            ctile = tile;
        }
    }
    reports.push(stage_report(
        format!("{lname}/ctx"),
        ctile.name().into(),
        format!("gemm {seq}x{dh}x{seq} x{}", batch * a.heads),
        &ctx_stats,
        err,
        gemm_tolerance(seq),
    ));

    // Stage 5: output projection.
    let wo = a.wo.data();
    let (stats, mut y, tile) = launch_gemm(
        exec,
        (rows, d, d),
        &|r, c| ctx[r * d + c],
        &|r, c| wo[r * d + c],
        None,
    );
    let want = ref_gemm(
        rows,
        d,
        d,
        |r, c| ctx[r * d + c],
        |r, c| wo[r * d + c],
        None,
    );
    let err = max_diff(&y, &want);
    reports.push(stage_report(
        format!("{lname}/proj"),
        tile.name().into(),
        format!("gemm {rows}x{d}x{d}"),
        &[stats],
        err,
        gemm_tolerance(d),
    ));

    // Stage 6: residual skip from the layer input.
    if a.residual {
        let (rep, out) = residual_stage(exec, format!("{lname}/residual"), &y, &x);
        reports.push(rep);
        y = out;
    }
    (reports, Tensor::new(vec![rows, d], y))
}

/// Runs the feed-forward block as a staged launch sequence: bias-fused
/// `fc1` GEMM → GELU → bias-fused `fc2` GEMM → optional residual.
pub(crate) fn exec_mlp(
    exec: &mut ExecMode,
    lname: &str,
    m: &Mlp,
    act: &Tensor,
) -> (Vec<LayerReport>, Tensor) {
    let rows = act.shape()[0];
    let (d, ff) = (m.d_model, m.d_ff);
    let x = act.data().to_vec();
    let mut reports = Vec::new();

    // Stage 1: fc1 with the bias fused into the GEMM epilogue.
    let w1 = m.w1.data();
    let (stats, h, tile) = launch_gemm(
        exec,
        (rows, ff, d),
        &|r, c| x[r * d + c],
        &|r, c| w1[r * ff + c],
        Some(m.b1.data()),
    );
    let want = ref_gemm(
        rows,
        ff,
        d,
        |r, c| x[r * d + c],
        |r, c| w1[r * ff + c],
        Some(m.b1.data()),
    );
    let err = max_diff(&h, &want);
    reports.push(stage_report(
        format!("{lname}/fc1"),
        tile.name().into(),
        format!("gemm {rows}x{ff}x{d} bias"),
        &[stats],
        err,
        gemm_tolerance(d),
    ));

    // Stage 2: GELU (bit-exact vs the mirrored host sequence).
    let gpu = exec.gpu();
    let pin = upload_f32(gpu, &h);
    let pout = gpu.alloc((h.len() * 4) as u64);
    let kernel = gelu_kernel(h.len());
    let kname = kernel.name().to_string();
    let builder = LaunchBuilder::new(kernel)
        .grid(elems_grid(h.len()))
        .block(BLOCK)
        .param_u64(pin)
        .param_u64(pout);
    let stats = exec.run(builder);
    let gpu = exec.gpu();
    let g: Vec<f32> = (0..h.len())
        .map(|i| f32::from_bits(gpu.read_u32(pout + (i * 4) as u64)))
        .collect();
    let want: Vec<f32> = h.iter().map(|&v| gelu_ref(v)).collect();
    let err = max_diff(&g, &want);
    reports.push(stage_report(
        format!("{lname}/gelu"),
        kname,
        format!("gelu {}", h.len()),
        &[stats],
        err,
        0.0,
    ));

    // Stage 3: fc2, bias fused.
    let w2 = m.w2.data();
    let (stats, mut y, tile) = launch_gemm(
        exec,
        (rows, d, ff),
        &|r, c| g[r * ff + c],
        &|r, c| w2[r * d + c],
        Some(m.b2.data()),
    );
    let want = ref_gemm(
        rows,
        d,
        ff,
        |r, c| g[r * ff + c],
        |r, c| w2[r * d + c],
        Some(m.b2.data()),
    );
    let err = max_diff(&y, &want);
    reports.push(stage_report(
        format!("{lname}/fc2"),
        tile.name().into(),
        format!("gemm {rows}x{d}x{ff} bias"),
        &[stats],
        err,
        gemm_tolerance(ff),
    ));

    // Stage 4: residual skip.
    if m.residual {
        let (rep, out) = residual_stage(exec, format!("{lname}/residual"), &y, &x);
        reports.push(rep);
        y = out;
    }
    (reports, Tensor::new(vec![rows, d], y))
}
