//! Sequential layer graphs: an ordered list of named layers with
//! shape-checked construction.

use crate::layer::{Attention, Bias, Conv2d, Layer, LayerNorm, Linear, MaxPool, Mlp};
use crate::tensor::Tensor;
use std::fmt;

/// A graph-construction failure.
///
/// The `try_*` builder methods return these instead of panicking; the
/// panicking methods format [`GraphError::ShapeMismatch`] into the same
/// `rejects input` message they always produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A layer's input shape does not match the running output shape.
    ShapeMismatch {
        /// Graph name.
        graph: String,
        /// Auto-assigned layer name (`<kind><index>`).
        layer: String,
        /// The input shape the layer was offered.
        input: Vec<usize>,
        /// The layer's own explanation of the rejection.
        reason: String,
    },
    /// A weight tensor has the wrong shape for its layer.
    WeightShape {
        /// Graph name.
        graph: String,
        /// Layer kind (`"conv2d"` or `"linear"`).
        kind: &'static str,
        /// The shape the layer requires.
        expected: Vec<usize>,
        /// The shape that was supplied.
        got: Vec<usize>,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ShapeMismatch {
                graph,
                layer,
                input,
                reason,
            } => {
                write!(
                    f,
                    "{graph}: layer {layer} rejects input {input:?}: {reason}"
                )
            }
            GraphError::WeightShape {
                graph,
                kind,
                expected,
                got,
            } => write!(
                f,
                "{graph}: {kind} weight shape must be {expected:?}, got {got:?}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated sequential network: every layer's input shape matches its
/// predecessor's output.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Network name (used in reports).
    pub name: String,
    /// Shape of the input activation.
    pub input_shape: Vec<usize>,
    layers: Vec<(String, Layer)>,
    shapes: Vec<Vec<usize>>,
}

impl Graph {
    /// The layers with their names, in execution order.
    pub fn layers(&self) -> &[(String, Layer)] {
        &self.layers
    }

    /// Output shape of layer `i` (input shape is `input_shape`).
    pub fn output_shape(&self, i: usize) -> &[usize] {
        &self.shapes[i]
    }

    /// The network's final output shape.
    pub fn final_shape(&self) -> &[usize] {
        self.shapes
            .last()
            .map(Vec::as_slice)
            .unwrap_or(&self.input_shape)
    }
}

/// Builder for a [`Graph`]: layers are appended, auto-named by kind and
/// position, and shape-checked immediately.
///
/// # Example
///
/// ```
/// use tcsim_nn::{GraphBuilder, Tensor};
///
/// let g = GraphBuilder::new("toy", vec![1, 8, 8])
///     .conv2d(1, 4, 3, Tensor::zeros(vec![4, 9]))
///     .relu()
///     .maxpool(2)
///     .flatten()
///     .linear(4 * 3 * 3, 10, Tensor::zeros(vec![36, 10]))
///     .build();
/// assert_eq!(g.final_shape(), &[1, 10]);
/// assert_eq!(g.layers()[0].0, "conv2d0");
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    input_shape: Vec<usize>,
    layers: Vec<(String, Layer)>,
    shapes: Vec<Vec<usize>>,
}

impl GraphBuilder {
    /// Starts an empty graph taking inputs of `input_shape`.
    pub fn new(name: impl Into<String>, input_shape: Vec<usize>) -> GraphBuilder {
        GraphBuilder {
            name: name.into(),
            input_shape,
            layers: Vec::new(),
            shapes: Vec::new(),
        }
    }

    /// Appends any layer, auto-naming it `<kind><index>`.
    ///
    /// # Panics
    ///
    /// Panics if the layer's input shape does not match the current
    /// output shape (the error names the layer and both shapes).
    pub fn push(self, layer: Layer) -> GraphBuilder {
        self.try_push(layer).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`GraphBuilder::push`]: a shape mismatch comes back as
    /// [`GraphError::ShapeMismatch`] instead of a panic.
    pub fn try_push(mut self, layer: Layer) -> Result<GraphBuilder, GraphError> {
        let cur = self.shapes.last().unwrap_or(&self.input_shape);
        let name = format!("{}{}", layer.kind(), self.layers.len());
        let out = layer
            .output_shape(cur)
            .map_err(|e| GraphError::ShapeMismatch {
                graph: self.name.clone(),
                layer: name.clone(),
                input: cur.clone(),
                reason: e,
            })?;
        self.shapes.push(out);
        self.layers.push((name, layer));
        Ok(self)
    }

    /// Appends a stride-1 valid convolution with the given square kernel.
    pub fn conv2d(self, in_c: usize, out_c: usize, k: usize, weight: Tensor) -> GraphBuilder {
        assert_eq!(weight.shape(), &[out_c, in_c * k * k], "conv weight shape");
        self.push(Layer::Conv2d(Conv2d {
            in_c,
            out_c,
            kh: k,
            kw: k,
            weight,
        }))
    }

    /// Fallible [`GraphBuilder::conv2d`]: a wrong weight shape comes back
    /// as [`GraphError::WeightShape`] and a mismatched activation as
    /// [`GraphError::ShapeMismatch`].
    pub fn try_conv2d(
        self,
        in_c: usize,
        out_c: usize,
        k: usize,
        weight: Tensor,
    ) -> Result<GraphBuilder, GraphError> {
        let expected = vec![out_c, in_c * k * k];
        if weight.shape() != expected.as_slice() {
            return Err(GraphError::WeightShape {
                graph: self.name.clone(),
                kind: "conv2d",
                expected,
                got: weight.shape().to_vec(),
            });
        }
        self.try_push(Layer::Conv2d(Conv2d {
            in_c,
            out_c,
            kh: k,
            kw: k,
            weight,
        }))
    }

    /// Appends a fully connected layer.
    pub fn linear(self, in_f: usize, out_f: usize, weight: Tensor) -> GraphBuilder {
        assert_eq!(weight.shape(), &[in_f, out_f], "linear weight shape");
        self.push(Layer::Linear(Linear {
            in_f,
            out_f,
            weight,
        }))
    }

    /// Fallible [`GraphBuilder::linear`].
    pub fn try_linear(
        self,
        in_f: usize,
        out_f: usize,
        weight: Tensor,
    ) -> Result<GraphBuilder, GraphError> {
        let expected = vec![in_f, out_f];
        if weight.shape() != expected.as_slice() {
            return Err(GraphError::WeightShape {
                graph: self.name.clone(),
                kind: "linear",
                expected,
                got: weight.shape().to_vec(),
            });
        }
        self.try_push(Layer::Linear(Linear {
            in_f,
            out_f,
            weight,
        }))
    }

    /// Appends a bias layer.
    pub fn bias(self, bias: Tensor) -> GraphBuilder {
        self.push(Layer::Bias(Bias { bias }))
    }

    /// Appends a ReLU.
    pub fn relu(self) -> GraphBuilder {
        self.push(Layer::ReLU)
    }

    /// Appends a max-pool of window `k`.
    pub fn maxpool(self, k: usize) -> GraphBuilder {
        self.push(Layer::MaxPool(MaxPool { k }))
    }

    /// Appends a flatten.
    pub fn flatten(self) -> GraphBuilder {
        self.push(Layer::Flatten)
    }

    /// Appends a row-wise softmax.
    pub fn softmax(self) -> GraphBuilder {
        self.push(Layer::Softmax)
    }

    /// Appends a row-wise layer normalization (`gamma`/`beta` are
    /// per-feature, their length fixes the normalized dimension).
    pub fn layernorm(self, gamma: Tensor, beta: Tensor, eps: f32) -> GraphBuilder {
        assert_eq!(gamma.shape(), beta.shape(), "layernorm gamma/beta shapes");
        let dim = gamma.len();
        self.push(Layer::LayerNorm(LayerNorm {
            dim,
            gamma,
            beta,
            eps,
        }))
    }

    /// Appends an elementwise tanh-GELU.
    pub fn gelu(self) -> GraphBuilder {
        self.push(Layer::Gelu)
    }

    /// Appends multi-head self-attention. `wqkv` is `[d, 3d]` (fused
    /// Q|K|V projection), `wo` is `[d, d]`; `heads` must divide `d`.
    pub fn attention(
        self,
        heads: usize,
        seq: usize,
        wqkv: Tensor,
        wo: Tensor,
        residual: bool,
    ) -> GraphBuilder {
        let d = wo.shape()[0];
        assert_eq!(wo.shape(), &[d, d], "attention wo shape");
        assert_eq!(wqkv.shape(), &[d, 3 * d], "attention wqkv shape");
        assert!(
            heads > 0 && d.is_multiple_of(heads),
            "attention heads must divide d_model"
        );
        assert!(seq > 0, "attention seq must be positive");
        self.push(Layer::Attention(Attention {
            heads,
            d_model: d,
            seq,
            wqkv,
            wo,
            residual,
        }))
    }

    /// Appends a feed-forward block: `w1` is `[d_model, d_ff]`, `w2` is
    /// `[d_ff, d_model]`, biases match the projection widths.
    pub fn mlp(
        self,
        w1: Tensor,
        b1: Tensor,
        w2: Tensor,
        b2: Tensor,
        residual: bool,
    ) -> GraphBuilder {
        let (d, ff) = (w1.shape()[0], w1.shape()[1]);
        assert_eq!(w2.shape(), &[ff, d], "mlp w2 shape");
        assert_eq!(b1.len(), ff, "mlp b1 length");
        assert_eq!(b2.len(), d, "mlp b2 length");
        self.push(Layer::Mlp(Mlp {
            d_model: d,
            d_ff: ff,
            w1,
            b1,
            w2,
            b2,
            residual,
        }))
    }

    /// Finalizes the graph.
    pub fn build(self) -> Graph {
        Graph {
            name: self.name,
            input_shape: self.input_shape,
            layers: self.layers,
            shapes: self.shapes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "rejects input")]
    fn bad_shapes_fail_at_build_time() {
        let _ = GraphBuilder::new("bad", vec![1, 8, 8]).linear(64, 10, Tensor::zeros(vec![64, 10]));
    }

    #[test]
    fn try_push_reports_shape_mismatch() {
        let err = GraphBuilder::new("bad", vec![1, 8, 8])
            .try_linear(64, 10, Tensor::zeros(vec![64, 10]))
            .unwrap_err();
        match &err {
            GraphError::ShapeMismatch {
                graph,
                layer,
                input,
                ..
            } => {
                assert_eq!(graph, "bad");
                assert_eq!(layer, "linear0");
                assert_eq!(input, &[1, 8, 8]);
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        // The typed error renders the legacy panic wording.
        assert!(err.to_string().contains("rejects input"), "got: {err}");
    }

    #[test]
    fn try_layers_report_weight_shape_errors() {
        let err = GraphBuilder::new("w", vec![1, 8, 8])
            .try_conv2d(1, 4, 3, Tensor::zeros(vec![4, 8]))
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::WeightShape {
                graph: "w".into(),
                kind: "conv2d",
                expected: vec![4, 9],
                got: vec![4, 8],
            }
        );
        let err = GraphBuilder::new("w", vec![64])
            .try_linear(64, 10, Tensor::zeros(vec![10, 64]))
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::WeightShape {
                graph: "w".into(),
                kind: "linear",
                expected: vec![64, 10],
                got: vec![10, 64],
            }
        );
    }

    #[test]
    fn try_builders_accept_valid_layers() {
        let g = GraphBuilder::new("ok", vec![1, 8, 8])
            .try_conv2d(1, 4, 3, Tensor::zeros(vec![4, 9]))
            .unwrap()
            .relu()
            .flatten()
            .try_linear(4 * 6 * 6, 10, Tensor::zeros(vec![144, 10]))
            .unwrap()
            .build();
        assert_eq!(g.final_shape(), &[1, 10]);
    }

    #[test]
    fn names_are_positional() {
        let g = GraphBuilder::new("t", vec![2, 4, 4])
            .relu()
            .maxpool(2)
            .relu()
            .build();
        let names: Vec<&str> = g.layers().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["relu0", "maxpool1", "relu2"]);
        assert_eq!(g.output_shape(1), &[2, 2, 2]);
    }
}
