//! Sequential layer graphs: an ordered list of named layers with
//! shape-checked construction.

use crate::layer::{Bias, Conv2d, Layer, Linear, MaxPool};
use crate::tensor::Tensor;

/// A validated sequential network: every layer's input shape matches its
/// predecessor's output.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Network name (used in reports).
    pub name: String,
    /// Shape of the input activation.
    pub input_shape: Vec<usize>,
    layers: Vec<(String, Layer)>,
    shapes: Vec<Vec<usize>>,
}

impl Graph {
    /// The layers with their names, in execution order.
    pub fn layers(&self) -> &[(String, Layer)] {
        &self.layers
    }

    /// Output shape of layer `i` (input shape is `input_shape`).
    pub fn output_shape(&self, i: usize) -> &[usize] {
        &self.shapes[i]
    }

    /// The network's final output shape.
    pub fn final_shape(&self) -> &[usize] {
        self.shapes.last().map(Vec::as_slice).unwrap_or(&self.input_shape)
    }
}

/// Builder for a [`Graph`]: layers are appended, auto-named by kind and
/// position, and shape-checked immediately.
///
/// # Example
///
/// ```
/// use tcsim_nn::{GraphBuilder, Tensor};
///
/// let g = GraphBuilder::new("toy", vec![1, 8, 8])
///     .conv2d(1, 4, 3, Tensor::zeros(vec![4, 9]))
///     .relu()
///     .maxpool(2)
///     .flatten()
///     .linear(4 * 3 * 3, 10, Tensor::zeros(vec![36, 10]))
///     .build();
/// assert_eq!(g.final_shape(), &[1, 10]);
/// assert_eq!(g.layers()[0].0, "conv2d0");
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    name: String,
    input_shape: Vec<usize>,
    layers: Vec<(String, Layer)>,
    shapes: Vec<Vec<usize>>,
}

impl GraphBuilder {
    /// Starts an empty graph taking inputs of `input_shape`.
    pub fn new(name: impl Into<String>, input_shape: Vec<usize>) -> GraphBuilder {
        GraphBuilder { name: name.into(), input_shape, layers: Vec::new(), shapes: Vec::new() }
    }

    /// Appends any layer, auto-naming it `<kind><index>`.
    ///
    /// # Panics
    ///
    /// Panics if the layer's input shape does not match the current
    /// output shape (the error names the layer and both shapes).
    pub fn push(mut self, layer: Layer) -> GraphBuilder {
        let cur = self.shapes.last().unwrap_or(&self.input_shape);
        let name = format!("{}{}", layer.kind(), self.layers.len());
        let out = layer
            .output_shape(cur)
            .unwrap_or_else(|e| panic!("{}: layer {name} rejects input {cur:?}: {e}", self.name));
        self.shapes.push(out);
        self.layers.push((name, layer));
        self
    }

    /// Appends a stride-1 valid convolution with the given square kernel.
    pub fn conv2d(self, in_c: usize, out_c: usize, k: usize, weight: Tensor) -> GraphBuilder {
        assert_eq!(weight.shape(), &[out_c, in_c * k * k], "conv weight shape");
        self.push(Layer::Conv2d(Conv2d { in_c, out_c, kh: k, kw: k, weight }))
    }

    /// Appends a fully connected layer.
    pub fn linear(self, in_f: usize, out_f: usize, weight: Tensor) -> GraphBuilder {
        assert_eq!(weight.shape(), &[in_f, out_f], "linear weight shape");
        self.push(Layer::Linear(Linear { in_f, out_f, weight }))
    }

    /// Appends a bias layer.
    pub fn bias(self, bias: Tensor) -> GraphBuilder {
        self.push(Layer::Bias(Bias { bias }))
    }

    /// Appends a ReLU.
    pub fn relu(self) -> GraphBuilder {
        self.push(Layer::ReLU)
    }

    /// Appends a max-pool of window `k`.
    pub fn maxpool(self, k: usize) -> GraphBuilder {
        self.push(Layer::MaxPool(MaxPool { k }))
    }

    /// Appends a flatten.
    pub fn flatten(self) -> GraphBuilder {
        self.push(Layer::Flatten)
    }

    /// Finalizes the graph.
    pub fn build(self) -> Graph {
        Graph {
            name: self.name,
            input_shape: self.input_shape,
            layers: self.layers,
            shapes: self.shapes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "rejects input")]
    fn bad_shapes_fail_at_build_time() {
        let _ = GraphBuilder::new("bad", vec![1, 8, 8])
            .linear(64, 10, Tensor::zeros(vec![64, 10]));
    }

    #[test]
    fn names_are_positional() {
        let g = GraphBuilder::new("t", vec![2, 4, 4]).relu().maxpool(2).relu().build();
        let names: Vec<&str> = g.layers().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["relu0", "maxpool1", "relu2"]);
        assert_eq!(g.output_shape(1), &[2, 2, 2]);
    }
}
