//! Host-side FP32 reference executor — the oracle each lowered launch is
//! differentially checked against.
//!
//! The reference models the device's numeric boundary exactly: GEMM-backed
//! layers ([`Layer::Conv2d`], [`Layer::Linear`]) quantize their input and
//! weights through f16 first (that is what im2col packing does on its way
//! to the WMMA fragments) and then accumulate in f32, so the only
//! device-vs-reference difference left is the FEDP accumulation order —
//! bounded by [`crate::gemm_tolerance`].

use crate::kernels::{LOG2E, SQRT_2_OVER_PI};
use crate::layer::Layer;
use crate::tensor::Tensor;

/// Host mirror of the device GELU: the exact op sequence of
/// [`crate::kernels::gelu_kernel`] in f32 (`mul_add` where the kernel
/// uses `ffma`, `exp2` for `fex2`, `1/x` for `frcp`), so device vs
/// reference is bit-exact and the layer's tolerance is 0.
pub fn gelu_ref(x: f32) -> f32 {
    let u = (x * x) * x;
    let u = u.mul_add(0.044715, x);
    let t = u * SQRT_2_OVER_PI;
    let e = (t * (2.0 * LOG2E)).exp2();
    let r = 1.0 / (e + 1.0);
    let tanh = r.mul_add(-2.0, 1.0);
    let half = x * 0.5;
    half.mul_add(tanh, half)
}

/// Textbook row-wise scaled softmax in f32: max-subtract, `exp2` with
/// the LOG2E fold (matching the device's MUFU path), sequential sum.
/// The device's butterfly reduction order differs — bounded by
/// [`crate::lower::softmax_tolerance`].
pub fn softmax_row(row: &mut [f32], scale: f32) {
    for v in row.iter_mut() {
        *v *= scale;
    }
    let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0f32;
    for v in row.iter_mut() {
        *v = ((*v - m) * LOG2E).exp2();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Sequential f32 GEMM with f16-quantized operands (the device's numeric
/// boundary): `out[m×n] = a[m×k] × b[k×n] (+ bias)`.
pub(crate) fn ref_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: impl Fn(usize, usize) -> f32,
    b: impl Fn(usize, usize) -> f32,
    bias: Option<&[f32]>,
) -> Vec<f32> {
    use tcsim_f16::F16;
    let q = |v: f32| F16::from_f32(v).to_f32();
    let mut out = vec![0f32; m * n];
    for r in 0..m {
        for c in 0..n {
            let mut acc = 0f32;
            for i in 0..k {
                acc += q(a(r, i)) * q(b(i, c));
            }
            out[r * n + c] = acc + bias.map_or(0.0, |bv| bv[c]);
        }
    }
    out
}

/// Runs one layer on the host in f32, with f16 quantization at the GEMM
/// operand boundary.
///
/// # Panics
///
/// Panics if `input`'s shape is incompatible (the graph builder
/// validates shapes, so this only fires on hand-built layers).
pub fn run_layer(layer: &Layer, input: &Tensor) -> Tensor {
    let out_shape = layer
        .output_shape(input.shape())
        .unwrap_or_else(|e| panic!("reference: {e}"));
    match layer {
        Layer::Conv2d(c) => {
            let (h, w) = (input.shape()[1], input.shape()[2]);
            let (oh, ow) = (h - c.kh + 1, w - c.kw + 1);
            let x = input.quantize_f16();
            let wt = c.weight.quantize_f16();
            let mut out = Tensor::zeros(out_shape);
            for f in 0..c.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0f32;
                        for ch in 0..c.in_c {
                            for dy in 0..c.kh {
                                for dx in 0..c.kw {
                                    let iv = x.data()[(ch * h + oy + dy) * w + ox + dx];
                                    let col = (ch * c.kh + dy) * c.kw + dx;
                                    acc += iv * wt.data()[f * c.in_c * c.kh * c.kw + col];
                                }
                            }
                        }
                        out.data_mut()[(f * oh + oy) * ow + ox] = acc;
                    }
                }
            }
            out
        }
        Layer::Linear(l) => {
            let batch = input.shape()[0];
            let x = input.quantize_f16();
            let wt = l.weight.quantize_f16();
            let mut out = Tensor::zeros(out_shape);
            for b in 0..batch {
                for o in 0..l.out_f {
                    let mut acc = 0f32;
                    for i in 0..l.in_f {
                        acc += x.data()[b * l.in_f + i] * wt.data()[i * l.out_f + o];
                    }
                    out.data_mut()[b * l.out_f + o] = acc;
                }
            }
            out
        }
        Layer::Bias(b) => {
            let lane_size: usize = input.shape()[1..].iter().product::<usize>()
                * usize::from(input.shape().len() == 3)
                + usize::from(input.shape().len() == 2);
            let mut out = input.clone();
            if input.shape().len() == 3 {
                // Per-channel over [c, h, w].
                for (i, v) in out.data_mut().iter_mut().enumerate() {
                    *v += b.bias.data()[i / lane_size];
                }
            } else {
                // Per-feature over [batch, f].
                let f = input.shape()[1];
                for (i, v) in out.data_mut().iter_mut().enumerate() {
                    *v += b.bias.data()[i % f];
                }
            }
            out
        }
        Layer::ReLU => {
            let mut out = input.clone();
            for v in out.data_mut() {
                *v = v.max(0.0);
            }
            out
        }
        Layer::MaxPool(p) => {
            let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
            let (oh, ow) = (h / p.k, w / p.k);
            let mut out = Tensor::zeros(out_shape);
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut m = f32::NEG_INFINITY;
                        for dy in 0..p.k {
                            for dx in 0..p.k {
                                m = m.max(
                                    input.data()[(ch * h + oy * p.k + dy) * w + ox * p.k + dx],
                                );
                            }
                        }
                        out.data_mut()[(ch * oh + oy) * ow + ox] = m;
                    }
                }
            }
            out
        }
        Layer::Flatten => input.reshape(out_shape),
        Layer::Softmax => {
            let cols = input.shape()[1];
            let mut out = input.clone();
            for row in out.data_mut().chunks_mut(cols) {
                softmax_row(row, 1.0);
            }
            out
        }
        Layer::LayerNorm(ln) => {
            let cols = ln.dim;
            let mut out = input.clone();
            for row in out.data_mut().chunks_mut(cols) {
                let mean = row.iter().sum::<f32>() / cols as f32;
                let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
                let rstd = 1.0 / (var + ln.eps).sqrt();
                for (v, (&g, &bt)) in row
                    .iter_mut()
                    .zip(ln.gamma.data().iter().zip(ln.beta.data()))
                {
                    *v = (*v - mean) * rstd * g + bt;
                }
            }
            out
        }
        Layer::Gelu => {
            let mut out = input.clone();
            for v in out.data_mut() {
                *v = gelu_ref(*v);
            }
            out
        }
        Layer::Attention(a) => {
            let (rows, d) = (input.shape()[0], a.d_model);
            let (batch, dh) = (rows / a.seq, d / a.heads);
            let x = input.data();
            // QKV projection: [rows, 3d].
            let qkv = ref_gemm(
                rows,
                3 * d,
                d,
                |r, c| x[r * d + c],
                |r, c| a.wqkv.data()[r * 3 * d + c],
                None,
            );
            // Per-(batch, head) scaled scores → softmax → context.
            let scale = 1.0 / (dh as f32).sqrt();
            let mut ctx = vec![0f32; rows * d];
            for bi in 0..batch {
                for h in 0..a.heads {
                    let q_at = |r: usize, c: usize| qkv[(bi * a.seq + r) * 3 * d + h * dh + c];
                    let k_at = |r: usize, c: usize| qkv[(bi * a.seq + c) * 3 * d + d + h * dh + r];
                    let v_at =
                        |r: usize, c: usize| qkv[(bi * a.seq + r) * 3 * d + 2 * d + h * dh + c];
                    let mut scores = ref_gemm(a.seq, a.seq, dh, q_at, k_at, None);
                    for row in scores.chunks_mut(a.seq) {
                        softmax_row(row, scale);
                    }
                    let o = ref_gemm(a.seq, dh, a.seq, |r, c| scores[r * a.seq + c], v_at, None);
                    for r in 0..a.seq {
                        for c in 0..dh {
                            ctx[(bi * a.seq + r) * d + h * dh + c] = o[r * dh + c];
                        }
                    }
                }
            }
            // Output projection (+ residual).
            let mut y = ref_gemm(
                rows,
                d,
                d,
                |r, c| ctx[r * d + c],
                |r, c| a.wo.data()[r * d + c],
                None,
            );
            if a.residual {
                for (v, &xi) in y.iter_mut().zip(x) {
                    *v += xi;
                }
            }
            Tensor::new(out_shape, y)
        }
        Layer::Mlp(m) => {
            let rows = input.shape()[0];
            let x = input.data();
            let h = ref_gemm(
                rows,
                m.d_ff,
                m.d_model,
                |r, c| x[r * m.d_model + c],
                |r, c| m.w1.data()[r * m.d_ff + c],
                Some(m.b1.data()),
            );
            let h: Vec<f32> = h.into_iter().map(gelu_ref).collect();
            let mut y = ref_gemm(
                rows,
                m.d_model,
                m.d_ff,
                |r, c| h[r * m.d_ff + c],
                |r, c| m.w2.data()[r * m.d_model + c],
                Some(m.b2.data()),
            );
            if m.residual {
                for (v, &xi) in y.iter_mut().zip(x) {
                    *v += xi;
                }
            }
            Tensor::new(out_shape, y)
        }
    }
}

/// Runs the whole graph on the host, returning every layer's output (the
/// last element is the network output).
pub fn run_graph(graph: &crate::graph::Graph, input: &Tensor) -> Vec<Tensor> {
    let mut outs = Vec::with_capacity(graph.layers().len());
    let mut act = input.clone();
    for (_, layer) in graph.layers() {
        act = run_layer(layer, &act);
        outs.push(act.clone());
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Bias, Conv2d, Linear, MaxPool};

    #[test]
    fn conv_identity_kernel_is_a_shift() {
        // A single 1-channel 1x1 filter of weight 2 doubles the input.
        let conv = Layer::Conv2d(Conv2d {
            in_c: 1,
            out_c: 1,
            kh: 1,
            kw: 1,
            weight: Tensor::new(vec![1, 1], vec![2.0]),
        });
        let x = Tensor::from_fn(vec![1, 2, 2], |i| i as f32);
        let y = run_layer(&conv, &x);
        assert_eq!(y.data(), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn maxpool_relu_bias_flatten_chain() {
        let x = Tensor::new(vec![1, 2, 2], vec![-4.0, 1.0, 0.5, -2.0]);
        let p = run_layer(&Layer::MaxPool(MaxPool { k: 2 }), &x);
        assert_eq!(p.data(), &[1.0]);
        let r = run_layer(&Layer::ReLU, &x);
        assert_eq!(r.data(), &[0.0, 1.0, 0.5, 0.0]);
        let b = run_layer(
            &Layer::Bias(Bias {
                bias: Tensor::new(vec![1], vec![1.0]),
            }),
            &x,
        );
        assert_eq!(b.data(), &[-3.0, 2.0, 1.5, -1.0]);
        let f = run_layer(&Layer::Flatten, &x);
        assert_eq!(f.shape(), &[1, 4]);
    }

    #[test]
    fn linear_matches_hand_gemm() {
        let l = Layer::Linear(Linear {
            in_f: 2,
            out_f: 2,
            weight: Tensor::new(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]),
        });
        let x = Tensor::new(vec![1, 2], vec![1.0, 0.5]);
        let y = run_layer(&l, &x);
        assert_eq!(y.data(), &[2.5, 4.0]); // [1·1+0.5·3, 1·2+0.5·4]
    }

    #[test]
    fn gemm_layers_quantize_inputs_to_f16() {
        // 0.1 is not f16-representable; the reference must use the
        // rounded value, like the device does after im2col packing.
        let l = Layer::Linear(Linear {
            in_f: 1,
            out_f: 1,
            weight: Tensor::new(vec![1, 1], vec![1.0]),
        });
        let y = run_layer(&l, &Tensor::new(vec![1, 1], vec![0.1]));
        let q = tcsim_f16::F16::from_f32(0.1).to_f32();
        assert_eq!(y.data()[0], q);
        assert_ne!(y.data()[0], 0.1);
    }
}
