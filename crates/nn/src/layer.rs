//! The typed layer IR: the operator vocabulary of a small inference net.
//!
//! Activations are `[c, h, w]` in the convolutional domain and
//! `[batch, features]` after a [`Layer::Flatten`]. Convolutions are
//! stride-1 valid (no padding); pooling is non-overlapping.

use crate::tensor::Tensor;

/// Stride-1 valid 2-D convolution: `[in_c, h, w] → [out_c, h-kh+1, w-kw+1]`.
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Input channels.
    pub in_c: usize,
    /// Output channels (filter count).
    pub out_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Filter bank, shape `[out_c, in_c·kh·kw]` (row f = flattened filter
    /// f, inner order `c`-major then `dy`, `dx` — the im2col column
    /// order).
    pub weight: Tensor,
}

/// Fully connected layer: `[batch, in_f] → [batch, out_f]`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Input features.
    pub in_f: usize,
    /// Output features.
    pub out_f: usize,
    /// Weights, shape `[in_f, out_f]` (GEMM B-operand layout).
    pub weight: Tensor,
}

/// Per-channel (3-D input) or per-feature (2-D input) additive bias.
#[derive(Clone, Debug)]
pub struct Bias {
    /// One value per channel/feature.
    pub bias: Tensor,
}

/// Non-overlapping max pooling: `[c, h, w] → [c, h/k, w/k]` (floor).
#[derive(Clone, Copy, Debug)]
pub struct MaxPool {
    /// Window edge (= stride).
    pub k: usize,
}

/// Row-wise layer normalization over `[rows, dim]`:
/// `(x − μ)·rsqrt(σ² + eps)·gamma + beta` per row.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    /// Normalized (last) dimension.
    pub dim: usize,
    /// Per-feature scale, length `dim`.
    pub gamma: Tensor,
    /// Per-feature shift, length `dim`.
    pub beta: Tensor,
    /// Variance floor.
    pub eps: f32,
}

/// Multi-head self-attention over `[batch·seq, d_model]`:
/// QKV projection → per-head scaled `Q·Kᵀ` → softmax → `P·V` → output
/// projection, with an optional residual skip from the layer input.
#[derive(Clone, Debug)]
pub struct Attention {
    /// Head count (`d_model` must divide evenly).
    pub heads: usize,
    /// Model width.
    pub d_model: usize,
    /// Sequence length of each instance (rows come in `seq`-sized
    /// groups; `batch = rows / seq`).
    pub seq: usize,
    /// Fused QKV projection weights, `[d_model, 3·d_model]` — the Q, K
    /// and V blocks occupy columns `[0, d)`, `[d, 2d)`, `[2d, 3d)`.
    pub wqkv: Tensor,
    /// Output projection, `[d_model, d_model]`.
    pub wo: Tensor,
    /// Add the layer input back onto the projected output.
    pub residual: bool,
}

/// Two-layer feed-forward block over `[rows, d_model]`:
/// `linear(d_model→d_ff)+bias → GELU → linear(d_ff→d_model)+bias`, with
/// an optional residual skip from the layer input.
#[derive(Clone, Debug)]
pub struct Mlp {
    /// Model width.
    pub d_model: usize,
    /// Hidden width.
    pub d_ff: usize,
    /// First projection, `[d_model, d_ff]`.
    pub w1: Tensor,
    /// First bias, length `d_ff`.
    pub b1: Tensor,
    /// Second projection, `[d_ff, d_model]`.
    pub w2: Tensor,
    /// Second bias, length `d_model`.
    pub b2: Tensor,
    /// Add the layer input back onto the output.
    pub residual: bool,
}

/// One operator of the layer IR.
#[derive(Clone, Debug)]
pub enum Layer {
    /// Stride-1 valid convolution.
    Conv2d(Conv2d),
    /// Fully connected layer.
    Linear(Linear),
    /// Additive bias.
    Bias(Bias),
    /// Elementwise `max(x, 0)`.
    ReLU,
    /// Non-overlapping max pooling.
    MaxPool(MaxPool),
    /// `[c, h, w] → [1, c·h·w]` reshape (no data movement on device).
    Flatten,
    /// Row-wise softmax over the last dimension of a `[rows, cols]`
    /// activation.
    Softmax,
    /// Row-wise layer normalization.
    LayerNorm(LayerNorm),
    /// Elementwise tanh-GELU.
    Gelu,
    /// Multi-head self-attention (composite: lowers to a staged launch
    /// sequence).
    Attention(Attention),
    /// Feed-forward block (composite: two GEMMs around a GELU).
    Mlp(Mlp),
}

impl Layer {
    /// Short operator name for display.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::Linear(_) => "linear",
            Layer::Bias(_) => "bias",
            Layer::ReLU => "relu",
            Layer::MaxPool(_) => "maxpool",
            Layer::Flatten => "flatten",
            Layer::Softmax => "softmax",
            Layer::LayerNorm(_) => "layernorm",
            Layer::Gelu => "gelu",
            Layer::Attention(_) => "attention",
            Layer::Mlp(_) => "mlp",
        }
    }

    /// The output shape this layer produces from `input`, or an error
    /// describing the incompatibility.
    pub fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        match self {
            Layer::Conv2d(c) => {
                let [ic, h, w] = three(input, "conv2d")?;
                if ic != c.in_c {
                    return Err(format!("conv2d expects {} channels, got {ic}", c.in_c));
                }
                if h < c.kh || w < c.kw {
                    return Err(format!(
                        "conv2d {}x{} kernel exceeds input {h}x{w}",
                        c.kh, c.kw
                    ));
                }
                Ok(vec![c.out_c, h - c.kh + 1, w - c.kw + 1])
            }
            Layer::Linear(l) => {
                let [batch, f] = two(input, "linear")?;
                if f != l.in_f {
                    return Err(format!("linear expects {} features, got {f}", l.in_f));
                }
                Ok(vec![batch, l.out_f])
            }
            Layer::Bias(b) => {
                let lanes = match input {
                    [c, _, _] => *c,
                    [_, f] => *f,
                    other => return Err(format!("bias expects rank 2 or 3, got {other:?}")),
                };
                if b.bias.len() != lanes {
                    return Err(format!(
                        "bias has {} values for {lanes} lanes",
                        b.bias.len()
                    ));
                }
                Ok(input.to_vec())
            }
            Layer::ReLU => Ok(input.to_vec()),
            Layer::MaxPool(p) => {
                let [c, h, w] = three(input, "maxpool")?;
                if h < p.k || w < p.k {
                    return Err(format!("maxpool window {} exceeds input {h}x{w}", p.k));
                }
                Ok(vec![c, h / p.k, w / p.k])
            }
            Layer::Flatten => {
                let [c, h, w] = three(input, "flatten")?;
                Ok(vec![1, c * h * w])
            }
            Layer::Softmax => {
                let [_, _] = two(input, "softmax")?;
                Ok(input.to_vec())
            }
            Layer::LayerNorm(ln) => {
                let [_, dim] = two(input, "layernorm")?;
                if dim != ln.dim {
                    return Err(format!(
                        "layernorm normalizes {} features, got {dim}",
                        ln.dim
                    ));
                }
                Ok(input.to_vec())
            }
            Layer::Gelu => Ok(input.to_vec()),
            Layer::Attention(a) => {
                let [rows, d] = two(input, "attention")?;
                if d != a.d_model {
                    return Err(format!("attention expects d_model {}, got {d}", a.d_model));
                }
                if rows == 0 || !rows.is_multiple_of(a.seq) {
                    return Err(format!(
                        "attention rows {rows} must be a positive multiple of seq {}",
                        a.seq
                    ));
                }
                Ok(input.to_vec())
            }
            Layer::Mlp(m) => {
                let [_, d] = two(input, "mlp")?;
                if d != m.d_model {
                    return Err(format!("mlp expects d_model {}, got {d}", m.d_model));
                }
                Ok(input.to_vec())
            }
        }
    }
}

fn three(shape: &[usize], who: &str) -> Result<[usize; 3], String> {
    match shape {
        [a, b, c] => Ok([*a, *b, *c]),
        other => Err(format!("{who} expects a [c, h, w] input, got {other:?}")),
    }
}

fn two(shape: &[usize], who: &str) -> Result<[usize; 2], String> {
    match shape {
        [a, b] => Ok([*a, *b]),
        other => Err(format!(
            "{who} expects a [batch, features] input, got {other:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_inference_walks_a_convnet() {
        let conv = Layer::Conv2d(Conv2d {
            in_c: 1,
            out_c: 8,
            kh: 3,
            kw: 3,
            weight: Tensor::zeros(vec![8, 9]),
        });
        let s = conv.output_shape(&[1, 16, 16]).unwrap();
        assert_eq!(s, vec![8, 14, 14]);
        let s = Layer::MaxPool(MaxPool { k: 2 }).output_shape(&s).unwrap();
        assert_eq!(s, vec![8, 7, 7]);
        let s = Layer::Flatten.output_shape(&s).unwrap();
        assert_eq!(s, vec![1, 392]);
        let lin = Layer::Linear(Linear {
            in_f: 392,
            out_f: 10,
            weight: Tensor::zeros(vec![392, 10]),
        });
        assert_eq!(lin.output_shape(&s).unwrap(), vec![1, 10]);
    }

    #[test]
    fn mismatches_are_reported() {
        let conv = Layer::Conv2d(Conv2d {
            in_c: 3,
            out_c: 8,
            kh: 3,
            kw: 3,
            weight: Tensor::zeros(vec![8, 27]),
        });
        assert!(conv
            .output_shape(&[1, 16, 16])
            .unwrap_err()
            .contains("channels"));
        assert!(conv
            .output_shape(&[16, 16])
            .unwrap_err()
            .contains("[c, h, w]"));
        let b = Layer::Bias(Bias {
            bias: Tensor::zeros(vec![4]),
        });
        assert!(b.output_shape(&[8, 4, 4]).unwrap_err().contains("lanes"));
    }
}
