//! Host-side dense FP32 tensors: the carrier type between layers.
//!
//! Device kernels see raw f16/f32 buffers; the `Tensor` exists on the
//! host to hold activations between launches, feed the im2col packer,
//! and back the f32 reference executor.

use tcsim_f16::F16;

/// A row-major FP32 tensor of arbitrary rank.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Builds a tensor from a shape and matching element vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the shape's element count.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not cover {} elements",
            data.len()
        );
        Tensor { shape, data }
    }

    /// An all-zero tensor.
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Builds a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: Vec<usize>, f: impl Fn(usize) -> f32) -> Tensor {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: (0..n).map(f).collect(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The elements, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the elements.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the same elements under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&self, shape: Vec<usize>) -> Tensor {
        Tensor::new(shape, self.data.clone())
    }

    /// Every element rounded through f16 and back — the value the device
    /// actually sees after im2col packing. Idempotent.
    pub fn quantize_f16(&self) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .map(|&v| F16::from_f32(v).to_f32())
                .collect(),
        }
    }

    /// Largest absolute element difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_is_idempotent_and_keeps_exact_halves() {
        let t = Tensor::new(vec![2, 2], vec![0.5, -1.25, 0.1, 3.0]);
        let q = t.quantize_f16();
        assert_eq!(q.data()[0], 0.5);
        assert_eq!(q.data()[1], -1.25);
        assert_ne!(q.data()[2], 0.1, "0.1 is not f16-representable");
        assert_eq!(q.quantize_f16(), q);
    }

    #[test]
    fn max_abs_diff_and_reshape() {
        let a = Tensor::from_fn(vec![4], |i| i as f32);
        let b = Tensor::new(vec![4], vec![0.0, 1.5, 2.0, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert_eq!(a.reshape(vec![2, 2]).shape(), &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn shape_mismatch_is_rejected() {
        let _ = Tensor::new(vec![3], vec![0.0; 4]);
    }
}
