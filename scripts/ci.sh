#!/usr/bin/env bash
# CI gate: tier-1 build+test, lint wall, and a figure smoke run that
# exercises the parallel sweep engine end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release --workspace --offline

echo "== tier-1: test =="
cargo test -q --workspace --offline

echo "== lint: clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== smoke: fig14a sweep (--json) =="
target/release/fig14a_gemm_cycles --json results/fig14a.json
test -s results/fig14a.json

echo "== ci.sh: all gates passed =="
