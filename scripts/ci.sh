#!/usr/bin/env bash
# CI gate: tier-1 build+test, lint wall, and a figure smoke run that
# exercises the parallel sweep engine end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release --workspace --offline

echo "== tier-1: test =="
cargo test -q --workspace --offline

echo "== lint: rustfmt =="
cargo fmt --check

echo "== lint: clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== lint: rustdoc -D warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "== fuzz: differential smoke (fixed seed, 2000 iters) =="
# Random kernels through GPU-vs-reference differential + timing
# invariants; any failure is minimized and echoed by the binary itself.
target/release/tcsim-fuzz --seed 1 --iters 2000 --json

echo "== fuzz: ampere mma.sync differential (fixed seed, 2000 iters) =="
# The Ampere generator slice: BF16/TF32 and 2:4-sparse mma.sync kernels
# through the same GPU-vs-reference differential + timing invariants.
target/release/tcsim-fuzz --arch ampere --seed 1 --iters 2000 --json

echo "== fuzz: planted-mutation canary (oracle sensitivity) =="
# Flip FEDP accumulation rounding on the reference side: every all-FP16
# WMMA case must fail, proving the oracle can see single-rounding bugs.
target/release/tcsim-fuzz --mutate --seed 1 --iters 50 --json
# The Ampere analogues: narrow the BF16 accumulator to multiplicand
# width / corrupt every 2:4 metadata nibble on the reference side; the
# binary exits non-zero unless all 50 cases are caught.
target/release/tcsim-fuzz --mutate bf16-chop-mantissa --seed 1 --iters 50 --json
target/release/tcsim-fuzz --mutate sparse-meta-swap --seed 1 --iters 50 --json

echo "== verify: planted-defect canaries (analyzer sensitivity) =="
# Plant one static defect of each class in otherwise-clean generated
# kernels: the analyzer must flag every one with an error naming the
# mutated instruction (the static mirror of the FEDP canary above).
for m in barrier-drop uninit-reg frag-shape shared-grow; do
  target/release/tcsim-fuzz --mutate "$m" --seed 1 --iters 50 --json
done

echo "== perf: planted perf-defect canaries (perf-lint sensitivity) =="
# Plant a bank-conflicting shared stride / an uncoalesced global walk in
# clean generated kernels: the perf linter must catch >= 3 of 4 seeds,
# pointing at the planted instruction (enforced inside the binary).
for m in bank-stride uncoalesce; do
  target/release/tcsim-fuzz --mutate "$m" --seed 1 --iters 50 --json
done

echo "== verify: corpus lint gate =="
# Every committed corpus case must be verifier-clean, warnings included.
target/release/tcsim-lint --strict --json tests/corpus

echo "== perf: corpus perf-lint smoke =="
# Perf diagnostics are warnings (shipped kernels do carry findings —
# tests/verify_clean.rs pins them), so this passes unless a case fails
# to parse or trips a correctness error.
target/release/tcsim-lint --perf --json tests/corpus

echo "== fuzz: corpus replay =="
# Replays committed minimized cases; failing kernel text is echoed.
target/release/tcsim-fuzz --replay tests/corpus

echo "== golden figures: regenerate and diff committed artifacts =="
TCSIM_GOLDEN=1 cargo test -q --offline --test figures_golden

echo "== smoke: core-model speedup bench (event vs cycle-stepped) =="
# Runs every workload family at reduced scale; the binary itself asserts
# byte-identical LaunchStats between the two cores on every point and
# exits non-zero if the event-driven core is slower in aggregate.
target/release/bench_core_speedup --max-size 128 --json results/BENCH_core_speedup_smoke.json
test -s results/BENCH_core_speedup_smoke.json

echo "== smoke: fig14a sweep (--json) =="
target/release/fig14a_gemm_cycles --json results/fig14a.json
test -s results/fig14a.json

echo "== smoke: nn_inference (tiny net, fixed seed, golden cycle counts) =="
target/release/nn_inference --smoke --json results/nn_smoke.json
cmp results/nn_smoke.json results/nn_smoke_golden.json

echo "== smoke: tcsim-infer serving simulator (golden byte-compare) =="
# The serving trajectory is a pure function of the seed: the smoke run
# must reproduce the committed artifact byte-for-byte.
target/release/tcsim-infer --smoke --json results/BENCH_infer_smoke.json
cmp results/BENCH_infer_smoke.json results/BENCH_infer.json

echo "== model: estimator-vs-sim correlation gate (golden byte-compare) =="
# Sweeps the committed corpus + fig17 GEMM families through both the
# cycle-level simulator and the analytical estimator. The binary exits
# non-zero below 0.9 log10 correlation; the report is a pure function of
# the committed corpus and GPU presets, so it must reproduce the
# committed artifact byte-for-byte (threads included).
target/release/tcsim-model --json results/BENCH_model_corr_check.json
cmp results/BENCH_model_corr_check.json results/BENCH_model_corr.json

echo "== smoke: tcsim-prof trace export =="
# The binary itself asserts the export is valid JSON and contains HMMA
# set/step events; here we only require that it succeeds and writes.
target/release/tcsim-prof --out results/prof_gemm64.trace.json
test -s results/prof_gemm64.trace.json

echo "== guard: tracing does not perturb timing =="
target/release/tcsim-prof --overhead-guard

echo "== smoke: tcsim-serve double-pass cache gate =="
# Start the job server on an ephemeral port with a fresh persistent
# cache, submit the corpus batch twice: the second pass must be >=90%
# cache hits AND byte-identical results (results_digest equality).
SERVE_TMP=$(mktemp -d)
trap 'rm -rf "$SERVE_TMP"' EXIT
target/release/tcsim-serve --port-file "$SERVE_TMP/port" \
  --cache-dir "$SERVE_TMP/cache" >/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
  test -s "$SERVE_TMP/port" && break
  sleep 0.1
done
test -s "$SERVE_TMP/port" || { echo "tcsim-serve never wrote its port file"; exit 1; }
SERVE_ADDR=$(cat "$SERVE_TMP/port")
target/release/tcsim-loadgen --connect "$SERVE_ADDR" --smoke \
  --json "$SERVE_TMP/pass1.json" >/dev/null
target/release/tcsim-loadgen --connect "$SERVE_ADDR" --smoke \
  --min-hit-rate 0.9 --expect-digest "$SERVE_TMP/pass1.json" \
  --shutdown --json "$SERVE_TMP/pass2.json" >/dev/null
wait "$SERVE_PID"

echo "== ci.sh: all gates passed =="
